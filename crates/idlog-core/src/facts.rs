//! Loading ground facts from source text.
//!
//! Fact files use the same surface syntax as programs, restricted to
//! empty-body ground clauses: `emp(ann, sales). level(ann, 3).` This is the
//! format the `idlog` CLI's `--facts` option reads, and a convenient way to
//! ship test fixtures.

use idlog_common::Value;
use idlog_parser::Term;
use idlog_storage::Database;

use crate::error::{CoreError, CoreResult};

/// Parse `src` as a list of ground facts into `db` (which supplies the
/// interner). Rejects rules, variables, negated or ID-atom heads.
pub fn load_facts(src: &str, db: &mut Database) -> CoreResult<()> {
    let parsed = idlog_parser::parse_program(src, db.interner())?;
    for (i, clause) in parsed.clauses.iter().enumerate() {
        if !clause.is_fact() {
            return Err(CoreError::Validation {
                clause: Some(i),
                message: "fact files may not contain rules".into(),
            });
        }
        if clause.head.len() != 1 || clause.head[0].negated {
            return Err(CoreError::Validation {
                clause: Some(i),
                message: "facts are single positive atoms".into(),
            });
        }
        let atom = &clause.head[0].atom;
        if atom.pred.is_id_version() {
            return Err(CoreError::Validation {
                clause: Some(i),
                message: "facts cannot be ID-atoms (tids are assigned, not stated)".into(),
            });
        }
        let name = db.interner().resolve(atom.pred.base());
        let mut values = Vec::with_capacity(atom.terms.len());
        for t in &atom.terms {
            match t {
                Term::Sym(s) => values.push(Value::Sym(*s)),
                Term::Int(n) => values.push(Value::Int(*n)),
                Term::Var(v) => {
                    return Err(CoreError::Validation {
                        clause: Some(i),
                        message: format!("variable {v} in a fact"),
                    })
                }
            }
        }
        db.insert(&name, values.into())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_common::Interner;
    use std::sync::Arc;

    #[test]
    fn loads_mixed_sort_facts() {
        let mut db = Database::with_interner(Arc::new(Interner::new()));
        load_facts("emp(ann, sales). emp(bob, dev). level(ann, 3).", &mut db).unwrap();
        assert_eq!(db.relation("emp").unwrap().len(), 2);
        assert_eq!(db.relation("level").unwrap().rtype().to_string(), "01");
    }

    #[test]
    fn rejects_rules_variables_and_id_atoms() {
        let mut db = Database::with_interner(Arc::new(Interner::new()));
        assert!(load_facts("p(X) :- q(X).", &mut db).is_err());
        assert!(load_facts("p(X).", &mut db).is_err());
        assert!(load_facts("p[1](a, 0).", &mut db).is_err());
        assert!(load_facts("not p(a).", &mut db).is_err());
    }

    #[test]
    fn inconsistent_sorts_rejected() {
        let mut db = Database::with_interner(Arc::new(Interner::new()));
        assert!(load_facts("p(a). p(3).", &mut db).is_err());
    }

    #[test]
    fn zero_ary_facts() {
        let mut db = Database::with_interner(Arc::new(Interner::new()));
        load_facts("flag.", &mut db).unwrap();
        assert_eq!(db.relation("flag").unwrap().len(), 1);
    }
}
