//! Evaluation statistics.
//!
//! The paper's Section 4 claims are about *intermediate redundant tuples*;
//! these counters make that claim measurable. `instantiations` counts
//! complete body matches (rule firings attempted), `derived` counts head
//! tuples produced (including duplicates), `inserted` counts genuinely new
//! facts, and `probes` counts index lookups plus scan steps — the work the
//! ID-literal optimization is supposed to save.

use std::fmt;
use std::ops::AddAssign;

/// Counters accumulated during one evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Complete body matches (rule firings).
    pub instantiations: u64,
    /// Head tuples produced (inserted or duplicate).
    pub derived: u64,
    /// New facts added to relations.
    pub inserted: u64,
    /// Tuples visited while scanning or probing body literals.
    pub probes: u64,
    /// Arithmetic literal evaluations.
    pub builtin_evals: u64,
    /// Semi-naive iterations across all strata.
    pub iterations: u64,
    /// ID-relations materialized.
    pub id_relations: u64,
    /// Stored EDB tuples the magic guards excluded from joins (zero except
    /// under `strategy=magic`; computed post-hoc from the final relations,
    /// so it is identical across thread counts and backends).
    pub tuples_pruned: u64,
}

impl EvalStats {
    /// Render the counters like [`fmt::Display`], but expand the bare
    /// `id_relations` count with the per-relation breakdown (name,
    /// grouping, group and tuple counts) when a profile carries it.
    pub fn display_with(&self, profile: Option<&crate::profile::Profile>) -> String {
        match profile.and_then(|p| p.id_relation_breakdown()) {
            Some(breakdown) => format!("{self} ({breakdown})"),
            None => self.to_string(),
        }
    }
}

impl AddAssign for EvalStats {
    fn add_assign(&mut self, o: EvalStats) {
        self.instantiations += o.instantiations;
        self.derived += o.derived;
        self.inserted += o.inserted;
        self.probes += o.probes;
        self.builtin_evals += o.builtin_evals;
        self.iterations += o.iterations;
        self.id_relations += o.id_relations;
        self.tuples_pruned += o.tuples_pruned;
    }
}

impl fmt::Display for EvalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instantiations={} derived={} inserted={} probes={} builtins={} iterations={} id_relations={}",
            self.instantiations,
            self.derived,
            self.inserted,
            self.probes,
            self.builtin_evals,
            self.iterations,
            self.id_relations
        )?;
        // Keep legacy renderings byte-stable: the magic-only counter only
        // appears when the strategy actually pruned something.
        if self.tuples_pruned > 0 {
            write!(f, " pruned={}", self.tuples_pruned)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_sums_fields() {
        let mut a = EvalStats {
            instantiations: 1,
            derived: 2,
            ..Default::default()
        };
        a += EvalStats {
            instantiations: 10,
            probes: 5,
            ..Default::default()
        };
        assert_eq!(a.instantiations, 11);
        assert_eq!(a.derived, 2);
        assert_eq!(a.probes, 5);
    }

    #[test]
    fn display_mentions_all_counters() {
        let s = EvalStats::default().to_string();
        for key in [
            "instantiations",
            "derived",
            "inserted",
            "probes",
            "builtins",
        ] {
            assert!(s.contains(key), "{s}");
        }
    }
}
