//! Runtime evaluation of arithmetic predicates.
//!
//! [`solve`] takes a builtin and its arguments with the bound ones filled in,
//! and returns every argument vector consistent with them. The static mode
//! tables in [`crate::safety`] guarantee the solution set is finite except
//! for two `times`/`div` corner cases involving zero, which surface as
//! runtime [`CoreError::Eval`] errors.
//!
//! All arithmetic is over ℕ (the paper's interpreted domain): subtraction and
//! division are partial, and overflow is an error rather than a wrap.

use idlog_common::Value;
use idlog_parser::Builtin;

use crate::error::{CoreError, CoreResult};

/// Solutions of one builtin instance: full argument vectors.
pub type Solutions = Vec<Vec<i64>>;

fn overflow() -> CoreError {
    CoreError::Eval {
        message: "arithmetic overflow".into(),
    }
}

fn infinite(op: Builtin) -> CoreError {
    CoreError::Eval {
        message: format!("{} instance has infinitely many solutions", op.name()),
    }
}

/// Solve `op(args…)` where `None` marks an unbound argument. Bound arguments
/// must be sort-`i` values (guaranteed by sort inference; symbols yield an
/// empty solution set defensively, except `=`/`!=` which compare any sort —
/// use [`eq_check`] for those).
pub fn solve(op: Builtin, args: &[Option<i64>]) -> CoreResult<Solutions> {
    debug_assert_eq!(args.len(), op.arity());
    // Negative numbers never satisfy a ℕ-predicate.
    if args.iter().flatten().any(|&n| n < 0) {
        return Ok(vec![]);
    }
    let sols = match op {
        Builtin::Succ => match (args[0], args[1]) {
            (Some(a), Some(b)) => check(b == a + 1, vec![a, b]),
            (Some(a), None) => vec![vec![a, a.checked_add(1).ok_or_else(overflow)?]],
            (None, Some(b)) => {
                if b >= 1 {
                    vec![vec![b - 1, b]]
                } else {
                    vec![]
                }
            }
            (None, None) => return Err(infinite(op)),
        },
        Builtin::Plus => solve_plus(args)?,
        Builtin::Minus => {
            // A − B = C over ℕ ⇔ B + C = A.
            let flipped = [args[1], args[2], args[0]];
            solve_plus(&flipped)?
                .into_iter()
                .map(|s| vec![s[2], s[0], s[1]])
                .collect()
        }
        Builtin::Times => match (args[0], args[1], args[2]) {
            (Some(a), Some(b), Some(c)) => {
                check(a.checked_mul(b).ok_or_else(overflow)? == c, vec![a, b, c])
            }
            (Some(a), Some(b), None) => {
                vec![vec![a, b, a.checked_mul(b).ok_or_else(overflow)?]]
            }
            (Some(a), None, Some(c)) => {
                if a == 0 {
                    if c == 0 {
                        return Err(infinite(op));
                    }
                    vec![]
                } else if c % a == 0 {
                    vec![vec![a, c / a, c]]
                } else {
                    vec![]
                }
            }
            (None, Some(b), Some(c)) => {
                if b == 0 {
                    if c == 0 {
                        return Err(infinite(op));
                    }
                    vec![]
                } else if c % b == 0 {
                    vec![vec![c / b, b, c]]
                } else {
                    vec![]
                }
            }
            _ => return Err(infinite(op)),
        },
        Builtin::Div => match (args[0], args[1], args[2]) {
            // div(A,B,C) ⇔ B ≠ 0 ∧ B·C = A (exact division).
            (Some(a), Some(b), Some(c)) => check(
                b != 0 && b.checked_mul(c).ok_or_else(overflow)? == a,
                vec![a, b, c],
            ),
            (Some(a), Some(b), None) => {
                if b != 0 && a % b == 0 {
                    vec![vec![a, b, a / b]]
                } else {
                    vec![]
                }
            }
            (None, Some(b), Some(c)) => {
                if b == 0 {
                    vec![]
                } else {
                    vec![vec![b.checked_mul(c).ok_or_else(overflow)?, b, c]]
                }
            }
            _ => return Err(infinite(op)),
        },
        Builtin::Lt => match (args[0], args[1]) {
            (Some(a), Some(b)) => check(a < b, vec![a, b]),
            (None, Some(b)) => (0..b).map(|a| vec![a, b]).collect(),
            _ => return Err(infinite(op)),
        },
        Builtin::Le => match (args[0], args[1]) {
            (Some(a), Some(b)) => check(a <= b, vec![a, b]),
            (None, Some(b)) => (0..=b).map(|a| vec![a, b]).collect(),
            _ => return Err(infinite(op)),
        },
        Builtin::Gt => match (args[0], args[1]) {
            (Some(a), Some(b)) => check(a > b, vec![a, b]),
            (Some(a), None) => (0..a).map(|b| vec![a, b]).collect(),
            _ => return Err(infinite(op)),
        },
        Builtin::Ge => match (args[0], args[1]) {
            (Some(a), Some(b)) => check(a >= b, vec![a, b]),
            (Some(a), None) => (0..=a).map(|b| vec![a, b]).collect(),
            _ => return Err(infinite(op)),
        },
        Builtin::Eq => match (args[0], args[1]) {
            (Some(a), Some(b)) => check(a == b, vec![a, b]),
            (Some(a), None) => vec![vec![a, a]],
            (None, Some(b)) => vec![vec![b, b]],
            (None, None) => return Err(infinite(op)),
        },
        Builtin::Ne => match (args[0], args[1]) {
            (Some(a), Some(b)) => check(a != b, vec![a, b]),
            _ => return Err(infinite(op)),
        },
    };
    Ok(sols)
}

fn solve_plus(args: &[Option<i64>]) -> CoreResult<Solutions> {
    Ok(match (args[0], args[1], args[2]) {
        (Some(a), Some(b), Some(c)) => {
            check(a.checked_add(b).ok_or_else(overflow)? == c, vec![a, b, c])
        }
        (Some(a), Some(b), None) => vec![vec![a, b, a.checked_add(b).ok_or_else(overflow)?]],
        (Some(a), None, Some(c)) => {
            if c >= a {
                vec![vec![a, c - a, c]]
            } else {
                vec![]
            }
        }
        (None, Some(b), Some(c)) => {
            if c >= b {
                vec![vec![c - b, b, c]]
            } else {
                vec![]
            }
        }
        (None, None, Some(c)) => (0..=c).map(|a| vec![a, c - a, c]).collect(),
        _ => return Err(infinite(Builtin::Plus)),
    })
}

fn check(ok: bool, sol: Vec<i64>) -> Solutions {
    if ok {
        vec![sol]
    } else {
        vec![]
    }
}

/// `=`/`!=` over values of either sort, fully bound.
pub fn eq_check(op: Builtin, a: Value, b: Value) -> bool {
    match op {
        Builtin::Eq => a == b,
        Builtin::Ne => a != b,
        _ => unreachable!("eq_check is only for =/!="),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(op: Builtin, args: &[Option<i64>]) -> Solutions {
        solve(op, args).unwrap()
    }

    #[test]
    fn succ_modes() {
        assert_eq!(s(Builtin::Succ, &[Some(2), Some(3)]), vec![vec![2, 3]]);
        assert!(s(Builtin::Succ, &[Some(2), Some(4)]).is_empty());
        assert_eq!(s(Builtin::Succ, &[Some(2), None]), vec![vec![2, 3]]);
        assert_eq!(s(Builtin::Succ, &[None, Some(3)]), vec![vec![2, 3]]);
        assert!(s(Builtin::Succ, &[None, Some(0)]).is_empty());
    }

    #[test]
    fn plus_nnb_enumerates_paper_case() {
        // Paper: L + M = 1 has finitely many solutions (two).
        let sols = s(Builtin::Plus, &[None, None, Some(1)]);
        assert_eq!(sols, vec![vec![0, 1, 1], vec![1, 0, 1]]);
    }

    #[test]
    fn plus_partial_modes() {
        assert_eq!(
            s(Builtin::Plus, &[Some(2), None, Some(5)]),
            vec![vec![2, 3, 5]]
        );
        assert!(s(Builtin::Plus, &[Some(7), None, Some(5)]).is_empty());
        assert_eq!(
            s(Builtin::Plus, &[None, Some(2), Some(5)]),
            vec![vec![3, 2, 5]]
        );
    }

    #[test]
    fn minus_is_partial_over_naturals() {
        assert_eq!(
            s(Builtin::Minus, &[Some(5), Some(2), None]),
            vec![vec![5, 2, 3]]
        );
        assert!(s(Builtin::Minus, &[Some(2), Some(5), None]).is_empty());
        // bnn: 3 − B = C enumerates B ∈ 0..=3.
        let sols = s(Builtin::Minus, &[Some(3), None, None]);
        assert_eq!(sols.len(), 4);
        assert!(sols.contains(&vec![3, 0, 3]));
        assert!(sols.contains(&vec![3, 3, 0]));
    }

    #[test]
    fn times_divisibility() {
        assert_eq!(
            s(Builtin::Times, &[Some(3), None, Some(12)]),
            vec![vec![3, 4, 12]]
        );
        assert!(s(Builtin::Times, &[Some(3), None, Some(13)]).is_empty());
        assert!(s(Builtin::Times, &[Some(0), None, Some(5)]).is_empty());
        assert!(solve(Builtin::Times, &[Some(0), None, Some(0)]).is_err());
    }

    #[test]
    fn div_exact() {
        assert_eq!(
            s(Builtin::Div, &[Some(12), Some(3), None]),
            vec![vec![12, 3, 4]]
        );
        assert!(s(Builtin::Div, &[Some(13), Some(3), None]).is_empty());
        assert!(s(Builtin::Div, &[Some(12), Some(0), None]).is_empty());
        assert_eq!(
            s(Builtin::Div, &[None, Some(3), Some(4)]),
            vec![vec![12, 3, 4]]
        );
        assert!(s(Builtin::Div, &[Some(12), Some(3), Some(4)]) == vec![vec![12, 3, 4]]);
    }

    #[test]
    fn comparisons_generate_finite_prefixes() {
        assert_eq!(
            s(Builtin::Lt, &[None, Some(3)]),
            vec![vec![0, 3], vec![1, 3], vec![2, 3]]
        );
        assert_eq!(
            s(Builtin::Le, &[None, Some(1)]),
            vec![vec![0, 1], vec![1, 1]]
        );
        assert_eq!(
            s(Builtin::Gt, &[Some(2), None]),
            vec![vec![2, 0], vec![2, 1]]
        );
        assert_eq!(
            s(Builtin::Ge, &[Some(1), None]),
            vec![vec![1, 0], vec![1, 1]]
        );
    }

    #[test]
    fn eq_assignment_and_ne_check() {
        assert_eq!(s(Builtin::Eq, &[Some(4), None]), vec![vec![4, 4]]);
        assert_eq!(s(Builtin::Ne, &[Some(4), Some(4)]), Vec::<Vec<i64>>::new());
        assert_eq!(s(Builtin::Ne, &[Some(4), Some(5)]), vec![vec![4, 5]]);
    }

    #[test]
    fn negative_inputs_never_match() {
        assert!(s(Builtin::Succ, &[Some(-1), None]).is_empty());
        assert!(s(Builtin::Lt, &[Some(-2), Some(3)]).is_empty());
    }

    #[test]
    fn overflow_is_an_error() {
        assert!(solve(Builtin::Succ, &[Some(i64::MAX), None]).is_err());
        assert!(solve(Builtin::Times, &[Some(i64::MAX), Some(2), None]).is_err());
    }

    #[test]
    fn eq_check_on_values() {
        use idlog_common::Interner;
        let i = Interner::new();
        let a = Value::Sym(i.intern("a"));
        let b = Value::Sym(i.intern("b"));
        assert!(eq_check(Builtin::Eq, a, a));
        assert!(eq_check(Builtin::Ne, a, b));
        assert!(!eq_check(Builtin::Eq, a, Value::Int(1)));
    }
}
