//! The IDLOG engine: stratified deductive evaluation with tuple-identifier
//! non-determinism.
//!
//! This crate implements the language of \[She90b\]/\[She91\]: DATALOG with
//! stratified negation, arithmetic predicates under the paper's safety
//! discipline, and **ID-literals** `p[s](…, Tid)` that read an *ID-relation*
//! of `p` — the relation augmented with tuple identifiers drawn per
//! sub-relation of `p` grouped by the attribute set `s`.
//!
//! The semantics is the paper's perfect-model semantics: given a concrete
//! choice of ID-functions (a [`tid::TidOracle`]), a stratified program has a
//! unique perfect model computed bottom-up stratum by stratum; varying the
//! choice of ID-functions yields the *set* of answers of the
//! non-deterministic query ([`enumerate`]).
//!
//! Pipeline:
//!
//! 1. [`program::ValidatedProgram::new`] — arity/head-shape validation,
//!    sort inference ([`sorts`]), safety ([`safety`]);
//! 2. [`stratify`] — dependency analysis; negation **and** ID-literal edges
//!    must not be cyclic;
//! 3. [`plan`] — each clause becomes an ordered sequence of join steps;
//! 4. [`eval`] — semi-naive evaluation per stratum, materializing
//!    ID-relations of lower strata through a [`tid::TidOracle`];
//! 5. [`query`] — the user-facing API; [`enumerate`] — all answers.

#![warn(missing_docs)]

pub mod builtins;
pub mod config;
pub mod engine;
pub mod enumerate;
pub mod error;
pub mod eval;
pub mod explain;
pub mod facts;
pub mod govern;
pub mod maintain;
pub mod modelcheck;
pub mod plan;
pub mod pred;
pub mod profile;
pub mod program;
pub mod query;
pub mod relevance;
pub mod safety;
pub mod service;
pub mod sorts;
pub mod stats;
pub mod stratify;
pub mod taint;
pub mod termination;
pub mod tid;
pub mod tidbound;

pub use config::{EvalOptions, THREADS_ENV_VAR};
pub use enumerate::{enumerate_governed, enumerate_with_options, AnswerSet, EnumBudget};
pub use error::{CoreError, CoreResult, ErrorCode};
pub use eval::{evaluate_governed, evaluate_with_options, EvalOutput, Strategy};
pub use explain::{explain, explain_analyze};
pub use facts::load_facts;
pub use govern::{CancelToken, EvalError, Governor, LimitKind, Limits, StopReason};
pub use maintain::{FactDelta, MaintainOutcome, Materialized};
pub use modelcheck::{verify_model, ModelViolation};
pub use pred::PredKey;
pub use profile::{Profile, RuleTotals, PROFILE_JSON_SCHEMA};
pub use program::ValidatedProgram;
pub use query::{EvalResult, Query, Session};
pub use relevance::{
    analyze_relevance, magic_program, magic_tuples_pruned, pattern_string, AdornedPred,
    RefusalReason, RelevanceAnalysis, RelevanceRefusal, RelevanceStep, MAGIC_PREFIX,
};
pub use service::{
    negotiate_schema, render_answers, render_tuple, FactValue, Request, Response, RunRequest,
    ServeMode, SERVICE_SCHEMA, SUPPORTED_SCHEMAS,
};
pub use stats::EvalStats;
pub use taint::{analyze_taint, choice_free_occurrence, TaintAnalysis, TaintStep};
pub use termination::{
    analyze_termination, FlowEdge, FlowNode, RecursionKind, SccSummary, TerminationCert,
    UnboundedIdSite,
};
pub use tid::{CanonicalOracle, ExplicitOracle, SeededOracle, TidOracle};

// Re-export the pieces callers need to build inputs and read outputs.
pub use idlog_common::{Interner, Json, RelType, Sort, SymbolId, Tuple, Value};
pub use idlog_parser::{parse_clause, parse_program, Program};
pub use idlog_storage::{BackendKind, Database, Relation, Storage};
