//! Predicate identities used by the engine.

use idlog_common::{Interner, SymbolId};

/// Identity of a stored relation during evaluation: either an ordinary
/// predicate or the materialized ID-relation of a predicate on a grouping
/// attribute set.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PredKey {
    /// `p`
    Ordinary(SymbolId),
    /// `p[s]` — the ID-relation of `p` on grouping set `s` (0-based,
    /// ascending).
    Id(SymbolId, Vec<usize>),
}

impl PredKey {
    /// The underlying predicate symbol.
    pub fn base(&self) -> SymbolId {
        match self {
            PredKey::Ordinary(p) | PredKey::Id(p, _) => *p,
        }
    }

    /// Human-readable form, e.g. `emp` or `emp[2]` (1-based grouping, as in
    /// the paper).
    pub fn render(&self, interner: &Interner) -> String {
        match self {
            PredKey::Ordinary(p) => interner.resolve(*p),
            PredKey::Id(p, grouping) => {
                let attrs: Vec<String> = grouping.iter().map(|g| (g + 1).to_string()).collect();
                format!("{}[{}]", interner.resolve(*p), attrs.join(","))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_forms() {
        let i = Interner::new();
        let p = i.intern("emp");
        assert_eq!(PredKey::Ordinary(p).render(&i), "emp");
        assert_eq!(PredKey::Id(p, vec![1]).render(&i), "emp[2]");
        assert_eq!(PredKey::Id(p, vec![]).render(&i), "emp[]");
        assert_eq!(PredKey::Id(p, vec![0, 2]).render(&i), "emp[1,3]");
    }

    #[test]
    fn base_of_both_forms() {
        let i = Interner::new();
        let p = i.intern("q");
        assert_eq!(PredKey::Ordinary(p).base(), p);
        assert_eq!(PredKey::Id(p, vec![0]).base(), p);
    }
}
