//! The IDLOG service protocol: serializable request/response types for
//! `idlog serve`.
//!
//! The wire format is a line protocol: one JSON object per line, request in,
//! response out, over a plain TCP stream. Hand-rolled JSON
//! ([`idlog_common::Json`]) keeps the engine dependency-free; the schema is
//! small enough that a grammar-complete parser is overkill.
//!
//! Responses reuse the library's stable [`ErrorCode`] vocabulary and its
//! exit-code convention — `"exit"` in a response equals what the `idlog`
//! CLI would have exited with for the same failure, so scripts can switch
//! on one code set across both surfaces. See `LANGUAGE.md` §Service for
//! the full field reference.

use std::time::Duration;

use idlog_common::{Interner, Json, Tuple, Value};
use idlog_storage::{BackendKind, Relation};

use crate::error::ErrorCode;
use crate::eval::Strategy;
use crate::govern::Limits;

/// Current protocol schema identifier, reported by `ping`.
///
/// Schema 2 (this PR's durability release) adds the `overloaded` error
/// code with its `retry_after_ms` hint, the optional `schema` field on
/// `ping` for version negotiation, and the `version` field on `stats`
/// responses. Every schema-1 request remains a valid schema-2 request.
pub const SERVICE_SCHEMA: &str = "idlog-service/2";

/// Every schema this server speaks, newest last. A `ping` carrying one of
/// these is answered with the same identifier; anything else is a protocol
/// error naming the supported set.
pub const SUPPORTED_SCHEMAS: &[&str] = &["idlog-service/1", "idlog-service/2"];

/// Negotiate a protocol schema: `None` (a bare `ping`) selects the newest,
/// a supported identifier selects itself, anything else is refused with a
/// message listing [`SUPPORTED_SCHEMAS`].
pub fn negotiate_schema(requested: Option<&str>) -> Result<&'static str, String> {
    match requested {
        None => Ok(SERVICE_SCHEMA),
        Some(r) => SUPPORTED_SCHEMAS
            .iter()
            .find(|s| **s == r)
            .copied()
            .ok_or_else(|| {
                format!(
                    "unsupported schema {r:?}; this server speaks: {}",
                    SUPPORTED_SCHEMAS.join(", ")
                )
            }),
    }
}

/// One fact argument on the wire: JSON strings are symbols, JSON integers
/// are sort-`i` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactValue {
    /// An uninterpreted symbol.
    Sym(String),
    /// An integer.
    Int(i64),
}

impl FactValue {
    /// Intern into an engine [`Value`].
    pub fn to_value(&self, interner: &Interner) -> Value {
        match self {
            FactValue::Sym(s) => Value::Sym(interner.intern(s)),
            FactValue::Int(n) => Value::Int(*n),
        }
    }

    fn to_json(&self) -> Json {
        match self {
            FactValue::Sym(s) => Json::str(s.clone()),
            FactValue::Int(n) => Json::int(*n),
        }
    }

    fn parse(j: &Json) -> Result<FactValue, String> {
        if let Some(s) = j.as_str() {
            return Ok(FactValue::Sym(s.to_string()));
        }
        if let Some(n) = j.as_i64() {
            return Ok(FactValue::Int(n));
        }
        if let Some(n) = j.as_f64() {
            return Err(format!("fact value {n} is not an i64"));
        }
        Err("fact values must be strings or integers".to_string())
    }
}

/// A `run` request: evaluate `program`'s `output` under per-request options
/// and limits.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    /// Tenant whose database the query runs against.
    pub tenant: String,
    /// IDLOG program text.
    pub program: String,
    /// Output predicate name.
    pub output: String,
    /// Enumerate the full answer set instead of one canonical answer.
    pub all: bool,
    /// Resolve non-determinism with a seeded oracle instead of the
    /// canonical one (forces a fresh evaluation; materialized models are
    /// canonical).
    pub seed: Option<u64>,
    /// Worker-thread count (`None`/`0` = auto).
    pub threads: Option<usize>,
    /// Storage backend override for materialized relations.
    pub backend: Option<BackendKind>,
    /// Evaluation strategy override. `magic` asks for goal-directed
    /// evaluation and is refused (with the relevance witness) when the
    /// query is not a certified point query.
    pub strategy: Option<Strategy>,
    /// Wall-clock budget in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Semi-naive round ceiling.
    pub max_rounds: Option<u64>,
    /// Derived-tuple ceiling.
    pub max_tuples: Option<u64>,
    /// Stored-bytes ceiling.
    pub max_bytes: Option<u64>,
    /// Model ceiling for `all` enumeration.
    pub max_models: Option<u64>,
}

impl RunRequest {
    /// A minimal run request with every option defaulted.
    pub fn new(tenant: &str, program: &str, output: &str) -> RunRequest {
        RunRequest {
            tenant: tenant.to_string(),
            program: program.to_string(),
            output: output.to_string(),
            all: false,
            seed: None,
            threads: None,
            backend: None,
            strategy: None,
            timeout_ms: None,
            max_rounds: None,
            max_tuples: None,
            max_bytes: None,
            max_models: None,
        }
    }

    /// The [`Limits`] this request's ceiling fields map to.
    pub fn limits(&self) -> Limits {
        Limits {
            deadline: self.timeout_ms.map(Duration::from_millis),
            max_rounds: self.max_rounds,
            max_tuples: self.max_tuples,
            max_bytes: self.max_bytes,
        }
    }

    /// True when the request can be served from (and maintained in) a
    /// canonical materialized model: one canonical answer, no per-request
    /// resource ceilings that a cached read could misreport, and no
    /// evaluation-strategy override (a `magic` or `naive` request asks for
    /// a specific evaluation, so it runs fresh — where a `magic` refusal
    /// surfaces with its witness instead of being papered over by a cached
    /// full model).
    pub fn wants_materialized(&self) -> bool {
        !self.all
            && self.seed.is_none()
            && self.limits() == Limits::default()
            && self.strategy.unwrap_or_default() == Strategy::SemiNaive
    }
}

/// One request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Evaluate a query.
    Run(RunRequest),
    /// Add one fact to a tenant's database.
    Insert {
        /// Target tenant.
        tenant: String,
        /// Predicate name.
        pred: String,
        /// Fact arguments.
        tuple: Vec<FactValue>,
    },
    /// Remove one fact from a tenant's database.
    Retract {
        /// Target tenant.
        tenant: String,
        /// Predicate name.
        pred: String,
        /// Fact arguments.
        tuple: Vec<FactValue>,
    },
    /// Liveness probe; the response carries the negotiated schema.
    Ping {
        /// Requested protocol schema (`None` = newest). See
        /// [`negotiate_schema`].
        schema: Option<String>,
    },
    /// Per-tenant counters (facts, cached queries).
    Stats {
        /// Target tenant.
        tenant: String,
    },
    /// Orderly server shutdown.
    Shutdown,
}

impl Request {
    /// Parse one request line. Errors are human-readable and map to
    /// [`ErrorCode::Protocol`].
    pub fn parse(line: &str) -> Result<Request, String> {
        let j = Json::parse(line)?;
        let op = j
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request object needs a string \"op\" field")?;
        let tenant = |j: &Json| -> Result<String, String> {
            Ok(j.get("tenant")
                .and_then(Json::as_str)
                .ok_or("request needs a string \"tenant\" field")?
                .to_string())
        };
        let fact = |j: &Json| -> Result<(String, Vec<FactValue>), String> {
            let pred = j
                .get("pred")
                .and_then(Json::as_str)
                .ok_or("fact request needs a string \"pred\" field")?
                .to_string();
            let tuple = j
                .get("tuple")
                .and_then(Json::as_array)
                .ok_or("fact request needs an array \"tuple\" field")?
                .iter()
                .map(FactValue::parse)
                .collect::<Result<Vec<_>, _>>()?;
            Ok((pred, tuple))
        };
        match op {
            "run" => {
                let field = |k: &str| -> Result<String, String> {
                    Ok(j.get(k)
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("run request needs a string \"{k}\" field"))?
                        .to_string())
                };
                let backend = match j.get("backend").and_then(Json::as_str) {
                    None => None,
                    Some(name) => Some(
                        BackendKind::parse(name)
                            .ok_or_else(|| format!("unknown backend {name:?}"))?,
                    ),
                };
                let strategy = match j.get("strategy").and_then(Json::as_str) {
                    None => None,
                    Some(name) => Some(
                        Strategy::parse(name)
                            .ok_or_else(|| format!("unknown strategy {name:?}"))?,
                    ),
                };
                Ok(Request::Run(RunRequest {
                    tenant: tenant(&j)?,
                    program: field("program")?,
                    output: field("output")?,
                    all: j.get("all").and_then(Json::as_bool).unwrap_or(false),
                    seed: j.get("seed").and_then(Json::as_u64),
                    threads: j.get("threads").and_then(Json::as_u64).map(|n| n as usize),
                    backend,
                    strategy,
                    timeout_ms: j.get("timeout_ms").and_then(Json::as_u64),
                    max_rounds: j.get("max_rounds").and_then(Json::as_u64),
                    max_tuples: j.get("max_tuples").and_then(Json::as_u64),
                    max_bytes: j.get("max_bytes").and_then(Json::as_u64),
                    max_models: j.get("max_models").and_then(Json::as_u64),
                }))
            }
            "insert" => {
                let (pred, tuple) = fact(&j)?;
                Ok(Request::Insert {
                    tenant: tenant(&j)?,
                    pred,
                    tuple,
                })
            }
            "retract" => {
                let (pred, tuple) = fact(&j)?;
                Ok(Request::Retract {
                    tenant: tenant(&j)?,
                    pred,
                    tuple,
                })
            }
            "ping" => Ok(Request::Ping {
                schema: j.get("schema").and_then(Json::as_str).map(str::to_string),
            }),
            "stats" => Ok(Request::Stats {
                tenant: tenant(&j)?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Render as one compact JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut fields: Vec<(String, Json)> = Vec::new();
        let mut put = |k: &str, v: Json| fields.push((k.to_string(), v));
        match self {
            Request::Run(r) => {
                put("op", Json::str("run"));
                put("tenant", Json::str(r.tenant.clone()));
                put("program", Json::str(r.program.clone()));
                put("output", Json::str(r.output.clone()));
                if r.all {
                    put("all", Json::Bool(true));
                }
                let nums = [
                    ("seed", r.seed),
                    ("timeout_ms", r.timeout_ms),
                    ("max_rounds", r.max_rounds),
                    ("max_tuples", r.max_tuples),
                    ("max_bytes", r.max_bytes),
                    ("max_models", r.max_models),
                ];
                for (k, v) in nums {
                    if let Some(n) = v {
                        // Exact integers: a u64 seed must not round through
                        // f64 (the server would silently evaluate under a
                        // different seed than the client asked for).
                        put(k, Json::int(n));
                    }
                }
                if let Some(t) = r.threads {
                    put("threads", Json::int(t as u64));
                }
                if let Some(b) = r.backend {
                    put("backend", Json::str(b.name()));
                }
                if let Some(s) = r.strategy {
                    put("strategy", Json::str(s.name()));
                }
            }
            Request::Insert {
                tenant,
                pred,
                tuple,
            }
            | Request::Retract {
                tenant,
                pred,
                tuple,
            } => {
                let op = if matches!(self, Request::Insert { .. }) {
                    "insert"
                } else {
                    "retract"
                };
                put("op", Json::str(op));
                put("tenant", Json::str(tenant.clone()));
                put("pred", Json::str(pred.clone()));
                put(
                    "tuple",
                    Json::Array(tuple.iter().map(FactValue::to_json).collect()),
                );
            }
            Request::Ping { schema } => {
                put("op", Json::str("ping"));
                if let Some(s) = schema {
                    put("schema", Json::str(s.clone()));
                }
            }
            Request::Stats { tenant } => {
                put("op", Json::str("stats"));
                put("tenant", Json::str(tenant.clone()));
            }
            Request::Shutdown => put("op", Json::str("shutdown")),
        }
        Json::Object(fields).render()
    }
}

/// How a `run` request was satisfied (diagnostic; not part of the
/// byte-identical answer surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Served straight from a maintained materialized model.
    Materialized,
    /// The model was updated by delta propagation before serving.
    Incremental,
    /// The model was recomputed in full before serving.
    Recomputed,
    /// Evaluated from scratch for this request (seeded, limited, or `all`).
    Fresh,
}

impl ServeMode {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ServeMode::Materialized => "materialized",
            ServeMode::Incremental => "incremental",
            ServeMode::Recomputed => "recomputed",
            ServeMode::Fresh => "fresh",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<ServeMode> {
        Some(match s {
            "materialized" => ServeMode::Materialized,
            "incremental" => ServeMode::Incremental,
            "recomputed" => ServeMode::Recomputed,
            "fresh" => ServeMode::Fresh,
            _ => return None,
        })
    }
}

/// One response line. `exit` mirrors the CLI exit-code convention (0 ok,
/// 1 failure, 2 usage, 3 limit, 130 cancelled); `code` is the stable
/// [`ErrorCode`] string when the request failed.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Exit-code-style status.
    pub exit: u8,
    /// Stable error code on failure.
    pub code: Option<ErrorCode>,
    /// Human-readable message on failure.
    pub error: Option<String>,
    /// Canonically ordered answer tuples (`run`): each tuple rendered as
    /// comma-joined values. Also carries partial results on a limit trip.
    pub answers: Option<Vec<String>>,
    /// All distinct answers of a non-deterministic query (`run` with
    /// `all`): each inner list one answer's tuples, canonically sorted.
    pub models: Option<Vec<Vec<String>>>,
    /// Whether an `all` enumeration completed within its budget.
    pub complete: Option<bool>,
    /// Prepared-query cache: `true` = hit.
    pub cache_hit: Option<bool>,
    /// How the request was satisfied.
    pub mode: Option<ServeMode>,
    /// Whether a fact change altered the database (`insert`/`retract`).
    pub changed: Option<bool>,
    /// Tenant fact count (`stats`, `insert`, `retract`).
    pub facts: Option<u64>,
    /// Cached prepared queries for the tenant (`stats`).
    pub queries: Option<u64>,
    /// Durable change-log version of the tenant (`stats`, when the server
    /// runs with a data directory).
    pub version: Option<u64>,
    /// Schema identifier (`ping`).
    pub schema: Option<String>,
    /// Backoff hint in milliseconds, set with the `overloaded` error: the
    /// client should wait at least this long before retrying.
    pub retry_after_ms: Option<u64>,
}

impl Response {
    /// A success with no payload.
    pub fn ok() -> Response {
        Response {
            exit: 0,
            code: None,
            error: None,
            answers: None,
            models: None,
            complete: None,
            cache_hit: None,
            mode: None,
            changed: None,
            facts: None,
            queries: None,
            version: None,
            schema: None,
            retry_after_ms: None,
        }
    }

    /// A failure carrying `code` and a message; `exit` follows
    /// [`ErrorCode::exit_code`].
    pub fn error(code: ErrorCode, message: impl Into<String>) -> Response {
        Response {
            exit: code.exit_code(),
            code: Some(code),
            error: Some(message.into()),
            ..Response::ok()
        }
    }

    /// Render as one compact JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut fields: Vec<(String, Json)> = vec![("exit".to_string(), Json::int(self.exit))];
        let mut put = |k: &str, v: Json| fields.push((k.to_string(), v));
        if let Some(code) = self.code {
            put("code", Json::str(code.as_str()));
        }
        if let Some(e) = &self.error {
            put("error", Json::str(e.clone()));
        }
        if let Some(a) = &self.answers {
            put(
                "answers",
                Json::Array(a.iter().map(|s| Json::str(s.clone())).collect()),
            );
        }
        if let Some(m) = &self.models {
            put(
                "models",
                Json::Array(
                    m.iter()
                        .map(|rows| {
                            Json::Array(rows.iter().map(|s| Json::str(s.clone())).collect())
                        })
                        .collect(),
                ),
            );
        }
        if let Some(c) = self.complete {
            put("complete", Json::Bool(c));
        }
        if let Some(h) = self.cache_hit {
            put("cache_hit", Json::Bool(h));
        }
        if let Some(m) = self.mode {
            put("mode", Json::str(m.as_str()));
        }
        if let Some(c) = self.changed {
            put("changed", Json::Bool(c));
        }
        if let Some(f) = self.facts {
            put("facts", Json::int(f));
        }
        if let Some(q) = self.queries {
            put("queries", Json::int(q));
        }
        if let Some(v) = self.version {
            put("version", Json::int(v));
        }
        if let Some(s) = &self.schema {
            put("schema", Json::str(s.clone()));
        }
        if let Some(ms) = self.retry_after_ms {
            put("retry_after_ms", Json::int(ms));
        }
        Json::Object(fields).render()
    }

    /// Parse one response line.
    pub fn parse(line: &str) -> Result<Response, String> {
        let j = Json::parse(line)?;
        let exit = j
            .get("exit")
            .and_then(Json::as_u64)
            .ok_or("response needs a numeric \"exit\" field")?;
        let code = match j.get("code").and_then(Json::as_str) {
            None => None,
            Some(s) => Some(ErrorCode::parse(s).ok_or_else(|| format!("unknown code {s:?}"))?),
        };
        let answers = match j.get("answers").and_then(Json::as_array) {
            None => None,
            Some(items) => Some(
                items
                    .iter()
                    .map(|i| {
                        i.as_str()
                            .map(str::to_string)
                            .ok_or("answers must be strings")
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        };
        let models = match j.get("models").and_then(Json::as_array) {
            None => None,
            Some(items) => Some(
                items
                    .iter()
                    .map(|m| {
                        m.as_array()
                            .ok_or("models must be arrays of strings")?
                            .iter()
                            .map(|i| {
                                i.as_str()
                                    .map(str::to_string)
                                    .ok_or("models must be arrays of strings")
                            })
                            .collect::<Result<Vec<_>, _>>()
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        };
        let mode = match j.get("mode").and_then(Json::as_str) {
            None => None,
            Some(s) => Some(ServeMode::parse(s).ok_or_else(|| format!("unknown mode {s:?}"))?),
        };
        Ok(Response {
            exit: exit as u8,
            code,
            error: j.get("error").and_then(Json::as_str).map(str::to_string),
            answers,
            models,
            complete: j.get("complete").and_then(Json::as_bool),
            cache_hit: j.get("cache_hit").and_then(Json::as_bool),
            mode,
            changed: j.get("changed").and_then(Json::as_bool),
            facts: j.get("facts").and_then(Json::as_u64),
            queries: j.get("queries").and_then(Json::as_u64),
            version: j.get("version").and_then(Json::as_u64),
            schema: j.get("schema").and_then(Json::as_str).map(str::to_string),
            retry_after_ms: j.get("retry_after_ms").and_then(Json::as_u64),
        })
    }
}

/// Render a relation as the protocol's canonical answer strings: tuples in
/// canonical (name-based) order, each value displayed and comma-joined.
/// A pure function of relation *content*, so any two states holding the
/// same relation — materialized, incrementally maintained, or freshly
/// evaluated, on either backend, at any thread count — render byte-
/// identically.
pub fn render_answers(rel: &Relation, interner: &Interner) -> Vec<String> {
    rel.sorted_canonical(interner)
        .iter()
        .map(|t| render_tuple(t, interner))
        .collect()
}

/// One tuple as a comma-joined value string.
pub fn render_tuple(t: &Tuple, interner: &Interner) -> String {
    t.values()
        .iter()
        .map(|v| v.display(interner).to_string())
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::govern::LimitKind;

    #[test]
    fn run_request_round_trips() {
        let mut r = RunRequest::new("acme", "p(X) :- q(X).", "p");
        r.all = true;
        r.seed = Some(7);
        r.threads = Some(2);
        r.backend = Some(BackendKind::Columnar);
        r.timeout_ms = Some(250);
        r.max_rounds = Some(10);
        r.max_tuples = Some(1000);
        r.max_bytes = Some(1 << 20);
        r.max_models = Some(64);
        r.strategy = Some(Strategy::Magic);
        let line = Request::Run(r.clone()).to_json();
        assert!(line.contains("\"strategy\":\"magic\""), "{line}");
        assert_eq!(Request::parse(&line).unwrap(), Request::Run(r.clone()));
        // The ceiling fields map onto Limits.
        let limits = r.limits();
        assert_eq!(limits.deadline, Some(Duration::from_millis(250)));
        assert_eq!(limits.max_rounds, Some(10));
        assert_eq!(limits.max_tuples, Some(1000));
        assert_eq!(limits.max_bytes, Some(1 << 20));
        assert!(
            !r.wants_materialized(),
            "limited request bypasses the cache"
        );
        assert!(
            RunRequest::new("acme", "p(X) :- q(X).", "p").wants_materialized(),
            "plain request is materializable"
        );
    }

    #[test]
    fn u64_fields_round_trip_exactly_beyond_f64_precision() {
        // A seed that f64 cannot represent must reach the server bit-for-bit
        // — seeded evaluation promises byte-identity with a local run.
        let mut r = RunRequest::new("acme", "p(X) :- q(X).", "p");
        r.seed = Some(u64::MAX);
        r.max_tuples = Some((1 << 53) + 1);
        let line = Request::Run(r.clone()).to_json();
        assert!(line.contains(&format!("\"seed\":{}", u64::MAX)), "{line}");
        match Request::parse(&line).unwrap() {
            Request::Run(parsed) => {
                assert_eq!(parsed.seed, Some(u64::MAX));
                assert_eq!(parsed.max_tuples, Some((1 << 53) + 1));
                assert_eq!(parsed, r);
            }
            other => panic!("unexpected request {other:?}"),
        }
    }

    #[test]
    fn fact_requests_round_trip_with_mixed_sorts() {
        let req = Request::Insert {
            tenant: "t".into(),
            pred: "num".into(),
            tuple: vec![FactValue::Sym("a".into()), FactValue::Int(42)],
        };
        let parsed = Request::parse(&req.to_json()).unwrap();
        assert_eq!(parsed, req);
        let ret = Request::Retract {
            tenant: "t".into(),
            pred: "num".into(),
            tuple: vec![FactValue::Int(-3)],
        };
        assert_eq!(Request::parse(&ret.to_json()).unwrap(), ret);
        for control in [
            Request::Ping { schema: None },
            Request::Ping {
                schema: Some(SERVICE_SCHEMA.to_string()),
            },
            Request::Stats { tenant: "t".into() },
            Request::Shutdown,
        ] {
            assert_eq!(Request::parse(&control.to_json()).unwrap(), control);
        }
    }

    #[test]
    fn schema_negotiation_accepts_supported_and_refuses_unknown() {
        assert_eq!(negotiate_schema(None), Ok(SERVICE_SCHEMA));
        for s in SUPPORTED_SCHEMAS {
            assert_eq!(negotiate_schema(Some(s)), Ok(*s));
        }
        let err = negotiate_schema(Some("idlog-service/99")).unwrap_err();
        assert!(err.contains("idlog-service/2"), "{err}");
        assert!(SUPPORTED_SCHEMAS.contains(&SERVICE_SCHEMA));
    }

    #[test]
    fn overloaded_responses_carry_the_retry_hint_and_limit_class_exit() {
        let mut shed = Response::error(ErrorCode::Overloaded, "admission queue full");
        shed.retry_after_ms = Some(150);
        assert_eq!(shed.exit, 3, "overload maps to the limit-trip exit");
        let line = shed.to_json();
        assert!(line.contains("\"retry_after_ms\":150"), "{line}");
        let parsed = Response::parse(&line).unwrap();
        assert_eq!(parsed.code, Some(ErrorCode::Overloaded));
        assert_eq!(parsed.retry_after_ms, Some(150));
        assert_eq!(parsed, shed);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{}").is_err());
        assert!(Request::parse(r#"{"op":"warp"}"#).is_err());
        assert!(Request::parse(r#"{"op":"run","tenant":"t"}"#).is_err());
        assert!(Request::parse(r#"{"op":"insert","tenant":"t","pred":"p"}"#).is_err());
        assert!(
            Request::parse(r#"{"op":"insert","tenant":"t","pred":"p","tuple":[1.5]}"#).is_err(),
            "non-integer numbers are not fact values"
        );
        assert!(Request::parse(
            r#"{"op":"run","tenant":"t","program":"p(a).","output":"p","backend":"flash"}"#
        )
        .is_err());
        assert!(Request::parse(
            r#"{"op":"run","tenant":"t","program":"p(a).","output":"p","strategy":"earley"}"#
        )
        .is_err());
    }

    #[test]
    fn strategy_overrides_opt_out_of_materialized_serving() {
        let plain = RunRequest::new("t", "p(X) :- q(X).", "p");
        assert!(plain.wants_materialized());
        let mut seminaive = plain.clone();
        seminaive.strategy = Some(Strategy::SemiNaive);
        assert!(
            seminaive.wants_materialized(),
            "an explicit seminaive request is the default evaluation"
        );
        for s in [Strategy::Magic, Strategy::Naive] {
            let mut r = plain.clone();
            r.strategy = Some(s);
            assert!(!r.wants_materialized(), "{s} must evaluate fresh");
        }
    }

    #[test]
    fn responses_round_trip_and_follow_the_exit_convention() {
        let ok = Response {
            answers: Some(vec!["a,b".into(), "b,c".into()]),
            models: Some(vec![vec!["a,b".into()], vec!["b,c".into()]]),
            complete: Some(true),
            cache_hit: Some(false),
            mode: Some(ServeMode::Incremental),
            ..Response::ok()
        };
        assert_eq!(Response::parse(&ok.to_json()).unwrap(), ok);
        assert_eq!(ok.exit, 0);

        let limit = Response::error(ErrorCode::Limit(LimitKind::Deadline), "deadline exceeded");
        assert_eq!(limit.exit, 3);
        let parsed = Response::parse(&limit.to_json()).unwrap();
        assert_eq!(parsed.code, Some(ErrorCode::Limit(LimitKind::Deadline)));
        assert_eq!(parsed.exit, 3);

        assert_eq!(Response::error(ErrorCode::Usage, "x").exit, 2);
        assert_eq!(Response::error(ErrorCode::Cancelled, "x").exit, 130);
        assert_eq!(Response::error(ErrorCode::Parse, "x").exit, 1);
        assert_eq!(Response::error(ErrorCode::Protocol, "x").exit, 1);
    }

    #[test]
    fn render_answers_is_canonical() {
        let q = crate::Query::parse("p(X, Y) :- e(X, Y).", "p").unwrap();
        let mut db = q.new_database();
        // Insert out of name order; rendering must sort canonically.
        db.insert_syms("e", &["zoo", "b"]).unwrap();
        db.insert_syms("e", &["ant", "b"]).unwrap();
        let out = q.session(&db).run().unwrap();
        let rendered = render_answers(&out.relation, q.interner());
        assert_eq!(rendered, ["ant,b", "zoo,b"]);
    }
}
