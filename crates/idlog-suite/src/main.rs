//! `idlog-suite`: run the corpus sweep, write `BENCH_7.json` at the
//! repository root (CI regenerates and uploads it as an artifact), and gate
//! the hash-backend runs against the committed `BENCH_6.json` baseline —
//! counters exact, wall time within a generous tolerance. A regression
//! exits nonzero so CI fails.

use std::path::Path;

fn main() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest.join("../..");
    let programs = root.join("programs");
    let report = match idlog_suite::run_suite(&programs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("idlog-suite: {e}");
            std::process::exit(1);
        }
    };
    for case in &report.cases {
        match &case.skipped {
            Some(reason) => println!("{:<20} skipped: {reason}", case.case.program),
            None => {
                let best = case
                    .runs
                    .iter()
                    .map(|r| r.wall_ms)
                    .fold(f64::INFINITY, f64::min);
                let r0 = &case.runs[0];
                println!(
                    "{:<20} rounds {:<4} tuples {:<6} best {best:.3}ms bound {}{}",
                    case.case.program,
                    r0.rounds,
                    r0.tuples,
                    case.round_bound.map_or("-".to_string(), |b| b.to_string()),
                    if r0.tripped { " (governed trip)" } else { "" }
                );
            }
        }
    }
    let out = root.join("BENCH_7.json");
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("idlog-suite: cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("wrote {}", out.display());

    // Regression gate: the committed BENCH_6.json is the previous PR's
    // performance record for the hash backend.
    let baseline_path = root.join("BENCH_6.json");
    match std::fs::read_to_string(&baseline_path) {
        Err(e) => {
            eprintln!(
                "idlog-suite: no baseline at {} ({e}); gate skipped",
                baseline_path.display()
            );
        }
        Ok(src) => match idlog_suite::baseline::regressions(&report, &src) {
            Err(e) => {
                eprintln!("idlog-suite: cannot read baseline: {e}");
                std::process::exit(1);
            }
            Ok(failures) if failures.is_empty() => {
                println!("baseline gate: ok (vs {})", baseline_path.display());
            }
            Ok(failures) => {
                for f in &failures {
                    eprintln!("regression: {f}");
                }
                std::process::exit(1);
            }
        },
    }
}
