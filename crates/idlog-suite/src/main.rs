//! `idlog-suite`: run the corpus sweep plus the served-mode latency bench,
//! the goal-directed point-query bench, and the durability restart-cost
//! bench, write `BENCH_10.json` at the repository root (CI regenerates and
//! uploads it as an artifact), and gate the hash-backend runs against the
//! committed `BENCH_9.json` baseline — counters exact, wall time within a
//! generous tolerance. The served section is gated directly: incremental
//! maintenance must beat full recompute. So is the magic section
//! (`strategy=magic` must insert and probe strictly fewer tuples than
//! direct evaluation on both backends) and the durability section
//! (recovering a tenant from its checkpoint must be strictly cheaper than
//! replaying the WAL from genesis), or the binary exits nonzero so CI
//! fails.

use std::path::Path;

/// Chain length / insert count for the served bench: large enough that a
/// full recompute per query visibly dwarfs delta maintenance, small enough
/// to keep CI fast.
const SERVED_NODES: usize = 200;
const SERVED_INSERTS: usize = 20;

/// Forest shape for the magic bench: several chains of which only one is
/// reachable from the query constant, so the pruning is unmistakable.
const MAGIC_CHAINS: usize = 8;
const MAGIC_CHAIN_LEN: usize = 40;

/// Shape of the durability bench tenant: a 200-node transitive-closure
/// chain plus enough paired insert/retract churn that the genesis WAL
/// dwarfs the surviving EDB, so checkpointing has something to prove.
const DURABILITY_NODES: usize = 200;
const DURABILITY_CHURN: usize = 2000;
const DURABILITY_FSYNC_WRITES: usize = 512;

fn main() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest.join("../..");
    let programs = root.join("programs");
    let mut report = match idlog_suite::run_suite(&programs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("idlog-suite: {e}");
            std::process::exit(1);
        }
    };
    for case in &report.cases {
        match &case.skipped {
            Some(reason) => println!("{:<20} skipped: {reason}", case.case.program),
            None => {
                let best = case
                    .runs
                    .iter()
                    .map(|r| r.wall_ms)
                    .fold(f64::INFINITY, f64::min);
                let r0 = &case.runs[0];
                println!(
                    "{:<20} rounds {:<4} tuples {:<6} best {best:.3}ms bound {}{}",
                    case.case.program,
                    r0.rounds,
                    r0.tuples,
                    case.round_bound.map_or("-".to_string(), |b| b.to_string()),
                    if r0.tripped { " (governed trip)" } else { "" }
                );
            }
        }
    }

    // Served-mode bench: incremental maintenance vs full recompute over
    // the same wire protocol.
    let served = match idlog_suite::served::run_served(SERVED_NODES, SERVED_INSERTS) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("idlog-suite: served bench failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "served ({} nodes, {} inserts) incremental {:.3}ms recompute {:.3}ms speedup {:.2}x",
        served.nodes,
        served.inserts,
        served.incremental_ms,
        served.recompute_ms,
        served.speedup()
    );
    let served_ok = served.incremental_ms < served.recompute_ms;
    report.served = Some(served);

    // Goal-directed bench: the same certified point query direct vs
    // `strategy=magic`, byte-identical answers enforced inside run_magic.
    let magic = match idlog_suite::magic::run_magic(MAGIC_CHAINS, MAGIC_CHAIN_LEN) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("idlog-suite: magic bench failed: {e}");
            std::process::exit(1);
        }
    };
    let r0 = &magic.runs[0];
    println!(
        "magic ({} chains x {} nodes, {} answers) inserted {} -> {} probes {} -> {} pruned {}",
        magic.chains,
        magic.chain_len,
        magic.answers,
        r0.direct_inserted,
        r0.magic_inserted,
        r0.direct_probes,
        r0.magic_probes,
        r0.pruned
    );
    let magic_ok = magic.strictly_prunes();
    report.magic = Some(magic);

    // Durability bench: genesis WAL replay vs checkpoint recovery vs cold
    // recompute, plus the fsync-policy throughput sweep.
    let durability = match idlog_suite::durability::run_durability(
        DURABILITY_NODES,
        DURABILITY_CHURN,
        DURABILITY_FSYNC_WRITES,
    ) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("idlog-suite: durability bench failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "durability ({} nodes, {} churn) genesis replay {:.3}ms ({} records) \
         checkpoint recovery {:.3}ms ({} records) cold recompute {:.3}ms",
        durability.nodes,
        durability.churn,
        durability.genesis_replay_ms,
        durability.genesis_wal_records,
        durability.checkpoint_recovery_ms,
        durability.checkpoint_wal_records,
        durability.cold_recompute_ms,
    );
    for f in &durability.fsync {
        println!(
            "  fsync {:<6} {} writes in {:.3}ms ({:.0}/s)",
            f.policy,
            f.writes,
            f.wall_ms,
            f.writes_per_sec()
        );
    }
    let durability_ok = durability.checkpoint_beats_genesis();
    report.durability = Some(durability);

    let out = root.join("BENCH_10.json");
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("idlog-suite: cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("wrote {}", out.display());

    if !served_ok {
        eprintln!("regression: served incremental path is not cheaper than full recompute");
        std::process::exit(1);
    }
    if !magic_ok {
        eprintln!(
            "regression: strategy=magic does not strictly prune \
             (inserted/probes must drop and tuples_pruned must be positive on every backend)"
        );
        std::process::exit(1);
    }
    if !durability_ok {
        eprintln!(
            "regression: recovering from the checkpoint is not cheaper than \
             replaying the WAL from genesis"
        );
        std::process::exit(1);
    }

    // Regression gate: the committed BENCH_9.json is the previous PR's
    // performance record for the hash backend.
    let baseline_path = root.join("BENCH_9.json");
    match std::fs::read_to_string(&baseline_path) {
        Err(e) => {
            eprintln!(
                "idlog-suite: no baseline at {} ({e}); gate skipped",
                baseline_path.display()
            );
        }
        Ok(src) => match idlog_suite::baseline::regressions(&report, &src) {
            Err(e) => {
                eprintln!("idlog-suite: cannot read baseline: {e}");
                std::process::exit(1);
            }
            Ok(failures) if failures.is_empty() => {
                println!("baseline gate: ok (vs {})", baseline_path.display());
            }
            Ok(failures) => {
                for f in &failures {
                    eprintln!("regression: {f}");
                }
                std::process::exit(1);
            }
        },
    }
}
