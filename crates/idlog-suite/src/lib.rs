//! Cross-program benchmark suite: run every shipped example under every
//! {backend × strategy × thread-count} combination and record the engine's
//! own counters (fixpoint rounds, inserted tuples, wall time).
//!
//! The binary (`cargo run -p idlog-suite --release`) writes the sweep as
//! `BENCH_9.json` at the repository root — schema `idlog-bench/9` — which
//! CI regenerates and uploads as an artifact on every push, and gates the
//! hash-backend runs against the committed `BENCH_8.json` baseline
//! ([`baseline::regressions`]: rounds/tuples exact, wall time within a
//! generous tolerance). The suite leans on [`idlog_core::termination`]:
//! programs whose certificate has a growth witness (the shipped
//! `diverge.idl`) are run under a round ceiling and recorded as `tripped`
//! instead of hanging the sweep.
//!
//! Schema 8 added a `served` section: the [`served`] module measures the
//! `idlog-server` incremental-maintenance path against full recompute over
//! the same wire protocol, and the binary gates `incremental_ms <
//! recompute_ms` so the service's reason to exist stays measurable.
//!
//! Schema 9 added a `magic` section: the [`magic`] module evaluates a
//! certified point query directly and under `strategy=magic` across every
//! {backend × threads} combination, asserts byte-identical answers, and
//! the binary gates [`magic::MagicBench::strictly_prunes`] — the rewrite
//! must insert and probe strictly fewer tuples on both backends.
//!
//! Schema 10 adds a `durability` section: the [`durability`] module
//! measures what a restart of a durable tenant costs — WAL replay from
//! genesis vs recovery from a checkpoint vs cold recompute — plus an
//! fsync-policy throughput sweep, and the binary gates
//! [`durability::DurabilityBench::checkpoint_beats_genesis`].

#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use idlog_core::{
    analyze_termination, BackendKind, CanonicalOracle, CoreError, EvalOptions, Interner, Strategy,
    TerminationCert, ValidatedProgram,
};
use idlog_storage::Database;

pub mod baseline;
pub mod durability;
pub mod magic;
pub mod served;

/// Round ceiling for programs whose termination certificate carries a
/// growth witness: enough to measure per-round cost, small enough that the
/// sweep stays fast.
pub const GOVERNED_ROUNDS: u64 = 60;

/// The storage backends the sweep covers.
pub const BACKENDS: [BackendKind; 2] = [BackendKind::Hash, BackendKind::Columnar];

/// The strategies the sweep covers.
pub const STRATEGIES: [Strategy; 2] = [Strategy::SemiNaive, Strategy::Naive];

/// The thread counts the sweep covers.
pub const THREADS: [usize; 3] = [1, 2, 4];

/// The JSON name of a strategy (stable across schema versions).
pub fn strategy_name(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::SemiNaive => "semi-naive",
        Strategy::Naive => "naive",
        Strategy::Magic => "magic",
    }
}

/// One program of the corpus, with its sidecar facts file (when one is
/// shipped for it).
#[derive(Debug, Clone)]
pub struct Case {
    /// Program file name (relative to the programs directory).
    pub program: String,
    /// Facts file name, when the program has a shipped EDB.
    pub facts: Option<String>,
}

/// One measured evaluation.
#[derive(Debug, Clone)]
pub struct Run {
    /// Storage backend used.
    pub backend: BackendKind,
    /// Evaluation strategy used.
    pub strategy: Strategy,
    /// Worker threads used.
    pub threads: usize,
    /// Semi-naive iterations across all strata.
    pub rounds: u64,
    /// Genuinely new facts derived.
    pub tuples: u64,
    /// Wall-clock time in milliseconds.
    pub wall_ms: f64,
    /// Whether the round ceiling stopped the run (diverging programs).
    pub tripped: bool,
}

/// The full record for one corpus program.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// The program and its facts sidecar.
    pub case: Case,
    /// Why the program was skipped (choice dialect), if it was.
    pub skipped: Option<String>,
    /// Number of EDB facts loaded.
    pub facts_loaded: usize,
    /// Whether the termination certificate bounds the program.
    pub bounded: bool,
    /// The certified round bound for the loaded database, when bounded.
    pub round_bound: Option<u64>,
    /// One entry per {backend × strategy × threads} combination.
    pub runs: Vec<Run>,
}

/// The whole sweep.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Per-program reports, in corpus order.
    pub cases: Vec<CaseReport>,
    /// The served-mode latency record, when the service bench ran.
    pub served: Option<served::ServedBench>,
    /// The goal-directed point-query record, when the magic bench ran.
    pub magic: Option<magic::MagicBench>,
    /// The restart-cost record, when the durability bench ran.
    pub durability: Option<durability::DurabilityBench>,
}

/// The shipped facts sidecar for a program stem, mirroring the pairings
/// the CLI integration tests and the README use.
fn facts_for(stem: &str) -> Option<&'static str> {
    match stem {
        "all_depts" | "dept_sizes" | "sampling" => Some("company.facts"),
        "ancestor" => Some("ancestor.facts"),
        "coloring" => Some("cycle.facts"),
        "parity" => Some("people.facts"),
        _ => None,
    }
}

/// Enumerate the corpus: every `*.idl` under `dir`, sorted by name.
pub fn corpus(dir: &Path) -> std::io::Result<Vec<Case>> {
    let mut programs: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "idl"))
        .collect();
    programs.sort();
    Ok(programs
        .into_iter()
        .map(|p| {
            let stem = p.file_stem().unwrap_or_default().to_string_lossy();
            Case {
                facts: facts_for(&stem).map(str::to_string),
                program: p
                    .file_name()
                    .unwrap_or_default()
                    .to_string_lossy()
                    .into_owned(),
            }
        })
        .collect())
}

/// Is this source in the DATALOG^C dialect (any `choice` literal)? Choice
/// programs are translated, not evaluated directly, so the sweep skips
/// them.
fn is_choice_dialect(src: &str, interner: &Interner) -> bool {
    let Ok(program) = idlog_parser::parse_program(src, interner) else {
        return false;
    };
    program.clauses.iter().any(|c| {
        c.body
            .iter()
            .any(|l| matches!(l, idlog_parser::Literal::Choice { .. }))
    })
}

/// Run one corpus case across every {backend × strategy × threads}
/// combination.
pub fn run_case(dir: &Path, case: &Case) -> Result<CaseReport, String> {
    let path = dir.join(&case.program);
    let src = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", case.program))?;
    let interner = Arc::new(Interner::new());
    if is_choice_dialect(&src, &interner) {
        return Ok(CaseReport {
            case: case.clone(),
            skipped: Some("choice dialect (translate first)".into()),
            facts_loaded: 0,
            bounded: false,
            round_bound: None,
            runs: Vec::new(),
        });
    }
    let program = ValidatedProgram::parse(&src, Arc::clone(&interner))
        .map_err(|e| format!("{}: {e}", case.program))?;
    let mut db = Database::with_interner(Arc::clone(&interner));
    if let Some(facts) = &case.facts {
        let facts_src =
            std::fs::read_to_string(dir.join(facts)).map_err(|e| format!("{facts}: {e}"))?;
        idlog_core::load_facts(&facts_src, &mut db).map_err(|e| format!("{facts}: {e}"))?;
    }
    let facts_loaded = db.iter().map(|(_, r)| r.len()).sum();
    let cert: TerminationCert = analyze_termination(program.ast());
    let governed = cert.growth_witness().is_some();

    let mut runs = Vec::new();
    for backend in BACKENDS {
        for strategy in STRATEGIES {
            for threads in THREADS {
                let mut options = EvalOptions::new()
                    .backend(backend)
                    .strategy(strategy)
                    .threads(threads);
                if governed {
                    options = options.max_rounds(GOVERNED_ROUNDS);
                }
                let mut oracle = CanonicalOracle;
                let start = Instant::now();
                let outcome =
                    idlog_core::evaluate_with_options(&program, &db, &mut oracle, &options);
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                let run = match outcome {
                    Ok(out) => Run {
                        backend,
                        strategy,
                        threads,
                        rounds: out.stats().iterations,
                        tuples: out.stats().inserted,
                        wall_ms,
                        tripped: false,
                    },
                    Err(CoreError::LimitExceeded { .. }) => Run {
                        backend,
                        strategy,
                        threads,
                        rounds: GOVERNED_ROUNDS,
                        tuples: 0,
                        wall_ms,
                        tripped: true,
                    },
                    Err(e) => return Err(format!("{}: {e}", case.program)),
                };
                runs.push(run);
            }
        }
    }
    Ok(CaseReport {
        case: case.clone(),
        skipped: None,
        facts_loaded,
        bounded: cert.bounded(),
        round_bound: cert.round_bound(&db),
        runs,
    })
}

/// Run the whole corpus under `dir`.
pub fn run_suite(dir: &Path) -> Result<SuiteReport, String> {
    let cases = corpus(dir).map_err(|e| e.to_string())?;
    if cases.is_empty() {
        return Err(format!("no .idl programs under {}", dir.display()));
    }
    let mut reports = Vec::new();
    for case in &cases {
        reports.push(run_case(dir, case)?);
    }
    Ok(SuiteReport {
        cases: reports,
        served: None,
        magic: None,
        durability: None,
    })
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", idlog_common::json::escape(s))
}

impl SuiteReport {
    /// Render the sweep as schema-tagged JSON (`idlog-bench/9`).
    pub fn to_json(&self) -> String {
        let mut cases = Vec::new();
        for r in &self.cases {
            let mut fields = vec![format!("\"program\": {}", json_str(&r.case.program))];
            match &r.case.facts {
                Some(f) => fields.push(format!("\"facts\": {}", json_str(f))),
                None => fields.push("\"facts\": null".into()),
            }
            if let Some(reason) = &r.skipped {
                fields.push(format!("\"skipped\": {}", json_str(reason)));
            } else {
                fields.push(format!("\"facts_loaded\": {}", r.facts_loaded));
                fields.push(format!("\"bounded\": {}", r.bounded));
                match r.round_bound {
                    Some(b) => fields.push(format!("\"round_bound\": {b}")),
                    None => fields.push("\"round_bound\": null".into()),
                }
                let runs: Vec<String> = r
                    .runs
                    .iter()
                    .map(|run| {
                        format!(
                            "{{\"backend\": {}, \"strategy\": {}, \"threads\": {}, \
                             \"rounds\": {}, \"tuples\": {}, \"wall_ms\": {:.3}, \
                             \"tripped\": {}}}",
                            json_str(run.backend.name()),
                            json_str(strategy_name(run.strategy)),
                            run.threads,
                            run.rounds,
                            run.tuples,
                            run.wall_ms,
                            run.tripped
                        )
                    })
                    .collect();
                fields.push(format!("\"runs\": [{}]", runs.join(", ")));
            }
            cases.push(format!("  {{{}}}", fields.join(", ")));
        }
        let served = match &self.served {
            None => "null".to_string(),
            Some(s) => {
                let modes: Vec<String> = s.modes.iter().map(|m| json_str(m)).collect();
                format!(
                    "{{\"nodes\": {}, \"inserts\": {}, \"incremental_ms\": {:.3}, \
                     \"recompute_ms\": {:.3}, \"speedup\": {:.3}, \"modes\": [{}]}}",
                    s.nodes,
                    s.inserts,
                    s.incremental_ms,
                    s.recompute_ms,
                    s.speedup(),
                    modes.join(", ")
                )
            }
        };
        let magic = match &self.magic {
            None => "null".to_string(),
            Some(m) => {
                let runs: Vec<String> = m
                    .runs
                    .iter()
                    .map(|r| {
                        format!(
                            "{{\"backend\": {}, \"threads\": {}, \
                             \"direct_inserted\": {}, \"direct_probes\": {}, \
                             \"magic_inserted\": {}, \"magic_probes\": {}, \
                             \"pruned\": {}}}",
                            json_str(r.backend.name()),
                            r.threads,
                            r.direct_inserted,
                            r.direct_probes,
                            r.magic_inserted,
                            r.magic_probes,
                            r.pruned
                        )
                    })
                    .collect();
                format!(
                    "{{\"chains\": {}, \"chain_len\": {}, \"answers\": {}, \
                     \"strictly_prunes\": {}, \"runs\": [{}]}}",
                    m.chains,
                    m.chain_len,
                    m.answers,
                    m.strictly_prunes(),
                    runs.join(", ")
                )
            }
        };
        let durability = match &self.durability {
            None => "null".to_string(),
            Some(d) => {
                let fsync: Vec<String> = d
                    .fsync
                    .iter()
                    .map(|f| {
                        format!(
                            "{{\"policy\": {}, \"writes\": {}, \"wall_ms\": {:.3}, \
                             \"writes_per_sec\": {:.1}}}",
                            json_str(&f.policy),
                            f.writes,
                            f.wall_ms,
                            f.writes_per_sec()
                        )
                    })
                    .collect();
                format!(
                    "{{\"nodes\": {}, \"churn\": {}, \
                     \"genesis_wal_records\": {}, \"genesis_replay_ms\": {:.3}, \
                     \"checkpoint_wal_records\": {}, \"checkpoint_recovery_ms\": {:.3}, \
                     \"cold_recompute_ms\": {:.3}, \"checkpoint_beats_genesis\": {}, \
                     \"fsync\": [{}]}}",
                    d.nodes,
                    d.churn,
                    d.genesis_wal_records,
                    d.genesis_replay_ms,
                    d.checkpoint_wal_records,
                    d.checkpoint_recovery_ms,
                    d.cold_recompute_ms,
                    d.checkpoint_beats_genesis(),
                    fsync.join(", ")
                )
            }
        };
        format!(
            "{{\n\"schema\": \"idlog-bench/10\",\n\"served\": {served},\n\"magic\": {magic},\n\
             \"durability\": {durability},\n\"cases\": [\n{}\n]\n}}\n",
            cases.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn programs_dir() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../programs")
    }

    #[test]
    fn sweep_covers_corpus_and_stays_deterministic() {
        let report = run_suite(&programs_dir()).unwrap();
        assert!(report.cases.len() >= 5, "{}", report.cases.len());
        for case in &report.cases {
            if case.skipped.is_some() {
                continue;
            }
            // Rounds and tuples are engine counters, promised identical
            // across thread counts per (backend, strategy)…
            for backend in BACKENDS {
                for strategy in STRATEGIES {
                    let per: Vec<&Run> = case
                        .runs
                        .iter()
                        .filter(|r| r.backend == backend && r.strategy == strategy)
                        .collect();
                    assert_eq!(per.len(), THREADS.len(), "{}", case.case.program);
                    assert!(
                        per.windows(2)
                            .all(|w| w[0].rounds == w[1].rounds && w[0].tuples == w[1].tuples),
                        "{} not thread-deterministic: {:?}",
                        case.case.program,
                        per
                    );
                }
            }
            // …and across storage backends per (strategy, threads): the
            // backend changes physical layout only, never the counters.
            for strategy in STRATEGIES {
                for threads in THREADS {
                    let per: Vec<&Run> = case
                        .runs
                        .iter()
                        .filter(|r| r.strategy == strategy && r.threads == threads)
                        .collect();
                    assert_eq!(per.len(), BACKENDS.len(), "{}", case.case.program);
                    assert!(
                        per.windows(2).all(|w| w[0].rounds == w[1].rounds
                            && w[0].tuples == w[1].tuples
                            && w[0].tripped == w[1].tripped),
                        "{} not backend-deterministic: {:?}",
                        case.case.program,
                        per
                    );
                }
            }
            // A certified bound is an over-approximation of the real
            // round count on this very database.
            if let Some(bound) = case.round_bound {
                for run in &case.runs {
                    assert!(
                        run.rounds <= bound,
                        "{}: {} rounds > certified bound {bound}",
                        case.case.program,
                        run.rounds
                    );
                }
            }
        }
        // The shipped diverging program must be governed, not hung.
        let diverge = report
            .cases
            .iter()
            .find(|c| c.case.program == "diverge.idl")
            .expect("diverge.idl in corpus");
        assert!(!diverge.bounded);
        assert!(diverge.runs.iter().all(|r| r.tripped), "{diverge:?}");
    }

    #[test]
    fn json_is_schema_tagged_and_escaped() {
        let report = SuiteReport {
            cases: vec![CaseReport {
                case: Case {
                    program: "a\"b.idl".into(),
                    facts: None,
                },
                skipped: Some("choice dialect (translate first)".into()),
                facts_loaded: 0,
                bounded: false,
                round_bound: None,
                runs: Vec::new(),
            }],
            served: Some(served::ServedBench {
                nodes: 10,
                inserts: 2,
                incremental_ms: 1.0,
                recompute_ms: 4.0,
                modes: vec!["incremental".into(), "incremental".into()],
            }),
            magic: Some(magic::MagicBench {
                chains: 3,
                chain_len: 20,
                answers: 19,
                runs: vec![magic::MagicRun {
                    backend: BackendKind::Hash,
                    threads: 1,
                    direct_inserted: 100,
                    direct_probes: 200,
                    magic_inserted: 40,
                    magic_probes: 80,
                    pruned: 38,
                }],
            }),
            durability: Some(durability::DurabilityBench {
                nodes: 200,
                churn: 400,
                genesis_wal_records: 1000,
                genesis_replay_ms: 8.0,
                checkpoint_wal_records: 0,
                checkpoint_recovery_ms: 2.0,
                cold_recompute_ms: 40.0,
                fsync: vec![durability::FsyncRun {
                    policy: "always".into(),
                    writes: 1000,
                    wall_ms: 500.0,
                }],
            }),
        };
        let json = report.to_json();
        assert!(json.contains("\"idlog-bench/10\""), "{json}");
        assert!(json.contains("a\\\"b.idl"), "{json}");
        assert!(json.contains("\"speedup\": 4.000"), "{json}");
        assert!(
            json.contains("\"modes\": [\"incremental\", \"incremental\"]"),
            "{json}"
        );
        assert!(json.contains("\"strictly_prunes\": true"), "{json}");
        assert!(
            json.contains("\"magic_inserted\": 40, \"magic_probes\": 80, \"pruned\": 38"),
            "{json}"
        );
        assert!(
            json.contains("\"checkpoint_beats_genesis\": true"),
            "{json}"
        );
        assert!(
            json.contains("\"policy\": \"always\", \"writes\": 1000, \"wall_ms\": 500.000"),
            "{json}"
        );
        assert!(json.contains("\"writes_per_sec\": 2000.0"), "{json}");
    }

    #[test]
    fn json_tags_runs_with_their_backend() {
        let report = SuiteReport {
            cases: vec![CaseReport {
                case: Case {
                    program: "p.idl".into(),
                    facts: None,
                },
                skipped: None,
                facts_loaded: 1,
                bounded: true,
                round_bound: Some(5),
                runs: vec![Run {
                    backend: idlog_core::BackendKind::Columnar,
                    strategy: Strategy::SemiNaive,
                    threads: 2,
                    rounds: 3,
                    tuples: 4,
                    wall_ms: 0.5,
                    tripped: false,
                }],
            }],
            served: None,
            magic: None,
            durability: None,
        };
        let json = report.to_json();
        assert!(json.contains("\"served\": null"), "{json}");
        assert!(json.contains("\"magic\": null"), "{json}");
        assert!(json.contains("\"durability\": null"), "{json}");
        assert!(json.contains("\"backend\": \"columnar\""), "{json}");
        assert!(json.contains("\"strategy\": \"semi-naive\""), "{json}");
    }
}
