//! Placeholder module; implementation follows.
