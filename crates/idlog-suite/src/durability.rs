//! Durability benchmark: what a restart actually costs.
//!
//! One durable tenant holds a transitive-closure chain plus a churn
//! workload (paired insert/retract traffic) so the genesis WAL is much
//! longer than the surviving EDB. Three recovery costs are then measured
//! on the same data directory:
//!
//! * **genesis replay** — [`TenantStore::open`] with no checkpoint on
//!   disk, so every WAL record since the beginning of time is decoded and
//!   replayed;
//! * **checkpoint recovery** — the same open after a checkpoint has
//!   absorbed the log, so recovery loads one snapshot and replays an
//!   (almost) empty tail;
//! * **cold recompute** — deriving the closure from scratch with
//!   [`idlog_core::evaluate_with_options`], the price a stateless restart
//!   would pay to answer the first query without any persisted EDB.
//!
//! The binary gates `checkpoint_recovery_ms < genesis_replay_ms`: the
//! entire point of checkpoints is to bound restart cost, and the gate
//! keeps that claim measured rather than assumed. A second section sweeps
//! the fsync policy (`always` / `batch` / `never`) over an append-only
//! workload to record what each durability level costs per write.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use idlog_core::service::{FactValue, Request, RunRequest};
use idlog_server::durability::tenant_dir;
use idlog_server::{Client, Server, ServerConfig, SyncPolicy, TenantStore, WalRecord};

/// The chain program whose closure the durable tenant maintains.
pub const DURABLE_PROGRAM: &str = "t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), e(Y, Z).";

/// One fsync-policy measurement: `writes` WAL appends under `policy`.
#[derive(Debug, Clone)]
pub struct FsyncRun {
    /// Policy name (`always` / `batch` / `never`).
    pub policy: String,
    /// Records appended.
    pub writes: usize,
    /// Total wall time in milliseconds.
    pub wall_ms: f64,
}

impl FsyncRun {
    /// Appends per second under this policy.
    pub fn writes_per_sec(&self) -> f64 {
        self.writes as f64 / (self.wall_ms.max(1e-9) / 1e3)
    }
}

/// The measured durability record (the `durability` section of
/// `BENCH_10.json`).
#[derive(Debug, Clone)]
pub struct DurabilityBench {
    /// Chain length of the tenant's closure.
    pub nodes: usize,
    /// Paired insert/retract churn writes inflating the genesis WAL.
    pub churn: usize,
    /// WAL records replayed by the genesis-state recovery.
    pub genesis_wal_records: u64,
    /// Wall time of recovery with no checkpoint, in milliseconds.
    pub genesis_replay_ms: f64,
    /// WAL records replayed after the checkpoint absorbed the log.
    pub checkpoint_wal_records: u64,
    /// Wall time of recovery from the checkpoint, in milliseconds.
    pub checkpoint_recovery_ms: f64,
    /// Wall time of deriving the closure from scratch, in milliseconds.
    pub cold_recompute_ms: f64,
    /// One entry per fsync policy, in `always`/`batch`/`never` order.
    pub fsync: Vec<FsyncRun>,
}

impl DurabilityBench {
    /// The gated claim: recovering from the checkpoint is strictly
    /// cheaper than replaying the WAL from genesis.
    pub fn checkpoint_beats_genesis(&self) -> bool {
        self.checkpoint_recovery_ms < self.genesis_replay_ms
    }
}

/// A scratch directory that cleans up after itself.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> std::io::Result<ScratchDir> {
        let dir = std::env::temp_dir().join(format!("idlog-bench-{tag}-{}", std::process::id()));
        // A leftover from a crashed earlier run would pollute the
        // measurement; start from nothing.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir)?;
        Ok(ScratchDir(dir))
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn edge(from: usize, to: usize) -> Vec<FactValue> {
    vec![
        FactValue::Sym(format!("v{from}")),
        FactValue::Sym(format!("v{to}")),
    ]
}

/// Run one server session against `data_dir` and drive it with `traffic`;
/// returns whatever the closure produces after a clean shutdown.
fn with_server<T>(
    data_dir: &Path,
    checkpoint_every: u64,
    traffic: impl FnOnce(&mut Client) -> Result<T, String>,
) -> Result<T, String> {
    let config = ServerConfig {
        data_dir: Some(data_dir.to_path_buf()),
        sync: SyncPolicy::Never,
        checkpoint_every,
        ..ServerConfig::default()
    };
    let server = Server::bind_with("127.0.0.1:0", config).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?.to_string();
    let handle = std::thread::spawn(move || server.run(2));
    let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
    let out = traffic(&mut client)?;
    let down = client
        .request(&Request::Shutdown)
        .map_err(|e| e.to_string())?;
    if down.exit != 0 {
        return Err("shutdown failed".into());
    }
    handle
        .join()
        .map_err(|_| "server thread panicked".to_string())
        .and_then(|r| r.map_err(|e| e.to_string()))?;
    Ok(out)
}

fn must_ack(client: &mut Client, request: &Request) -> Result<(), String> {
    let resp = client.request(request).map_err(|e| e.to_string())?;
    if resp.exit != 0 {
        return Err(format!("write rejected: {:?}", resp.error));
    }
    Ok(())
}

fn closure_answers(client: &mut Client) -> Result<Vec<String>, String> {
    let resp = client
        .request(&Request::Run(RunRequest::new("dur", DURABLE_PROGRAM, "t")))
        .map_err(|e| e.to_string())?;
    if resp.exit != 0 {
        return Err(format!("run failed: {:?}", resp.error));
    }
    resp.answers.ok_or_else(|| "run returned no answers".into())
}

/// Time one cold [`TenantStore::open`] of the tenant's directory,
/// returning `(wall_ms, wal_records_replayed)`.
fn time_recovery(dir: &Path) -> Result<(f64, u64), String> {
    let tenant = tenant_dir(dir, "dur");
    let start = Instant::now();
    let (_store, recovery) = TenantStore::open(&tenant, SyncPolicy::Never)
        .map_err(|e| format!("recovery open failed: {e}"))?;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    if let Some(reason) = recovery.truncated_tail {
        return Err(format!("unexpected torn tail in a clean bench: {reason}"));
    }
    Ok((wall_ms, recovery.wal_replayed))
}

/// Time deriving the closure from scratch, in-process, single evaluation.
fn time_cold_recompute(nodes: usize) -> Result<f64, String> {
    let interner = Arc::new(idlog_core::Interner::new());
    let program = idlog_core::ValidatedProgram::parse(DURABLE_PROGRAM, Arc::clone(&interner))
        .map_err(|e| e.to_string())?;
    let mut db = idlog_storage::Database::with_interner(Arc::clone(&interner));
    let mut facts = String::new();
    for i in 0..nodes {
        facts.push_str(&format!("e(v{i}, v{}).\n", i + 1));
    }
    idlog_core::load_facts(&facts, &mut db).map_err(|e| e.to_string())?;
    let mut oracle = idlog_core::CanonicalOracle;
    let options = idlog_core::EvalOptions::new().threads(1);
    let start = Instant::now();
    idlog_core::evaluate_with_options(&program, &db, &mut oracle, &options)
        .map_err(|e| e.to_string())?;
    Ok(start.elapsed().as_secs_f64() * 1e3)
}

/// Time `writes` appends under `policy` into a fresh store.
fn time_fsync(policy: SyncPolicy, writes: usize) -> Result<FsyncRun, String> {
    let scratch =
        ScratchDir::new(&format!("fsync-{}", policy.name())).map_err(|e| e.to_string())?;
    let (mut store, _) =
        TenantStore::open(&scratch.0.join("t"), policy).map_err(|e| e.to_string())?;
    let start = Instant::now();
    for i in 0..writes {
        let record = WalRecord::Insert {
            pred: "e".into(),
            tuple: vec![FactValue::Sym(format!("a{i}")), FactValue::Int(i as i64)],
        };
        store
            .append(&record)
            .map_err(|e| format!("append under {}: {}", policy.name(), e.message))?;
    }
    Ok(FsyncRun {
        policy: policy.name().to_string(),
        writes,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    })
}

/// Run the durability bench: build a churned durable tenant, measure
/// genesis replay vs checkpoint recovery vs cold recompute, then sweep
/// the fsync policies over `fsync_writes` appends each.
pub fn run_durability(
    nodes: usize,
    churn: usize,
    fsync_writes: usize,
) -> Result<DurabilityBench, String> {
    let scratch = ScratchDir::new("durability").map_err(|e| e.to_string())?;
    let never_checkpoint = u64::MAX;

    // Phase 1: genesis traffic. The chain is the surviving EDB; every
    // churn pair inflates the WAL without growing the database, so replay
    // length and database size diverge the way long-lived tenants do.
    let baseline = with_server(&scratch.0, never_checkpoint, |client| {
        for i in 0..nodes {
            must_ack(
                client,
                &Request::Insert {
                    tenant: "dur".into(),
                    pred: "e".into(),
                    tuple: edge(i, i + 1),
                },
            )?;
        }
        for k in 0..churn {
            let tuple = edge(nodes + 10 + k, nodes + 11 + k);
            must_ack(
                client,
                &Request::Insert {
                    tenant: "dur".into(),
                    pred: "e".into(),
                    tuple: tuple.clone(),
                },
            )?;
            must_ack(
                client,
                &Request::Retract {
                    tenant: "dur".into(),
                    pred: "e".into(),
                    tuple,
                },
            )?;
        }
        closure_answers(client)
    })?;

    // Phase 2: recovery with nothing but the genesis WAL.
    let (genesis_replay_ms, genesis_wal_records) = time_recovery(&scratch.0)?;

    // Phase 3: absorb the log into a checkpoint. checkpoint_every=1 makes
    // the paired write/undo below checkpoint twice; the second snapshot
    // holds exactly the baseline EDB and the WAL is left empty.
    with_server(&scratch.0, 1, |client| {
        let tuple = edge(0, 0);
        must_ack(
            client,
            &Request::Insert {
                tenant: "dur".into(),
                pred: "e".into(),
                tuple: tuple.clone(),
            },
        )?;
        must_ack(
            client,
            &Request::Retract {
                tenant: "dur".into(),
                pred: "e".into(),
                tuple,
            },
        )
    })?;

    // Phase 4: recovery from the checkpoint, then prove the two recovery
    // paths serve byte-identical answers.
    let (checkpoint_recovery_ms, checkpoint_wal_records) = time_recovery(&scratch.0)?;
    let recovered = with_server(&scratch.0, never_checkpoint, closure_answers)?;
    if recovered != baseline {
        return Err("recovered answers diverged from the pre-restart baseline".into());
    }

    let cold_recompute_ms = time_cold_recompute(nodes)?;

    let fsync = vec![
        time_fsync(SyncPolicy::Always, fsync_writes)?,
        time_fsync(SyncPolicy::Batch, fsync_writes)?,
        time_fsync(SyncPolicy::Never, fsync_writes)?,
    ];

    Ok(DurabilityBench {
        nodes,
        churn,
        genesis_wal_records,
        genesis_replay_ms,
        checkpoint_wal_records,
        checkpoint_recovery_ms,
        cold_recompute_ms,
        fsync,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_paths_agree_and_the_checkpoint_absorbs_the_wal() {
        // Small scale: this test asserts the structural claims (WAL record
        // counts, answer identity — checked inside run_durability); the
        // release binary gates the timing claim.
        let bench = run_durability(16, 24, 32).unwrap();
        // Genesis replay walks chain + churn pairs; the checkpoint leaves
        // (almost) nothing to replay.
        assert_eq!(bench.genesis_wal_records, 16 + 2 * 24);
        assert_eq!(bench.checkpoint_wal_records, 0, "{bench:?}");
        assert_eq!(bench.fsync.len(), 3);
        assert_eq!(
            bench
                .fsync
                .iter()
                .map(|f| f.policy.as_str())
                .collect::<Vec<_>>(),
            ["always", "batch", "never"]
        );
        assert!(bench
            .fsync
            .iter()
            .all(|f| f.wall_ms > 0.0 && f.writes == 32));
    }
}
