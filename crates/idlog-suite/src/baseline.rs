//! Regression gate against the committed baseline sweep.
//!
//! `BENCH_6.json` (schema `idlog-bench/6`, hash backend only) is committed
//! at the repository root as the performance record of the previous PR.
//! [`regressions`] compares the current sweep's hash-backend runs against
//! it: `rounds` and `tuples` are engine counters and must match **exactly**
//! for every `(program, strategy, threads)` the baseline records; `wall_ms`
//! only gates within a deliberately generous tolerance
//! ([`WALL_TOLERANCE_FACTOR`] with a [`WALL_FLOOR_MS`] floor), because CI
//! machines vary while counters do not.
//!
//! The workspace vendors no JSON crate; parsing goes through the shared
//! [`idlog_common::json`] module (re-exported through `idlog_core`), which
//! is enough for the sweep files this suite itself writes.

use idlog_core::BackendKind;
pub use idlog_core::Json;

use crate::{strategy_name, SuiteReport};

/// A current wall time may exceed the baseline by this factor before the
/// gate fails.
pub const WALL_TOLERANCE_FACTOR: f64 = 10.0;

/// Wall times below this floor (in ms) never fail the gate: sub-millisecond
/// baselines amplified by `WALL_TOLERANCE_FACTOR` would still be noise.
pub const WALL_FLOOR_MS: f64 = 50.0;

/// One run of the committed baseline sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRun {
    /// Program file name.
    pub program: String,
    /// Strategy name as recorded (`semi-naive` / `naive`).
    pub strategy: String,
    /// Worker threads.
    pub threads: usize,
    /// Fixpoint rounds.
    pub rounds: u64,
    /// Inserted tuples.
    pub tuples: u64,
    /// Wall time in milliseconds.
    pub wall_ms: f64,
    /// Whether the governed round ceiling tripped.
    pub tripped: bool,
}

/// Parse a committed `BENCH_*.json` into its per-run records. Accepts both
/// schema `idlog-bench/6` (no backend field — hash implied) and
/// `idlog-bench/7` (only `"backend": "hash"` runs are kept, so a future PR
/// can re-baseline on a 7-schema file unchanged).
pub fn parse_baseline(src: &str) -> Result<Vec<BaselineRun>, String> {
    let doc = Json::parse(src)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("baseline has no schema tag")?;
    if !schema.starts_with("idlog-bench/") {
        return Err(format!("unexpected baseline schema {schema:?}"));
    }
    let mut out = Vec::new();
    for case in doc
        .get("cases")
        .and_then(Json::as_array)
        .ok_or("baseline has no cases array")?
    {
        if case.get("skipped").is_some() {
            continue;
        }
        let program = case
            .get("program")
            .and_then(Json::as_str)
            .ok_or("case has no program")?;
        for run in case
            .get("runs")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{program}: no runs"))?
        {
            if let Some(backend) = run.get("backend").and_then(Json::as_str) {
                if backend != BackendKind::Hash.name() {
                    continue;
                }
            }
            let field = |k: &str| {
                run.get(k)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("{program}: run has no {k}"))
            };
            out.push(BaselineRun {
                program: program.to_string(),
                strategy: run
                    .get("strategy")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("{program}: run has no strategy"))?
                    .to_string(),
                threads: field("threads")? as usize,
                rounds: field("rounds")? as u64,
                tuples: field("tuples")? as u64,
                wall_ms: field("wall_ms")?,
                tripped: run.get("tripped") == Some(&Json::Bool(true)),
            });
        }
    }
    Ok(out)
}

/// Compare the current sweep's hash-backend runs against a committed
/// baseline. Returns one message per regression; empty means the gate
/// passes. Programs the baseline does not record (new corpus entries) are
/// not gated; programs it records but the sweep lost are.
pub fn regressions(report: &SuiteReport, baseline_src: &str) -> Result<Vec<String>, String> {
    let baseline = parse_baseline(baseline_src)?;
    let mut failures = Vec::new();
    for base in &baseline {
        let Some(case) = report.cases.iter().find(|c| c.case.program == base.program) else {
            failures.push(format!("{}: dropped from the corpus", base.program));
            continue;
        };
        let Some(run) = case.runs.iter().find(|r| {
            r.backend == BackendKind::Hash
                && strategy_name(r.strategy) == base.strategy
                && r.threads == base.threads
        }) else {
            failures.push(format!(
                "{}: no hash run for ({}, {} threads)",
                base.program, base.strategy, base.threads
            ));
            continue;
        };
        if run.rounds != base.rounds || run.tuples != base.tuples || run.tripped != base.tripped {
            failures.push(format!(
                "{} ({}, {} threads): counters moved: rounds {} -> {}, tuples {} -> {}, \
                 tripped {} -> {}",
                base.program,
                base.strategy,
                base.threads,
                base.rounds,
                run.rounds,
                base.tuples,
                run.tuples,
                base.tripped,
                run.tripped
            ));
        }
        let ceiling = (base.wall_ms * WALL_TOLERANCE_FACTOR).max(WALL_FLOOR_MS);
        if run.wall_ms > ceiling {
            failures.push(format!(
                "{} ({}, {} threads): wall time {:.3}ms exceeds {:.3}ms \
                 (baseline {:.3}ms x {WALL_TOLERANCE_FACTOR}, floor {WALL_FLOOR_MS}ms)",
                base.program, base.strategy, base.threads, run.wall_ms, ceiling, base.wall_ms
            ));
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_baseline_parses() {
        let src = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_6.json"),
        )
        .unwrap();
        let runs = parse_baseline(&src).unwrap();
        // 6 non-skipped programs x 2 strategies x 3 thread counts.
        assert_eq!(runs.len(), 36, "{runs:?}");
        assert!(runs.iter().any(|r| r.program == "diverge.idl" && r.tripped));
    }

    #[test]
    fn gate_passes_on_a_fresh_sweep_and_catches_planted_regressions() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../programs");
        let report = crate::run_suite(&dir).unwrap();
        let baseline_src = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_6.json"),
        )
        .unwrap();
        assert_eq!(
            regressions(&report, &baseline_src).unwrap(),
            Vec::<String>::new()
        );

        // Plant a counter regression: the gate must name it.
        let mut broken = report.clone();
        let case = broken
            .cases
            .iter_mut()
            .find(|c| c.skipped.is_none())
            .unwrap();
        case.runs[0].rounds += 1;
        let failures = regressions(&broken, &baseline_src).unwrap();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("counters moved"), "{failures:?}");

        // Drop a program: the gate must notice the hole.
        let mut dropped = report.clone();
        dropped.cases.retain(|c| c.case.program != "parity.idl");
        let failures = regressions(&dropped, &baseline_src).unwrap();
        assert!(
            failures.iter().all(|f| f.starts_with("parity.idl")) && !failures.is_empty(),
            "{failures:?}"
        );
    }

    #[test]
    fn seven_schema_baselines_keep_only_hash_runs() {
        let src = r#"{
            "schema": "idlog-bench/7",
            "cases": [
                {"program": "p.idl", "facts": null, "facts_loaded": 1, "bounded": true,
                 "round_bound": 5, "runs": [
                    {"backend": "hash", "strategy": "semi-naive", "threads": 1,
                     "rounds": 3, "tuples": 4, "wall_ms": 0.1, "tripped": false},
                    {"backend": "columnar", "strategy": "semi-naive", "threads": 1,
                     "rounds": 3, "tuples": 4, "wall_ms": 0.2, "tripped": false}
                 ]}
            ]
        }"#;
        let runs = parse_baseline(src).unwrap();
        assert_eq!(runs.len(), 1, "{runs:?}");
        assert_eq!(runs[0].rounds, 3);
    }
}
