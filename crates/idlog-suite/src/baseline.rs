//! Regression gate against the committed baseline sweep.
//!
//! `BENCH_6.json` (schema `idlog-bench/6`, hash backend only) is committed
//! at the repository root as the performance record of the previous PR.
//! [`regressions`] compares the current sweep's hash-backend runs against
//! it: `rounds` and `tuples` are engine counters and must match **exactly**
//! for every `(program, strategy, threads)` the baseline records; `wall_ms`
//! only gates within a deliberately generous tolerance
//! ([`WALL_TOLERANCE_FACTOR`] with a [`WALL_FLOOR_MS`] floor), because CI
//! machines vary while counters do not.
//!
//! The workspace vendors no JSON crate, so this module carries a minimal
//! recursive-descent parser — enough for the sweep files this suite itself
//! writes, not a general-purpose implementation.

use idlog_core::BackendKind;

use crate::{strategy_name, SuiteReport};

/// A current wall time may exceed the baseline by this factor before the
/// gate fails.
pub const WALL_TOLERANCE_FACTOR: f64 = 10.0;

/// Wall times below this floor (in ms) never fail the gate: sub-millisecond
/// baselines amplified by `WALL_TOLERANCE_FACTOR` would still be noise.
pub const WALL_FLOOR_MS: f64 = 50.0;

/// A minimal JSON value (see module docs for scope).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`; the counters we read fit).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through verbatim.
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// One run of the committed baseline sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRun {
    /// Program file name.
    pub program: String,
    /// Strategy name as recorded (`semi-naive` / `naive`).
    pub strategy: String,
    /// Worker threads.
    pub threads: usize,
    /// Fixpoint rounds.
    pub rounds: u64,
    /// Inserted tuples.
    pub tuples: u64,
    /// Wall time in milliseconds.
    pub wall_ms: f64,
    /// Whether the governed round ceiling tripped.
    pub tripped: bool,
}

/// Parse a committed `BENCH_*.json` into its per-run records. Accepts both
/// schema `idlog-bench/6` (no backend field — hash implied) and
/// `idlog-bench/7` (only `"backend": "hash"` runs are kept, so a future PR
/// can re-baseline on a 7-schema file unchanged).
pub fn parse_baseline(src: &str) -> Result<Vec<BaselineRun>, String> {
    let doc = Json::parse(src)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("baseline has no schema tag")?;
    if !schema.starts_with("idlog-bench/") {
        return Err(format!("unexpected baseline schema {schema:?}"));
    }
    let mut out = Vec::new();
    for case in doc
        .get("cases")
        .and_then(Json::as_array)
        .ok_or("baseline has no cases array")?
    {
        if case.get("skipped").is_some() {
            continue;
        }
        let program = case
            .get("program")
            .and_then(Json::as_str)
            .ok_or("case has no program")?;
        for run in case
            .get("runs")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{program}: no runs"))?
        {
            if let Some(backend) = run.get("backend").and_then(Json::as_str) {
                if backend != BackendKind::Hash.name() {
                    continue;
                }
            }
            let field = |k: &str| {
                run.get(k)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("{program}: run has no {k}"))
            };
            out.push(BaselineRun {
                program: program.to_string(),
                strategy: run
                    .get("strategy")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("{program}: run has no strategy"))?
                    .to_string(),
                threads: field("threads")? as usize,
                rounds: field("rounds")? as u64,
                tuples: field("tuples")? as u64,
                wall_ms: field("wall_ms")?,
                tripped: run.get("tripped") == Some(&Json::Bool(true)),
            });
        }
    }
    Ok(out)
}

/// Compare the current sweep's hash-backend runs against a committed
/// baseline. Returns one message per regression; empty means the gate
/// passes. Programs the baseline does not record (new corpus entries) are
/// not gated; programs it records but the sweep lost are.
pub fn regressions(report: &SuiteReport, baseline_src: &str) -> Result<Vec<String>, String> {
    let baseline = parse_baseline(baseline_src)?;
    let mut failures = Vec::new();
    for base in &baseline {
        let Some(case) = report.cases.iter().find(|c| c.case.program == base.program) else {
            failures.push(format!("{}: dropped from the corpus", base.program));
            continue;
        };
        let Some(run) = case.runs.iter().find(|r| {
            r.backend == BackendKind::Hash
                && strategy_name(r.strategy) == base.strategy
                && r.threads == base.threads
        }) else {
            failures.push(format!(
                "{}: no hash run for ({}, {} threads)",
                base.program, base.strategy, base.threads
            ));
            continue;
        };
        if run.rounds != base.rounds || run.tuples != base.tuples || run.tripped != base.tripped {
            failures.push(format!(
                "{} ({}, {} threads): counters moved: rounds {} -> {}, tuples {} -> {}, \
                 tripped {} -> {}",
                base.program,
                base.strategy,
                base.threads,
                base.rounds,
                run.rounds,
                base.tuples,
                run.tuples,
                base.tripped,
                run.tripped
            ));
        }
        let ceiling = (base.wall_ms * WALL_TOLERANCE_FACTOR).max(WALL_FLOOR_MS);
        if run.wall_ms > ceiling {
            failures.push(format!(
                "{} ({}, {} threads): wall time {:.3}ms exceeds {:.3}ms \
                 (baseline {:.3}ms x {WALL_TOLERANCE_FACTOR}, floor {WALL_FLOOR_MS}ms)",
                base.program, base.strategy, base.threads, run.wall_ms, ceiling, base.wall_ms
            ));
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_the_sweep_grammar() {
        let doc =
            Json::parse(r#"{"s": "a\"bA", "n": -1.5e2, "t": true, "x": null, "a": [1, {}, []]}"#)
                .unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("a\"bA"));
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(-150.0));
        assert_eq!(doc.get("t"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("x"), Some(&Json::Null));
        assert_eq!(
            doc.get("a").and_then(Json::as_array).map(<[_]>::len),
            Some(3)
        );
        assert!(Json::parse("{\"k\": 1} trailing").is_err());
        assert!(Json::parse("{\"k\"").is_err());
    }

    #[test]
    fn committed_baseline_parses() {
        let src = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_6.json"),
        )
        .unwrap();
        let runs = parse_baseline(&src).unwrap();
        // 6 non-skipped programs x 2 strategies x 3 thread counts.
        assert_eq!(runs.len(), 36, "{runs:?}");
        assert!(runs.iter().any(|r| r.program == "diverge.idl" && r.tripped));
    }

    #[test]
    fn gate_passes_on_a_fresh_sweep_and_catches_planted_regressions() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../programs");
        let report = crate::run_suite(&dir).unwrap();
        let baseline_src = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_6.json"),
        )
        .unwrap();
        assert_eq!(
            regressions(&report, &baseline_src).unwrap(),
            Vec::<String>::new()
        );

        // Plant a counter regression: the gate must name it.
        let mut broken = report.clone();
        let case = broken
            .cases
            .iter_mut()
            .find(|c| c.skipped.is_none())
            .unwrap();
        case.runs[0].rounds += 1;
        let failures = regressions(&broken, &baseline_src).unwrap();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("counters moved"), "{failures:?}");

        // Drop a program: the gate must notice the hole.
        let mut dropped = report.clone();
        dropped.cases.retain(|c| c.case.program != "parity.idl");
        let failures = regressions(&dropped, &baseline_src).unwrap();
        assert!(
            failures.iter().all(|f| f.starts_with("parity.idl")) && !failures.is_empty(),
            "{failures:?}"
        );
    }

    #[test]
    fn seven_schema_baselines_keep_only_hash_runs() {
        let src = r#"{
            "schema": "idlog-bench/7",
            "cases": [
                {"program": "p.idl", "facts": null, "facts_loaded": 1, "bounded": true,
                 "round_bound": 5, "runs": [
                    {"backend": "hash", "strategy": "semi-naive", "threads": 1,
                     "rounds": 3, "tuples": 4, "wall_ms": 0.1, "tripped": false},
                    {"backend": "columnar", "strategy": "semi-naive", "threads": 1,
                     "rounds": 3, "tuples": 4, "wall_ms": 0.2, "tripped": false}
                 ]}
            ]
        }"#;
        let runs = parse_baseline(src).unwrap();
        assert_eq!(runs.len(), 1, "{runs:?}");
        assert_eq!(runs[0].rounds, 3);
    }
}
