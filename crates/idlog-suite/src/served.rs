//! Served-mode latency benchmark: incremental maintenance vs full
//! recompute over the live `idlog-server` protocol.
//!
//! Two tenants of one in-process server hold the same transitive-closure
//! chain. Both receive the same insert-then-query traffic over TCP; one is
//! queried with plain requests (served from the maintained [`Materialized`]
//! model, so each insert re-drives the semi-naive delta machinery), the
//! other with a resource-limited request that takes the fresh path (a full
//! evaluation per query). The transport is identical, so the ratio isolates
//! the evaluation strategy — the service's reason to exist.
//!
//! [`Materialized`]: idlog_core::Materialized

use std::time::Instant;

use idlog_core::service::{FactValue, Request, RunRequest, ServeMode};
use idlog_server::{Client, Server};

/// The chain program whose closure both tenants maintain.
pub const SERVED_PROGRAM: &str = "t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), e(Y, Z).";

/// The measured served-mode record (the `served` section of
/// `BENCH_8.json`).
#[derive(Debug, Clone)]
pub struct ServedBench {
    /// Chain length preloaded before measuring.
    pub nodes: usize,
    /// Insert+query round trips measured per path.
    pub inserts: usize,
    /// Total wall time of the incremental path, in milliseconds.
    pub incremental_ms: f64,
    /// Total wall time of the recompute path, in milliseconds.
    pub recompute_ms: f64,
    /// Serve modes observed on the incremental path, in order.
    pub modes: Vec<String>,
}

impl ServedBench {
    /// Wall-time ratio `recompute / incremental` (the headline number).
    pub fn speedup(&self) -> f64 {
        self.recompute_ms / self.incremental_ms.max(1e-9)
    }
}

fn edge(tenant: &str, from: usize, to: usize) -> Request {
    Request::Insert {
        tenant: tenant.to_string(),
        pred: "e".to_string(),
        tuple: vec![
            FactValue::Sym(format!("v{from}")),
            FactValue::Sym(format!("v{to}")),
        ],
    }
}

fn preload(client: &mut Client, tenant: &str, nodes: usize) -> Result<(), String> {
    for i in 0..nodes {
        let resp = client
            .request(&edge(tenant, i, i + 1))
            .map_err(|e| e.to_string())?;
        if resp.exit != 0 {
            return Err(format!("preload failed: {:?}", resp.error));
        }
    }
    Ok(())
}

/// Run the served-mode benchmark: preload a `nodes`-long chain into two
/// tenants, then measure `inserts` insert+query round trips per path.
pub fn run_served(nodes: usize, inserts: usize) -> Result<ServedBench, String> {
    let server = Server::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?.to_string();
    let handle = std::thread::spawn(move || server.run(4));
    let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;

    preload(&mut client, "inc", nodes)?;
    preload(&mut client, "full", nodes)?;

    let plain = |tenant: &str| RunRequest::new(tenant, SERVED_PROGRAM, "t");
    // A (generous) resource ceiling opts the request out of the cache: the
    // server evaluates it fresh over a snapshot — the full-recompute
    // control arm.
    let fresh = |tenant: &str| {
        let mut r = plain(tenant);
        r.max_rounds = Some(u64::MAX / 2);
        r
    };

    // Warm both tenants (build the materialized model / prepare the cached
    // query) so the measured loops compare steady-state serving.
    let warm = client
        .request(&Request::Run(plain("inc")))
        .map_err(|e| e.to_string())?;
    if warm.exit != 0 {
        return Err(format!("warm-up failed: {:?}", warm.error));
    }
    client
        .request(&Request::Run(fresh("full")))
        .map_err(|e| e.to_string())?;

    let mut modes = Vec::new();
    let start = Instant::now();
    let mut last_inc = None;
    for k in 0..inserts {
        client
            .request(&edge("inc", nodes + k, nodes + k + 1))
            .map_err(|e| e.to_string())?;
        let resp = client
            .request(&Request::Run(plain("inc")))
            .map_err(|e| e.to_string())?;
        if resp.exit != 0 {
            return Err(format!("incremental run failed: {:?}", resp.error));
        }
        modes.push(resp.mode.unwrap_or(ServeMode::Fresh).as_str().to_string());
        last_inc = resp.answers;
    }
    let incremental_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let mut last_full = None;
    for k in 0..inserts {
        client
            .request(&edge("full", nodes + k, nodes + k + 1))
            .map_err(|e| e.to_string())?;
        let resp = client
            .request(&Request::Run(fresh("full")))
            .map_err(|e| e.to_string())?;
        if resp.exit != 0 {
            return Err(format!("recompute run failed: {:?}", resp.error));
        }
        last_full = resp.answers;
    }
    let recompute_ms = start.elapsed().as_secs_f64() * 1e3;

    // Both paths saw identical traffic; their final answers must be
    // byte-identical or the measurement is comparing different things.
    if last_inc != last_full {
        return Err("served paths diverged: incremental != recompute".into());
    }

    let down = client
        .request(&Request::Shutdown)
        .map_err(|e| e.to_string())?;
    if down.exit != 0 {
        return Err("shutdown failed".into());
    }
    handle
        .join()
        .map_err(|_| "server thread panicked".to_string())
        .and_then(|r| r.map_err(|e| e.to_string()))?;

    Ok(ServedBench {
        nodes,
        inserts,
        incremental_ms,
        recompute_ms,
        modes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn served_paths_agree_and_maintain_incrementally() {
        // Small scale: this test asserts correctness and serve modes, not
        // timing (the release binary gates the timing claim).
        let bench = run_served(24, 4).unwrap();
        assert_eq!(bench.nodes, 24);
        assert_eq!(bench.inserts, 4);
        assert_eq!(bench.modes.len(), 4);
        assert!(
            bench.modes.iter().all(|m| m == "incremental"),
            "every post-warm-up insert should be served incrementally: {:?}",
            bench.modes
        );
        assert!(bench.incremental_ms > 0.0 && bench.recompute_ms > 0.0);
    }
}
