//! The goal-directed point-query bench family: the same certified point
//! query evaluated directly (full semi-naive fixpoint) and under
//! `strategy=magic`, across every {backend × threads} combination.
//!
//! The EDB is a forest of disjoint parent chains of which exactly one is
//! reachable from the query constant, so direct evaluation materializes
//! every chain's transitive closure while the magic rewrite derives only
//! the relevant one. The bench asserts the answers are **byte-identical**
//! and records the engine's own counters; the binary gates
//! [`MagicBench::strictly_prunes`] — magic must insert strictly fewer
//! tuples, probe strictly fewer tuples, and report a positive
//! `tuples_pruned` on **both** backends — so the transformation's profit
//! stays measurable, not assumed.

use idlog_core::{BackendKind, Query, Strategy};

use crate::{BACKENDS, THREADS};

/// The point query the family measures (also shipped as
/// `programs/ancestor.idl` with a [`ancestor_facts`]-generated sidecar).
pub const ANCESTOR: &str = "\
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Z) :- ancestor(X, Y), parent(Y, Z).
query(Y) :- ancestor(ann, Y).
";

/// Render the chain-forest EDB as a facts file: `chains` disjoint parent
/// chains of `len` nodes each. The first node of chain 0 is `ann` — the
/// query constant — so exactly one chain is relevant to [`ANCESTOR`].
pub fn ancestor_facts(chains: usize, len: usize) -> String {
    let node = |c: usize, i: usize| {
        if c == 0 && i == 0 {
            "ann".to_string()
        } else {
            format!("p{c}_{i}")
        }
    };
    let mut out = String::new();
    for c in 0..chains {
        for i in 0..len.saturating_sub(1) {
            out.push_str(&format!("parent({}, {}).\n", node(c, i), node(c, i + 1)));
        }
    }
    out
}

/// One measured {backend × threads} pair: direct vs magic counters.
#[derive(Debug, Clone)]
pub struct MagicRun {
    /// Storage backend used.
    pub backend: BackendKind,
    /// Worker threads used.
    pub threads: usize,
    /// Tuples inserted by the direct (full) evaluation.
    pub direct_inserted: u64,
    /// Tuples probed by the direct evaluation.
    pub direct_probes: u64,
    /// Tuples inserted under `strategy=magic`.
    pub magic_inserted: u64,
    /// Tuples probed under `strategy=magic`.
    pub magic_probes: u64,
    /// EDB tuples the magic guards provably never touch
    /// (`EvalStats::tuples_pruned`).
    pub pruned: u64,
}

/// The whole family: one run per {backend × threads}, plus the answer
/// count both evaluations agreed on.
#[derive(Debug, Clone)]
pub struct MagicBench {
    /// Chains in the generated forest.
    pub chains: usize,
    /// Nodes per chain.
    pub chain_len: usize,
    /// Answer tuples (identical across every run by construction).
    pub answers: usize,
    /// One entry per {backend × threads} combination.
    pub runs: Vec<MagicRun>,
}

impl MagicBench {
    /// The profit gate: on every combination, magic inserted strictly
    /// fewer tuples, probed strictly fewer tuples, and pruned a positive
    /// number of EDB tuples.
    pub fn strictly_prunes(&self) -> bool {
        !self.runs.is_empty()
            && self.runs.iter().all(|r| {
                r.magic_inserted < r.direct_inserted
                    && r.magic_probes < r.direct_probes
                    && r.pruned > 0
            })
    }
}

/// Run the family. Errors on any divergence between the direct and magic
/// answers — the bench doubles as an end-to-end soundness check.
pub fn run_magic(chains: usize, len: usize) -> Result<MagicBench, String> {
    let query = Query::parse(ANCESTOR, "query").map_err(|e| e.to_string())?;
    let mut db = query.new_database();
    idlog_core::load_facts(&ancestor_facts(chains, len), &mut db).map_err(|e| e.to_string())?;

    let mut runs = Vec::new();
    let mut answers = None;
    for backend in BACKENDS {
        for threads in THREADS {
            let direct = query
                .session(&db)
                .backend(backend)
                .threads(threads)
                .run()
                .map_err(|e| e.to_string())?;
            let magic = query
                .session(&db)
                .backend(backend)
                .threads(threads)
                .strategy(Strategy::Magic)
                .run()
                .map_err(|e| e.to_string())?;
            let direct_rows = direct.relation.sorted_canonical(query.interner());
            let magic_rows = magic.relation.sorted_canonical(query.interner());
            if direct_rows != magic_rows {
                return Err(format!(
                    "magic answers diverge from direct on {backend} x {threads} threads: \
                     {} vs {} tuples",
                    magic_rows.len(),
                    direct_rows.len()
                ));
            }
            match answers {
                None => answers = Some(direct_rows.len()),
                Some(n) if n != direct_rows.len() => {
                    return Err("answer count drifted across combinations".to_string());
                }
                Some(_) => {}
            }
            runs.push(MagicRun {
                backend,
                threads,
                direct_inserted: direct.stats.inserted,
                direct_probes: direct.stats.probes,
                magic_inserted: magic.stats.inserted,
                magic_probes: magic.stats.probes,
                pruned: magic.stats.tuples_pruned,
            });
        }
    }
    Ok(MagicBench {
        chains,
        chain_len: len,
        answers: answers.unwrap_or(0),
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_shapes_the_forest() {
        let facts = ancestor_facts(3, 4);
        assert_eq!(facts.lines().count(), 9, "{facts}");
        assert!(facts.contains("parent(ann, p0_1)."), "{facts}");
        assert!(facts.contains("parent(p2_2, p2_3)."), "{facts}");
        assert!(!facts.contains("p0_0"), "chain 0 starts at the constant");
    }

    #[test]
    fn committed_ancestor_sidecar_matches_the_generator() {
        // `programs/ancestor.facts` is generated, not hand-written; this
        // pins the committed bytes to the generator so the corpus case and
        // the bench family measure the same distribution.
        let committed = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../programs/ancestor.facts"),
        )
        .unwrap();
        assert_eq!(committed, ancestor_facts(3, 20));
    }

    #[test]
    fn family_prunes_strictly_on_both_backends() {
        let bench = run_magic(4, 24).unwrap();
        assert_eq!(bench.runs.len(), BACKENDS.len() * THREADS.len());
        assert!(bench.strictly_prunes(), "{bench:?}");
        // Only chain 0 is reachable from `ann`: len-1 answers.
        assert_eq!(bench.answers, 23);
        // Counters are thread- and backend-invariant.
        let r0 = &bench.runs[0];
        for r in &bench.runs {
            assert_eq!(r.direct_inserted, r0.direct_inserted, "{r:?}");
            assert_eq!(r.magic_inserted, r0.magic_inserted, "{r:?}");
            assert_eq!(r.pruned, r0.pruned, "{r:?}");
        }
    }
}
