//! The IDLOG service: a thread-pooled TCP line-protocol server holding
//! per-tenant databases resident across requests.
//!
//! Each connection speaks the [`idlog_core::service`] protocol: one JSON
//! request per line in, one JSON response per line out. The server keeps,
//! per tenant, a [`Database`], a shared [`Interner`], and a prepared-query
//! cache; plain `run` requests are served from an incrementally maintained
//! [`Materialized`] model (DRed-style delete-and-rederive on `retract`,
//! semi-naive delta rounds on `insert`), while seeded, enumerating, or
//! resource-limited requests evaluate fresh over a snapshot — off the
//! tenant lock, so slow queries don't block the tenant's writers.
//!
//! Started with a data directory ([`ServerConfig::data_dir`]), every
//! tenant is **crash-safe**: each acknowledged insert/retract is appended
//! to a per-tenant write-ahead log (and fsynced per the
//! [`SyncPolicy`]) *before* the acknowledgement, periodic [checkpoint
//! snapshots](durability::TenantStore::checkpoint) bound recovery work,
//! and reopening the same directory replays the log — truncating any torn
//! tail a crash left behind — to exactly the acknowledged prefix.
//!
//! The accept loop applies **admission control**: connections beyond the
//! worker pool queue up to [`ServerConfig::queue_depth`]; past that they
//! are shed immediately with an `overloaded` error carrying a
//! `retry_after_ms` hint, rather than letting latency grow without bound.
//!
//! Answers are rendered from relation *content* only
//! ([`idlog_core::service::render_answers`]), so a served response is
//! byte-identical to what a direct single-threaded [`idlog_core::Session`]
//! evaluation
//! of the same program over the same facts would print, whichever path —
//! materialized, incremental, recomputed, or fresh — produced it.

#![warn(missing_docs)]

pub mod durability;

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;

use idlog_core::service::{
    negotiate_schema, render_answers, FactValue, Request, Response, RunRequest, ServeMode,
};
use idlog_core::{
    EnumBudget, ErrorCode, EvalOptions, FactDelta, Interner, MaintainOutcome, Materialized, Query,
    SeededOracle, SymbolId, Tuple, Value,
};
use idlog_storage::{Database, Relation};

pub use durability::{SyncPolicy, TenantStore, WalRecord};

/// Default worker-thread count for [`Server::run`].
pub const DEFAULT_WORKERS: usize = 16;

/// Default bound on connections waiting for a worker; beyond it new
/// connections are shed with an `overloaded` error.
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

/// Default WAL-records-per-checkpoint interval.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 1024;

/// The `retry_after_ms` hint sent with a shed connection's `overloaded`
/// error: long enough for a queued request to drain, short enough that a
/// retrying client converges quickly.
pub const RETRY_AFTER_MS: u64 = 100;

/// Change-log ceiling per tenant. A cached view that falls further behind
/// than this is evicted (it rebuilds from the database on next use) so the
/// log can compact — otherwise one never-requeried view would pin every
/// `(pred, tuple)` change a long-running tenant ever makes.
const MAX_LOG: usize = 1 << 12;

/// Prepared-query cache ceiling per tenant; beyond it the least-recently
/// used entry is evicted. Bounds server memory against clients that submit
/// unbounded distinct program texts.
const MAX_PREPARED: usize = 64;

/// Server construction options beyond the bind address.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Root directory for durable tenant state. `None` serves in-memory
    /// only (tenant state dies with the process).
    pub data_dir: Option<PathBuf>,
    /// When the WAL is fsynced, for servers with a `data_dir`.
    pub sync: SyncPolicy,
    /// Connections allowed to wait for a worker before new arrivals are
    /// shed with `overloaded`.
    pub queue_depth: usize,
    /// WAL records between checkpoint snapshots.
    pub checkpoint_every: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            data_dir: None,
            sync: SyncPolicy::default(),
            queue_depth: DEFAULT_QUEUE_DEPTH,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
        }
    }
}

/// A compiled query cached for a tenant, optionally with a maintained
/// materialized model.
struct Prepared {
    query: Query,
    /// Certification fingerprint recorded at compile time (determinism +
    /// termination certificates). Together with the program text it is the
    /// cache entry's identity, and it decides the serving strategy: only a
    /// termination-certified entry is admitted to resident materialization
    /// (an uncertified query could hold the tenant lock indefinitely, since
    /// cached serving carries no per-request deadline).
    fingerprint: String,
    view: Option<Materialized>,
    /// Change-log version the view reflects.
    synced: u64,
    /// Tenant clock value of the last request that used this entry; the
    /// eviction order of the prepared cache.
    last_used: u64,
}

/// One tenant: a database, its interner, the prepared-query cache, a
/// change log driving incremental view maintenance, and (on durable
/// servers) the WAL/checkpoint store.
struct Tenant {
    interner: Arc<Interner>,
    db: Database,
    prepared: HashMap<(String, String), Prepared>,
    /// Touched `(predicate, tuple)` pairs since `log_base`, in change
    /// order. Views sync by replaying their unseen suffix; the current
    /// database decides each pair's net direction, so interleaved
    /// insert/retract sequences collapse correctly.
    log: Vec<(SymbolId, Tuple)>,
    /// Version number of `log[0]`.
    log_base: u64,
    /// Version after the latest change.
    version: u64,
    /// Monotonic request counter driving prepared-cache LRU eviction.
    clock: u64,
    /// The WAL/checkpoint store, on durable servers.
    store: Option<TenantStore>,
    /// Where (and how) this tenant persists — kept so a poison repair can
    /// re-run recovery from scratch.
    durable: Option<(PathBuf, SyncPolicy)>,
    /// When set, the tenant's disk state may not match memory (a
    /// durability double-fault): every change/run is refused with this
    /// reason until a restart re-runs recovery.
    quarantined: Option<String>,
}

impl Tenant {
    /// Build a tenant, recovering durable state when a directory is given.
    /// A failure to open or replay quarantines the tenant (clean wire
    /// errors) instead of panicking a worker.
    fn open(durable: Option<(PathBuf, SyncPolicy)>) -> Tenant {
        let interner = Arc::new(Interner::new());
        let mut tenant = Tenant {
            db: Database::with_interner(interner.clone()),
            interner,
            prepared: HashMap::new(),
            log: Vec::new(),
            log_base: 0,
            version: 0,
            clock: 0,
            store: None,
            durable: durable.clone(),
            quarantined: None,
        };
        if let Some((dir, policy)) = durable {
            match TenantStore::open(&dir, policy) {
                Ok((store, recovery)) => match tenant.replay(&recovery.ops) {
                    Ok(()) => tenant.store = Some(store),
                    Err(e) => tenant.quarantined = Some(format!("recovery replay failed: {e}")),
                },
                Err(e) => tenant.quarantined = Some(format!("durable store open failed: {e}")),
            }
        }
        tenant
    }

    /// Apply recovered records, in original order, to the empty database.
    fn replay(&mut self, ops: &[WalRecord]) -> Result<(), String> {
        for op in ops {
            match op {
                WalRecord::Insert { pred, tuple } => {
                    let values: Tuple = tuple.iter().map(|v| v.to_value(&self.interner)).collect();
                    if self.db.relation(pred).is_some_and(|r| r.contains(&values)) {
                        continue;
                    }
                    self.db.insert(pred, values).map_err(|e| e.to_string())?;
                }
                WalRecord::Retract { pred, tuple } => {
                    let values: Tuple = tuple.iter().map(|v| v.to_value(&self.interner)).collect();
                    self.db.retract(pred, &values).map_err(|e| e.to_string())?;
                }
                // No durable-program surface yet; the kind exists so the
                // WAL encoding doesn't change when one lands.
                WalRecord::SetProgram { .. } => {}
            }
        }
        Ok(())
    }

    /// Put a tenant whose mutex was poisoned back into a coherent state.
    ///
    /// On a durable server the WAL is the source of truth: every acked
    /// change is on disk (WAL-before-ack) and the interrupted one is not,
    /// so re-running recovery rebuilds exactly the acknowledged state.
    /// In-memory tenants keep their database (storage mutations are
    /// complete-or-absent) and drop the derived state — views and the
    /// change log — which the interrupted request may have left stale.
    fn repair(&mut self) {
        match self.durable.clone() {
            Some(durable) => *self = Tenant::open(Some(durable)),
            None => {
                self.prepared.clear();
                self.log.clear();
                self.log_base = self.version;
            }
        }
    }

    /// The version reported on the wire: the WAL sequence on durable
    /// servers, the in-memory change counter otherwise.
    fn durable_version(&self) -> u64 {
        self.store
            .as_ref()
            .map(|s| s.version())
            .unwrap_or(self.version)
    }

    fn fact_value(&self, v: &Value) -> FactValue {
        match v {
            Value::Sym(id) => FactValue::Sym(self.interner.resolve(*id)),
            Value::Int(n) => FactValue::Int(*n),
        }
    }

    /// Every EDB fact, predicate-sorted and canonically ordered — the
    /// checkpoint payload.
    fn snapshot_facts(&self) -> Vec<(String, Vec<FactValue>)> {
        let mut preds: Vec<(String, &Relation)> = self
            .db
            .iter()
            .map(|(id, rel)| (self.interner.resolve(id), rel))
            .collect();
        preds.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = Vec::new();
        for (name, rel) in preds {
            for tuple in rel.sorted_canonical(&self.interner) {
                out.push((
                    name.clone(),
                    tuple.values().iter().map(|v| self.fact_value(v)).collect(),
                ));
            }
        }
        out
    }

    fn record_change(&mut self, pred: SymbolId, tuple: Tuple) {
        self.log.push((pred, tuple));
        self.version += 1;
    }

    /// Drop log entries every live view has already replayed. With no live
    /// view the whole log goes; a view lagging more than [`MAX_LOG`]
    /// changes behind is evicted rather than allowed to pin the log.
    fn compact_log(&mut self) {
        loop {
            let min_synced = self
                .prepared
                .values()
                .filter(|p| p.view.is_some())
                .map(|p| p.synced)
                .min()
                .unwrap_or(self.version);
            let drop = (min_synced - self.log_base) as usize;
            if drop > 0 {
                self.log.drain(..drop);
                self.log_base = min_synced;
            }
            if self.log.len() <= MAX_LOG {
                return;
            }
            // The log only stays over the ceiling while some stale view
            // pins it; dropping the stalest views lets the next pass
            // compact further (they rebuild from the database on next use).
            for p in self.prepared.values_mut() {
                if p.view.is_some() && p.synced == min_synced {
                    p.view = None;
                }
            }
        }
    }

    /// The net [`FactDelta`] between log version `from` and the current
    /// database: each touched pair becomes an insert if the database holds
    /// it now, a retract otherwise. The storage-layer change flags inside
    /// [`Materialized::apply`] make replay idempotent, so pairs the view
    /// already agrees on are no-ops.
    fn delta_since(&self, from: u64) -> FactDelta {
        let mut delta = FactDelta::default();
        let mut seen: std::collections::HashSet<(SymbolId, Tuple)> =
            std::collections::HashSet::new();
        let start = (from - self.log_base) as usize;
        for (pred, tuple) in &self.log[start..] {
            if !seen.insert((*pred, tuple.clone())) {
                continue;
            }
            let name = self.interner.resolve(*pred);
            let present = self.db.relation(&name).is_some_and(|r| r.contains(tuple));
            if present {
                delta.inserts.push((*pred, tuple.clone()));
            } else {
                delta.retracts.push((*pred, tuple.clone()));
            }
        }
        delta
    }

    /// Serve a materializable `run` from the cached view, building or
    /// syncing it first.
    fn serve_materialized(&mut self, key: &(String, String), r: &RunRequest) -> Response {
        let version = self.version;
        let delta = {
            let entry = self.prepared.get(key).expect("entry inserted by caller");
            match &entry.view {
                Some(_) if entry.synced < version => Some(self.delta_since(entry.synced)),
                _ => None,
            }
        };
        let entry = self
            .prepared
            .get_mut(key)
            .expect("entry inserted by caller");
        let mode = match &mut entry.view {
            None => {
                let mut opts = EvalOptions::new();
                if let Some(t) = r.threads {
                    opts = opts.threads(t);
                }
                if let Some(b) = r.backend {
                    opts = opts.backend(b);
                }
                match Materialized::build(entry.query.related_program(), &self.db, &opts) {
                    Ok(view) => {
                        entry.view = Some(view);
                        entry.synced = version;
                        ServeMode::Recomputed
                    }
                    Err(e) => return Response::error(e.code(), e.to_string()),
                }
            }
            Some(view) => match delta {
                None => ServeMode::Materialized,
                Some(delta) => match view.apply(&self.db, &delta) {
                    Ok(outcome) => {
                        entry.synced = version;
                        match outcome {
                            MaintainOutcome::Unchanged => ServeMode::Materialized,
                            MaintainOutcome::Incremental => ServeMode::Incremental,
                            MaintainOutcome::Recomputed => ServeMode::Recomputed,
                        }
                    }
                    Err(e) => {
                        // apply() may have mutated the view's input copies
                        // before failing (e.g. builtin overflow mid-
                        // propagation); keeping it would make the next
                        // delta replay a no-op against stale IDB state and
                        // serve silently wrong answers. Drop the view — the
                        // next materializable request rebuilds it from the
                        // database, the source of truth.
                        entry.view = None;
                        return Response::error(e.code(), e.to_string());
                    }
                },
            },
        };
        let answers = entry
            .view
            .as_ref()
            .expect("view built above")
            .relation(&r.output)
            .map(|rel| render_answers(rel, &self.interner))
            .unwrap_or_default();
        self.compact_log();
        // Cached serving runs to fixpoint with no request limits, so the
        // answer is always the complete relation.
        Response {
            answers: Some(answers),
            complete: Some(true),
            mode: Some(mode),
            ..Response::ok()
        }
    }
}

/// Lock a tenant, repairing it first if a previous holder panicked: the
/// poison flag is cleared and [`Tenant::repair`] restores coherence
/// (durable tenants re-run recovery; in-memory tenants drop derived
/// state). No request ever sees a half-updated tenant.
fn lock_tenant(arc: &Arc<Mutex<Tenant>>) -> MutexGuard<'_, Tenant> {
    match arc.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            arc.clear_poison();
            let mut t = poisoned.into_inner();
            t.repair();
            t
        }
    }
}

/// The tenant registry plus the shutdown flag — the state every worker
/// thread shares.
struct Registry {
    tenants: Mutex<HashMap<String, Arc<Mutex<Tenant>>>>,
    shutdown: AtomicBool,
    config: ServerConfig,
}

impl Registry {
    #[cfg(test)]
    fn new() -> Registry {
        Registry::with_config(ServerConfig::default())
    }

    fn with_config(config: ServerConfig) -> Registry {
        Registry {
            tenants: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            config,
        }
    }

    fn tenant(&self, name: &str) -> Arc<Mutex<Tenant>> {
        // The registry map is insert-only and each operation is atomic, so
        // a panic elsewhere under this lock cannot leave it incoherent.
        let mut tenants = match self.tenants.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.tenants.clear_poison();
                poisoned.into_inner()
            }
        };
        if let Some(t) = tenants.get(name) {
            return Arc::clone(t);
        }
        let durable = self
            .config
            .data_dir
            .as_ref()
            .map(|d| (durability::tenant_dir(d, name), self.config.sync));
        let tenant = Arc::new(Mutex::new(Tenant::open(durable)));
        tenants.insert(name.to_string(), Arc::clone(&tenant));
        tenant
    }

    fn handle(&self, req: Request) -> Response {
        match req {
            Request::Ping { schema } => match negotiate_schema(schema.as_deref()) {
                Ok(agreed) => Response {
                    schema: Some(agreed.to_string()),
                    ..Response::ok()
                },
                Err(e) => Response::error(ErrorCode::Protocol, e),
            },
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                Response::ok()
            }
            Request::Stats { tenant } => {
                let tenant = self.tenant(&tenant);
                let t = lock_tenant(&tenant);
                Response {
                    facts: Some(t.db.fact_count() as u64),
                    queries: Some(t.prepared.len() as u64),
                    version: Some(t.durable_version()),
                    ..Response::ok()
                }
            }
            Request::Insert {
                tenant,
                pred,
                tuple,
            } => self.change(&tenant, &pred, &tuple, true),
            Request::Retract {
                tenant,
                pred,
                tuple,
            } => self.change(&tenant, &pred, &tuple, false),
            Request::Run(r) => self.run(r),
        }
    }

    fn quarantined(reason: &str) -> Response {
        Response::error(
            ErrorCode::Internal,
            format!("tenant quarantined: {reason}; restart the server to run recovery"),
        )
    }

    fn change(&self, tenant: &str, pred: &str, tuple: &[FactValue], insert: bool) -> Response {
        let tenant = self.tenant(tenant);
        let mut t = lock_tenant(&tenant);
        if let Some(reason) = t.quarantined.clone() {
            return Self::quarantined(&reason);
        }
        let values: Tuple = tuple.iter().map(|v| v.to_value(&t.interner)).collect();
        let changed = if insert {
            if t.db.relation(pred).is_some_and(|r| r.contains(&values)) {
                false
            } else if let Err(e) = t.db.insert(pred, values.clone()) {
                return Response::error(ErrorCode::Input, e.to_string());
            } else {
                true
            }
        } else {
            match t.db.retract(pred, &values) {
                Ok(changed) => changed,
                Err(e) => return Response::error(ErrorCode::Input, e.to_string()),
            }
        };
        if changed {
            // WAL-before-ack: the change only becomes visible (and the
            // response only acknowledges it) once the record is durable.
            if t.store.is_some() {
                let record = if insert {
                    WalRecord::Insert {
                        pred: pred.to_string(),
                        tuple: tuple.to_vec(),
                    }
                } else {
                    WalRecord::Retract {
                        pred: pred.to_string(),
                        tuple: tuple.to_vec(),
                    }
                };
                if let Err(e) = t.store.as_mut().expect("checked above").append(&record) {
                    if e.quarantine {
                        // Disk state is unknown (e.g. a torn write or a
                        // failed truncate-back): refuse further traffic
                        // until a restart re-runs recovery.
                        t.quarantined = Some(e.message.clone());
                        return Self::quarantined(&e.message);
                    }
                    // The append was cleanly undone on disk; undo it in
                    // memory too and report an unacknowledged write.
                    if insert {
                        let _ = t.db.retract(pred, &values);
                    } else {
                        let _ = t.db.insert(pred, values.clone());
                    }
                    return Response::error(
                        ErrorCode::Io,
                        format!("write not durable: {}", e.message),
                    );
                }
            }
            let sym = t.interner.intern(pred);
            t.record_change(sym, values);
            // Compact here too: a tenant that only ever writes (or only
            // runs fresh-mode queries) must not accumulate its entire
            // change history.
            t.compact_log();
            self.maybe_checkpoint(&mut t);
        }
        Response {
            changed: Some(changed),
            facts: Some(t.db.fact_count() as u64),
            version: Some(t.durable_version()),
            ..Response::ok()
        }
    }

    /// Checkpoint when enough WAL records accumulated. Failure is benign —
    /// the WAL stays intact and recovery replays it — so the request that
    /// happened to trigger the checkpoint still succeeds.
    fn maybe_checkpoint(&self, t: &mut Tenant) {
        let due = t
            .store
            .as_ref()
            .is_some_and(|s| s.since_checkpoint() >= self.config.checkpoint_every.max(1));
        if !due {
            return;
        }
        let facts = t.snapshot_facts();
        let store = t.store.as_mut().expect("due implies store");
        let version = store.version();
        let _ = store.checkpoint(version, &facts);
    }

    fn run(&self, r: RunRequest) -> Response {
        let tenant = self.tenant(&r.tenant);
        let mut t = lock_tenant(&tenant);
        if let Some(reason) = t.quarantined.clone() {
            return Self::quarantined(&reason);
        }
        let key = (r.program.clone(), r.output.clone());
        t.clock += 1;
        let now = t.clock;
        let (cache_hit, query) = match t.prepared.get_mut(&key) {
            Some(p) => {
                p.last_used = now;
                (true, p.query.clone())
            }
            None => {
                let interner = t.interner.clone();
                match Query::parse_with_interner(&r.program, &r.output, interner) {
                    Ok(q) => {
                        if t.prepared.len() >= MAX_PREPARED {
                            // Evict the least-recently-used entry; if it
                            // held the stalest view, the log can compact.
                            if let Some(evict) = t
                                .prepared
                                .iter()
                                .min_by_key(|(_, p)| p.last_used)
                                .map(|(k, _)| k.clone())
                            {
                                t.prepared.remove(&evict);
                            }
                            t.compact_log();
                        }
                        t.prepared.insert(
                            key.clone(),
                            Prepared {
                                fingerprint: fingerprint(&q),
                                query: q.clone(),
                                view: None,
                                synced: 0,
                                last_used: now,
                            },
                        );
                        (false, q)
                    }
                    Err(e) => return Response::error(e.code(), e.to_string()),
                }
            }
        };
        let materializable = t
            .prepared
            .get(&key)
            .is_some_and(|p| fingerprint_terminates(&p.fingerprint));
        if r.wants_materialized() && materializable {
            let mut resp = t.serve_materialized(&key, &r);
            resp.cache_hit = Some(cache_hit);
            return resp;
        }
        // Fresh evaluation: snapshot the database and release the tenant so
        // a slow or deadline-bound request can't block writers or other
        // readers of this tenant.
        let db = t.db.clone();
        drop(t);
        let mut resp = Self::run_fresh(&query, &db, &r);
        resp.cache_hit = Some(cache_hit);
        resp
    }

    fn run_fresh(query: &Query, db: &Database, r: &RunRequest) -> Response {
        let mut session = query.session(db).limits(r.limits());
        if let Some(threads) = r.threads {
            session = session.threads(threads);
        }
        if let Some(backend) = r.backend {
            session = session.backend(backend);
        }
        if let Some(strategy) = r.strategy {
            // A `magic` request on an uncertified query fails here with the
            // relevance witness; the cached `Query` already carries the
            // compiled magic plan for certified ones, so repeat magic
            // requests reuse it (the relevance fingerprint is part of the
            // prepared entry's identity).
            session = session.strategy(strategy);
        }
        if r.all {
            if let Some(max_models) = r.max_models {
                session = session.budget(EnumBudget {
                    max_models,
                    ..EnumBudget::default()
                });
            }
            return match session.all_answers() {
                Ok(set) => Response {
                    models: Some(set.to_sorted_strings(query.interner())),
                    complete: Some(set.complete()),
                    mode: Some(ServeMode::Fresh),
                    ..Response::ok()
                },
                Err(e) => Response::error(e.code(), e.to_string()),
            };
        }
        let result = match r.seed {
            Some(seed) => session.try_run_with(&mut SeededOracle::new(seed)),
            None => session.try_run(),
        };
        match result {
            Ok(out) => Response {
                answers: Some(render_answers(&out.relation, query.interner())),
                complete: Some(true),
                mode: Some(ServeMode::Fresh),
                ..Response::ok()
            },
            Err(e) => {
                // A tripped limit still reports what was derived up to the
                // last completed round barrier — partial answers, flagged
                // by the non-zero exit and `complete: false`.
                let partial = e.partial_output().map(|out| {
                    out.relation(&r.output)
                        .map(|rel| render_answers(rel, query.interner()))
                        .unwrap_or_default()
                });
                let code = e.code();
                Response {
                    answers: partial,
                    complete: Some(false),
                    mode: Some(ServeMode::Fresh),
                    ..Response::error(code, e.to_string())
                }
            }
        }
    }
}

/// The compile-time certificates a cache entry is admitted under:
/// determinism, termination, and the goal-directed relevance verdict
/// (whether the entry holds a certified magic plan, and how much of the
/// related region it guards).
fn fingerprint(query: &Query) -> String {
    format!(
        "det={};bounded={};degree={};{}",
        query.certified_deterministic(),
        query.termination_cert().bounded(),
        query.termination_cert().degree(),
        query.relevance().fingerprint(),
    )
}

/// Whether a [`fingerprint`] certifies terminating evaluation — the
/// admission bar for resident materialization.
fn fingerprint_terminates(fp: &str) -> bool {
    fp.contains("bounded=true")
}

/// A running IDLOG service bound to a TCP address.
///
/// ```no_run
/// use idlog_server::Server;
/// let server = Server::bind("127.0.0.1:0").unwrap();
/// let addr = server.local_addr().unwrap();
/// std::thread::spawn(move || server.run(idlog_server::DEFAULT_WORKERS));
/// // ... connect Clients to `addr`, finish with Request::Shutdown ...
/// ```
pub struct Server {
    listener: TcpListener,
    registry: Arc<Registry>,
}

impl Server {
    /// Bind the listening socket (`"127.0.0.1:0"` picks an ephemeral port)
    /// with default (in-memory, unpersisted) configuration.
    pub fn bind(addr: &str) -> io::Result<Server> {
        Server::bind_with(addr, ServerConfig::default())
    }

    /// Bind with explicit configuration. With
    /// [`ServerConfig::data_dir`] set, tenants recover their durable state
    /// lazily on first access.
    pub fn bind_with(addr: &str, config: ServerConfig) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            registry: Arc::new(Registry::with_config(config)),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a `shutdown` request arrives. Connections are handed to
    /// a pool of `workers` threads through a queue bounded at
    /// [`ServerConfig::queue_depth`]; when every worker is busy and the
    /// queue is full, new connections are shed immediately with an
    /// `overloaded` error and a `retry_after_ms` hint instead of queuing
    /// without bound.
    pub fn run(self, workers: usize) -> io::Result<()> {
        let addr = self.listener.local_addr()?;
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(self.registry.config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::new();
        for _ in 0..workers.max(1) {
            let rx = Arc::clone(&rx);
            let registry = Arc::clone(&self.registry);
            pool.push(thread::spawn(move || loop {
                // A worker that died while holding this lock cannot have
                // left partial state in it (recv is atomic); recover the
                // receiver and keep serving.
                let next = rx.lock().unwrap_or_else(|p| p.into_inner()).recv();
                match next {
                    Ok(stream) => serve_connection(stream, &registry, addr),
                    Err(_) => break,
                }
            }));
        }
        for stream in self.listener.incoming() {
            if self.registry.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if let Ok(stream) = stream {
                match tx.try_send(stream) {
                    Ok(()) => {}
                    // Admission control: every worker busy and the queue
                    // full. Shed at accept — before any parsing or tenant
                    // work — so overload cost stays constant.
                    Err(mpsc::TrySendError::Full(stream)) => shed(stream),
                    // Every worker died; nothing can serve.
                    Err(mpsc::TrySendError::Disconnected(_)) => break,
                }
            }
        }
        drop(tx);
        for worker in pool {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Refuse a connection at admission: one `overloaded` response line with a
/// retry hint, then close.
///
/// Runs on its own short-lived thread so the accept loop stays responsive,
/// and drains whatever request bytes the client already sent before
/// closing — dropping a socket with unread data raises an RST that can
/// discard the response line the client is about to read.
fn shed(stream: TcpStream) {
    thread::spawn(move || {
        use std::io::Read;
        let _ = stream.set_nodelay(true);
        let resp = Response {
            retry_after_ms: Some(RETRY_AFTER_MS),
            ..Response::error(
                ErrorCode::Overloaded,
                "admission queue full; retry after the hinted backoff",
            )
        };
        let mut writer = BufWriter::new(&stream);
        if writeln!(writer, "{}", resp.to_json()).is_err() || writer.flush().is_err() {
            return;
        }
        drop(writer);
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(200)));
        let mut sink = [0u8; 256];
        let mut stream = stream;
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    });
}

/// Answer one connection's requests until EOF or shutdown.
///
/// Reads run under a short timeout so a worker parked on an idle keep-alive
/// connection still observes a shutdown within a beat and lets
/// [`Server::run`] join the pool.
fn serve_connection(stream: TcpStream, registry: &Registry, addr: SocketAddr) {
    // Request/response lines are tiny; without TCP_NODELAY, Nagle batching
    // against the peer's delayed ACK adds tens of milliseconds per round
    // trip even on loopback.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(100)));
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            // A timeout leaves any partial read appended to `line`; poll
            // the shutdown flag and resume mid-line.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if registry.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        let request = line.trim().to_string();
        line.clear();
        if request.is_empty() {
            continue;
        }
        let response = match Request::parse(&request) {
            // A panicking handler (engine invariant failure, injected
            // fault) must cost its own request, not the worker thread:
            // contain it, answer with a clean internal error, and let
            // `lock_tenant` repair the poisoned tenant on next access.
            Ok(request) => {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    registry.handle(request)
                })) {
                    Ok(resp) => resp,
                    Err(_) => Response::error(
                        ErrorCode::Internal,
                        "request handler panicked; tenant state repairs on next access",
                    ),
                }
            }
            Err(e) => Response::error(ErrorCode::Protocol, e),
        };
        if writeln!(writer, "{}", response.to_json()).is_err() || writer.flush().is_err() {
            break;
        }
        if registry.shutdown.load(Ordering::SeqCst) {
            // Wake the accept loop so it observes the flag and drains.
            let _ = TcpStream::connect(addr);
            break;
        }
    }
}

/// A blocking protocol client: sends one request line, reads one response
/// line. Used by `idlog client` and the integration tests.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a served address.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Send `request` and wait for its response.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        writeln!(self.writer, "{}", request.to_json())?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::parse(line.trim()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Send a raw line (protocol-error testing) and read the response line.
    pub fn request_raw(&mut self, line: &str) -> io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut out = String::new();
        if self.reader.read_line(&mut out)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(out.trim().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Nonrecursive (hence termination-certified and materializable), but
    /// `plus` overflows once `a` holds a large enough value.
    const SUM: &str = "sum(M) :- a(X), b(Y), plus(X, Y, M).";

    fn int_change(reg: &Registry, pred: &str, n: i64, insert: bool) -> Response {
        let req = |tenant, pred, tuple| {
            if insert {
                Request::Insert {
                    tenant,
                    pred,
                    tuple,
                }
            } else {
                Request::Retract {
                    tenant,
                    pred,
                    tuple,
                }
            }
        };
        let resp = reg.handle(req("t".into(), pred.into(), vec![FactValue::Int(n)]));
        assert_eq!(resp.exit, 0, "{:?}", resp.error);
        resp
    }

    fn run(reg: &Registry, program: &str, output: &str) -> Response {
        reg.handle(Request::Run(RunRequest::new("t", program, output)))
    }

    #[test]
    fn failed_apply_invalidates_the_view_instead_of_serving_stale_answers() {
        let reg = Registry::new();
        int_change(&reg, "a", 1, true);
        int_change(&reg, "b", 2, true);
        let first = run(&reg, SUM, "sum");
        assert_eq!(first.exit, 0, "{:?}", first.error);
        assert_eq!(first.answers.as_deref(), Some(&["3".to_string()][..]));
        assert_eq!(first.mode, Some(ServeMode::Recomputed));

        // i64::MAX + 2 overflows `plus` during incremental propagation;
        // apply() fails after already mutating the view's input copies.
        int_change(&reg, "a", i64::MAX, true);
        let failed = run(&reg, SUM, "sum");
        assert_ne!(failed.exit, 0, "overflow must surface as an error");

        // The poisoned view must not linger: while the bad fact is present
        // every request keeps erroring (a stale view would instead replay
        // the delta as a no-op and serve the old answers as complete).
        let failed_again = run(&reg, SUM, "sum");
        assert_ne!(failed_again.exit, 0, "second request must also error");
        assert!(failed_again.answers.is_none());

        // Retracting the poison fact heals the tenant: the next request
        // rebuilds from the database and serves complete answers again.
        int_change(&reg, "a", i64::MAX, false);
        let healed = run(&reg, SUM, "sum");
        assert_eq!(healed.exit, 0, "{:?}", healed.error);
        assert_eq!(healed.answers.as_deref(), Some(&["3".to_string()][..]));
        assert_eq!(healed.complete, Some(true));
        assert_eq!(healed.mode, Some(ServeMode::Recomputed));
    }

    /// A recursive point query: certified for the magic-sets strategy.
    const ANC: &str = "anc(X, Y) :- parent(X, Y).\n\
                       anc(X, Z) :- anc(X, Y), parent(Y, Z).\n\
                       q(Y) :- anc(ann, Y).";

    fn sym_insert(reg: &Registry, pred: &str, tuple: &[&str]) {
        let resp = reg.handle(Request::Insert {
            tenant: "t".into(),
            pred: pred.into(),
            tuple: tuple
                .iter()
                .map(|s| FactValue::Sym(s.to_string()))
                .collect(),
        });
        assert_eq!(resp.exit, 0, "{:?}", resp.error);
    }

    #[test]
    fn magic_strategy_serves_fresh_and_agrees_with_the_cached_model() {
        let reg = Registry::new();
        for edge in [["ann", "bob"], ["bob", "cal"], ["eve", "fay"]] {
            sym_insert(&reg, "parent", &edge);
        }
        // Plain request: materialized serving of the full model.
        let plain = run(&reg, ANC, "q");
        assert_eq!(plain.exit, 0, "{:?}", plain.error);
        assert_eq!(plain.mode, Some(ServeMode::Recomputed));
        let full = plain.answers.clone().unwrap();
        assert_eq!(full, vec!["bob".to_string(), "cal".to_string()]);

        // The same program under strategy=magic: fresh goal-directed
        // evaluation, byte-identical answers, served from the cached entry.
        let mut r = RunRequest::new("t", ANC, "q");
        r.strategy = Some(idlog_core::Strategy::Magic);
        let magic = reg.handle(Request::Run(r));
        assert_eq!(magic.exit, 0, "{:?}", magic.error);
        assert_eq!(magic.mode, Some(ServeMode::Fresh));
        assert_eq!(magic.cache_hit, Some(true), "compiled plan is reused");
        assert_eq!(magic.answers.unwrap(), full);

        // The prepared entry's fingerprint records the relevance verdict.
        let tenant = reg.tenant("t");
        let t = tenant.lock().unwrap();
        let entry = t.prepared.get(&(ANC.to_string(), "q".to_string())).unwrap();
        assert!(
            entry.fingerprint.contains("relevance=cert;point=true"),
            "{}",
            entry.fingerprint
        );
    }

    #[test]
    fn magic_refusal_reports_the_witness_over_the_wire() {
        let reg = Registry::new();
        sym_insert(&reg, "likes", &["ann", "tea"]);
        let program = "pick(X, Y) :- likes[1](X, Y, 0).\nq(Y) :- pick(ann, Y).";
        let mut r = RunRequest::new("t", program, "q");
        r.strategy = Some(idlog_core::Strategy::Magic);
        let resp = reg.handle(Request::Run(r));
        assert_eq!(resp.exit, 1, "{:?}", resp.error);
        let err = resp.error.unwrap();
        assert!(err.contains("choice site"), "{err}");
        assert!(err.contains("witness"), "{err}");

        // The refusal does not poison the entry: a plain request on the
        // same program still serves the full (non-pruned) answer.
        let plain = run(&reg, program, "q");
        assert_eq!(plain.exit, 0, "{:?}", plain.error);
        assert_eq!(plain.cache_hit, Some(true));
        assert_eq!(plain.answers.unwrap(), vec!["tea".to_string()]);
    }

    #[test]
    fn magic_limit_trip_returns_partial_without_poisoning_the_cache() {
        let reg = Registry::new();
        for edge in [["ann", "bob"], ["bob", "cal"], ["cal", "dee"]] {
            sym_insert(&reg, "parent", &edge);
        }
        // A one-round ceiling under strategy=magic: exit 3 (limit class)
        // with the partial answer derived up to the round barrier.
        let mut r = RunRequest::new("t", ANC, "q");
        r.strategy = Some(idlog_core::Strategy::Magic);
        r.max_rounds = Some(1);
        let tripped = reg.handle(Request::Run(r));
        assert_eq!(tripped.exit, 3, "{:?}", tripped.error);
        assert_eq!(tripped.complete, Some(false));
        let partial = tripped.answers.expect("partial answers travel");
        assert!(partial.len() < 3, "one round cannot finish: {partial:?}");

        // The trip happened off the tenant lock on a fresh evaluation; the
        // prepared entry and its view are untouched, so the next plain
        // request serves the complete relation.
        let healed = run(&reg, ANC, "q");
        assert_eq!(healed.exit, 0, "{:?}", healed.error);
        assert_eq!(healed.complete, Some(true));
        assert_eq!(
            healed.answers.unwrap(),
            vec!["bob".to_string(), "cal".to_string(), "dee".to_string()]
        );
    }

    #[test]
    fn change_only_traffic_does_not_accumulate_a_log() {
        let reg = Registry::new();
        for i in 0..100 {
            int_change(&reg, "p", i, true);
        }
        let tenant = reg.tenant("t");
        let t = tenant.lock().unwrap();
        assert_eq!(t.log.len(), 0, "no live views: every change compacts");
        assert_eq!(t.log_base, t.version);
    }

    #[test]
    fn a_view_lagging_past_max_log_is_evicted_rather_than_pinning_the_log() {
        let reg = Registry::new();
        int_change(&reg, "a", 1, true);
        int_change(&reg, "b", 2, true);
        assert_eq!(run(&reg, SUM, "sum").exit, 0);

        // Write-only traffic while the view is never re-queried: the log
        // may buffer up to MAX_LOG changes, then the stale view goes.
        for i in 0..(MAX_LOG as i64 + 10) {
            int_change(&reg, "p", i, true);
        }
        {
            let tenant = reg.tenant("t");
            let t = tenant.lock().unwrap();
            assert!(t.log.len() <= MAX_LOG, "log over ceiling: {}", t.log.len());
            assert!(
                t.prepared.values().all(|p| p.view.is_none()),
                "stale view must have been evicted"
            );
        }

        // The query is still served correctly — by rebuilding.
        let again = run(&reg, SUM, "sum");
        assert_eq!(again.exit, 0, "{:?}", again.error);
        assert_eq!(again.answers.as_deref(), Some(&["3".to_string()][..]));
        assert_eq!(again.mode, Some(ServeMode::Recomputed));
        assert_eq!(
            again.cache_hit,
            Some(true),
            "eviction dropped the view, not the entry"
        );
    }

    #[test]
    fn the_prepared_cache_is_lru_bounded() {
        let reg = Registry::new();
        int_change(&reg, "e", 1, true);
        for i in 0..(MAX_PREPARED + 8) {
            let program = format!("q{i}(X) :- e(X).");
            let resp = run(&reg, &program, &format!("q{i}"));
            assert_eq!(resp.exit, 0, "{:?}", resp.error);
        }
        let tenant = reg.tenant("t");
        let t = tenant.lock().unwrap();
        assert_eq!(t.prepared.len(), MAX_PREPARED);
        // The oldest entries were evicted, the newest kept.
        assert!(!t
            .prepared
            .contains_key(&("q0(X) :- e(X).".to_string(), "q0".to_string())));
        let last = MAX_PREPARED + 7;
        assert!(t
            .prepared
            .contains_key(&(format!("q{last}(X) :- e(X)."), format!("q{last}"))));
    }

    fn durable_registry(dir: &std::path::Path) -> Registry {
        Registry::with_config(ServerConfig {
            data_dir: Some(dir.to_path_buf()),
            sync: SyncPolicy::Always,
            ..ServerConfig::default()
        })
    }

    fn temp_data_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "idlog-server-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn acked_changes_survive_a_registry_restart() {
        let dir = temp_data_dir("restart");
        let before = {
            let reg = durable_registry(&dir);
            for edge in [["ann", "bob"], ["bob", "cal"]] {
                sym_insert(&reg, "parent", &edge);
            }
            sym_insert(&reg, "parent", &["cal", "dee"]);
            // Retract one fact so recovery replays a retract too.
            let resp = reg.handle(Request::Retract {
                tenant: "t".into(),
                pred: "parent".into(),
                tuple: vec![FactValue::Sym("cal".into()), FactValue::Sym("dee".into())],
            });
            assert_eq!(resp.exit, 0, "{:?}", resp.error);
            assert_eq!(resp.version, Some(4), "WAL sequence acked on the wire");
            run(&reg, ANC, "q").answers.unwrap()
        };
        // A fresh registry over the same directory recovers the exact
        // acknowledged state and serves identical answers.
        let reg = durable_registry(&dir);
        let stats = reg.handle(Request::Stats { tenant: "t".into() });
        assert_eq!(stats.facts, Some(2), "{stats:?}");
        assert_eq!(stats.version, Some(4), "recovered WAL version");
        assert_eq!(run(&reg, ANC, "q").answers.unwrap(), before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoints_bound_the_wal_and_keep_answers_identical() {
        let dir = temp_data_dir("checkpoint");
        {
            let reg = Registry::with_config(ServerConfig {
                data_dir: Some(dir.to_path_buf()),
                sync: SyncPolicy::Always,
                checkpoint_every: 8,
                ..ServerConfig::default()
            });
            for i in 0..20 {
                int_change(&reg, "p", i, true);
            }
        }
        // 20 appends with a checkpoint every 8: the WAL on disk holds at
        // most 8 records, the rest live in the snapshot.
        let wal = durability::tenant_dir(&dir, "t").join("wal.log");
        let (records, torn) = durability::scan_wal(&wal).unwrap();
        assert!(torn.is_none(), "{torn:?}");
        assert!(records.len() <= 8, "WAL not truncated: {}", records.len());
        let reg = durable_registry(&dir);
        let resp = run(&reg, "q(X) :- p(X).", "q");
        assert_eq!(resp.exit, 0, "{:?}", resp.error);
        assert_eq!(resp.answers.unwrap().len(), 20);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_quarantined_tenant_refuses_traffic_with_a_clean_error() {
        let reg = Registry::new();
        {
            let tenant = reg.tenant("t");
            let mut t = tenant.lock().unwrap();
            t.quarantined = Some("test fault".into());
        }
        let resp = int_change_raw(&reg, "p", 1);
        assert_eq!(resp.exit, ErrorCode::Internal.exit_code());
        let err = resp.error.unwrap();
        assert!(err.contains("quarantined"), "{err}");
        assert!(err.contains("restart"), "{err}");
        let run_resp = run(&reg, "q(X) :- p(X).", "q");
        assert!(run_resp.error.unwrap().contains("quarantined"));
    }

    fn int_change_raw(reg: &Registry, pred: &str, n: i64) -> Response {
        reg.handle(Request::Insert {
            tenant: "t".into(),
            pred: pred.into(),
            tuple: vec![FactValue::Int(n)],
        })
    }

    #[test]
    fn ping_negotiates_the_schema() {
        let reg = Registry::new();
        let ok = reg.handle(Request::Ping { schema: None });
        assert_eq!(ok.schema.as_deref(), Some("idlog-service/2"));
        let v1 = reg.handle(Request::Ping {
            schema: Some("idlog-service/1".into()),
        });
        assert_eq!(v1.exit, 0);
        assert_eq!(v1.schema.as_deref(), Some("idlog-service/1"));
        let bad = reg.handle(Request::Ping {
            schema: Some("idlog-service/99".into()),
        });
        assert_ne!(bad.exit, 0);
        assert!(bad.error.unwrap().contains("idlog-service/2"));
    }
}
