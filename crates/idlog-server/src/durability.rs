//! Crash-safe per-tenant durability: a write-ahead log plus checkpoint
//! snapshots.
//!
//! Each tenant of a server started with `--data-dir <dir>` owns a
//! directory `<dir>/tenants/<escaped-name>/` holding two files:
//!
//! * `wal.log` — the write-ahead log: a fixed header followed by
//!   length-prefixed, CRC-32-checksummed records, one per acknowledged
//!   fact change ([`WalRecord::Insert`] / [`WalRecord::Retract`]; a
//!   [`WalRecord::SetProgram`] kind is reserved in the encoding for a
//!   future durable-program surface). A record is appended — and, per the
//!   [`SyncPolicy`], fsynced — **before** the change is acknowledged on
//!   the wire, so every acked write survives a crash.
//! * `checkpoint.snap` — a snapshot of the entire EDB at some log version,
//!   written to a temporary file, fsynced, and atomically renamed into
//!   place. After a successful checkpoint the WAL is truncated (same
//!   write-then-rename dance), bounding recovery work.
//!
//! Recovery ([`TenantStore::open`]) loads the checkpoint, replays the WAL
//! records past the checkpoint version **in order**, and detects torn
//! tails — a truncated length prefix, a short payload, or a CRC mismatch —
//! by cleanly truncating the file at the last intact record. A torn tail
//! is exactly what a crash mid-append leaves behind; the write it belonged
//! to was never acknowledged, so dropping it restores the database to the
//! acknowledged prefix.
//!
//! Every file operation is a failpoint site (`wal.append`, `wal.fsync`,
//! `wal.truncate`, `snapshot.write`), including a torn-write action that
//! drops a suffix of the record being appended; the kill-and-recover suite
//! drives injected crashes through every site and asserts the recovered
//! database equals a prefix of acknowledged writes.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use idlog_common::crc32::crc32;
use idlog_common::failpoint;
use idlog_core::service::FactValue;

/// Magic bytes opening `wal.log`; the trailing digit versions the record
/// encoding.
pub const WAL_MAGIC: &[u8; 8] = b"IDLOGW01";

/// Magic bytes opening `checkpoint.snap`.
pub const SNAP_MAGIC: &[u8; 8] = b"IDLOGS01";

/// When to fsync the WAL, selected by `idlog serve --sync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// fsync after every record, before the acknowledgement. An acked
    /// write survives power loss.
    Always,
    /// fsync every [`BATCH_SYNC_RECORDS`] records (and on checkpoint). An
    /// acked write survives a process crash; the tail of a batch may be
    /// lost to power failure.
    #[default]
    Batch,
    /// Never fsync explicitly; the OS flushes on its own schedule. An
    /// acked write survives a process crash only.
    Never,
}

/// Record interval of the [`SyncPolicy::Batch`] fsync.
pub const BATCH_SYNC_RECORDS: u64 = 32;

impl SyncPolicy {
    /// The flag/wire name.
    pub fn name(self) -> &'static str {
        match self {
            SyncPolicy::Always => "always",
            SyncPolicy::Batch => "batch",
            SyncPolicy::Never => "never",
        }
    }

    /// Parse a flag value.
    pub fn parse(s: &str) -> Option<SyncPolicy> {
        Some(match s {
            "always" => SyncPolicy::Always,
            "batch" => SyncPolicy::Batch,
            "never" => SyncPolicy::Never,
            _ => return None,
        })
    }
}

/// One durable change. The encoding is shared by the WAL and the
/// checkpoint (a checkpoint is a sequence of `Insert` records).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A fact was added.
    Insert {
        /// Predicate name.
        pred: String,
        /// Fact arguments.
        tuple: Vec<FactValue>,
    },
    /// A fact was removed.
    Retract {
        /// Predicate name.
        pred: String,
        /// Fact arguments.
        tuple: Vec<FactValue>,
    },
    /// Reserved: a durable program installation (no current writer).
    SetProgram {
        /// Program text.
        program: String,
        /// Output predicate.
        output: String,
    },
}

const KIND_INSERT: u8 = 1;
const KIND_RETRACT: u8 = 2;
const KIND_SET_PROGRAM: u8 = 3;

const TAG_SYM: u8 = 0;
const TAG_INT: u8 = 1;

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn put_value(out: &mut Vec<u8>, v: &FactValue) {
    match v {
        FactValue::Sym(s) => {
            out.push(TAG_SYM);
            put_bytes(out, s.as_bytes());
        }
        FactValue::Int(n) => {
            // Integers are stored 16 bytes wide (i128) so the on-disk
            // format survives a future widening of the value model.
            out.push(TAG_INT);
            out.extend_from_slice(&(*n as i128).to_le_bytes());
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "payload underrun: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid utf-8 in record: {e}"))
    }

    fn value(&mut self) -> Result<FactValue, String> {
        match self.u8()? {
            TAG_SYM => Ok(FactValue::Sym(self.string()?)),
            TAG_INT => {
                let wide = i128::from_le_bytes(self.take(16)?.try_into().unwrap());
                let n = i64::try_from(wide)
                    .map_err(|_| format!("integer {wide} outside the engine's i64 range"))?;
                Ok(FactValue::Int(n))
            }
            tag => Err(format!("unknown value tag {tag}")),
        }
    }
}

fn encode_payload(seq: u64, record: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&seq.to_le_bytes());
    match record {
        WalRecord::Insert { pred, tuple } | WalRecord::Retract { pred, tuple } => {
            out.push(if matches!(record, WalRecord::Insert { .. }) {
                KIND_INSERT
            } else {
                KIND_RETRACT
            });
            put_bytes(&mut out, pred.as_bytes());
            out.extend_from_slice(&(tuple.len() as u16).to_le_bytes());
            for v in tuple {
                put_value(&mut out, v);
            }
        }
        WalRecord::SetProgram { program, output } => {
            out.push(KIND_SET_PROGRAM);
            put_bytes(&mut out, program.as_bytes());
            put_bytes(&mut out, output.as_bytes());
        }
    }
    out
}

fn decode_payload(payload: &[u8]) -> Result<(u64, WalRecord), String> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let seq = c.u64()?;
    let kind = c.u8()?;
    let record = match kind {
        KIND_INSERT | KIND_RETRACT => {
            let pred = c.string()?;
            let arity = u16::from_le_bytes(c.take(2)?.try_into().unwrap()) as usize;
            let mut tuple = Vec::with_capacity(arity.min(64));
            for _ in 0..arity {
                tuple.push(c.value()?);
            }
            if kind == KIND_INSERT {
                WalRecord::Insert { pred, tuple }
            } else {
                WalRecord::Retract { pred, tuple }
            }
        }
        KIND_SET_PROGRAM => WalRecord::SetProgram {
            program: c.string()?,
            output: c.string()?,
        },
        other => return Err(format!("unknown record kind {other}")),
    };
    if c.pos != payload.len() {
        return Err(format!(
            "{} trailing bytes after record body",
            payload.len() - c.pos
        ));
    }
    Ok((seq, record))
}

/// Encode one framed record: `u32` payload length, `u32` CRC-32 of the
/// payload, payload (`u64` sequence number, `u8` kind, body).
pub fn encode_record(seq: u64, record: &WalRecord) -> Vec<u8> {
    let payload = encode_payload(seq, record);
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// The result of decoding one frame from a buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum Decoded {
    /// A complete, checksum-verified record and the bytes it consumed.
    Record {
        /// Sequence number carried in the payload.
        seq: u64,
        /// The decoded record.
        record: WalRecord,
        /// Total frame size in bytes.
        consumed: usize,
    },
    /// The buffer ends mid-frame: a torn tail (crash mid-append). Scanning
    /// stops cleanly here.
    Torn(String),
}

/// Ceiling on one record's payload (a fact is small; anything bigger is
/// corruption masquerading as a length).
const MAX_PAYLOAD: u32 = 1 << 24;

/// Decode the frame at the start of `buf`. Never panics: any malformed
/// region — truncated length prefix, short payload, CRC mismatch, bad
/// tag/UTF-8 — is reported as [`Decoded::Torn`] with the reason.
pub fn decode_record(buf: &[u8]) -> Decoded {
    if buf.len() < 8 {
        return Decoded::Torn(format!("truncated frame header ({} bytes)", buf.len()));
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Decoded::Torn(format!("implausible payload length {len}"));
    }
    let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let Some(payload) = buf.get(8..8 + len as usize) else {
        return Decoded::Torn(format!(
            "short payload: header promises {len} bytes, {} present",
            buf.len() - 8
        ));
    };
    if crc32(payload) != crc {
        return Decoded::Torn("CRC mismatch".to_string());
    }
    match decode_payload(payload) {
        Ok((seq, record)) => Decoded::Record {
            seq,
            record,
            consumed: 8 + len as usize,
        },
        Err(e) => Decoded::Torn(e),
    }
}

/// What a [`TenantStore::open`] found on disk, ready to rebuild the
/// in-memory database: the checkpoint's facts (as inserts), then the WAL
/// tail, in original order.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Ordered changes to replay into an empty database.
    pub ops: Vec<WalRecord>,
    /// Log version after the last replayed record.
    pub version: u64,
    /// Version the checkpoint (if any) was taken at.
    pub checkpoint_version: u64,
    /// WAL records replayed past the checkpoint.
    pub wal_replayed: u64,
    /// Why the WAL tail was truncated, when a torn tail was found.
    pub truncated_tail: Option<String>,
}

fn io_err(msg: String) -> io::Error {
    io::Error::other(msg)
}

/// A tenant's open durability state: its directory and appendable WAL.
#[derive(Debug)]
pub struct TenantStore {
    dir: PathBuf,
    wal: File,
    policy: SyncPolicy,
    /// Sequence number the next appended record will carry.
    next_seq: u64,
    /// Records appended since the last fsync (batch policy).
    unsynced: u64,
    /// Records appended since the last checkpoint.
    since_checkpoint: u64,
}

impl TenantStore {
    /// Open (creating if needed) the tenant directory, recover its durable
    /// state, and leave the WAL ready for appending. A torn WAL tail is
    /// truncated on disk as part of recovery.
    pub fn open(dir: &Path, policy: SyncPolicy) -> io::Result<(TenantStore, Recovery)> {
        fs::create_dir_all(dir)?;
        let mut recovery = Recovery::default();

        // 1. Checkpoint, if one was ever completed. The write-then-rename
        // protocol means the file is either absent, the previous complete
        // snapshot, or the new complete snapshot — a torn snapshot only
        // ever exists under the temporary name, which is ignored.
        let snap_path = dir.join("checkpoint.snap");
        if let Ok(bytes) = fs::read(&snap_path) {
            let (version, facts) = decode_checkpoint(&bytes).map_err(io_err)?;
            recovery.checkpoint_version = version;
            recovery.version = version;
            recovery.ops = facts;
        }

        // 2. WAL tail: replay records past the checkpoint version, truncate
        // at the first torn frame.
        let wal_path = dir.join("wal.log");
        let mut good_end = WAL_MAGIC.len() as u64;
        match fs::read(&wal_path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                write_fresh_wal(&wal_path)?;
            }
            Err(e) => return Err(e),
            Ok(bytes) => {
                if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
                    return Err(io_err(format!(
                        "{}: not an idlog WAL (bad magic)",
                        wal_path.display()
                    )));
                }
                let mut offset = WAL_MAGIC.len();
                loop {
                    if offset == bytes.len() {
                        break;
                    }
                    match decode_record(&bytes[offset..]) {
                        Decoded::Record {
                            seq,
                            record,
                            consumed,
                        } => {
                            offset += consumed;
                            good_end = offset as u64;
                            // Records at or below the checkpoint version are
                            // already folded into the snapshot.
                            if seq > recovery.version {
                                if seq != recovery.version + 1 {
                                    return Err(io_err(format!(
                                        "{}: sequence gap: expected {}, found {seq}",
                                        wal_path.display(),
                                        recovery.version + 1
                                    )));
                                }
                                recovery.ops.push(record);
                                recovery.version = seq;
                                recovery.wal_replayed += 1;
                            }
                        }
                        Decoded::Torn(reason) => {
                            recovery.truncated_tail = Some(reason);
                            break;
                        }
                    }
                }
            }
        }

        let mut wal = OpenOptions::new().read(true).write(true).open(&wal_path)?;
        if recovery.truncated_tail.is_some() {
            failpoint::hit("wal.truncate").map_err(io_err)?;
            wal.set_len(good_end)?;
            wal.sync_data()?;
        }
        wal.seek(SeekFrom::End(0))?;

        let store = TenantStore {
            dir: dir.to_path_buf(),
            wal,
            policy,
            next_seq: recovery.version + 1,
            unsynced: 0,
            since_checkpoint: recovery.wal_replayed,
        };
        Ok((store, recovery))
    }

    /// The log version of the most recently appended record.
    pub fn version(&self) -> u64 {
        self.next_seq - 1
    }

    /// Append one record and make it durable per the sync policy. On
    /// success returns the record's sequence number.
    ///
    /// On failure the append is **undone on disk** (the file is truncated
    /// back to its pre-append length) so memory and disk stay in lockstep
    /// when the caller rolls its state back; if even the truncate fails
    /// the store is in an unknown state and the error says so — the caller
    /// must quarantine the tenant until a restart re-runs recovery.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, AppendError> {
        let frame = encode_record(self.next_seq, record);
        let start = self
            .wal
            .stream_position()
            .map_err(|e| AppendError::clean(format!("wal position: {e}")))?;

        // Injected crash mid-write: persist a prefix of the frame and stop
        // without cleanup, exactly as a power cut would. The caller treats
        // this as fatal for the tenant until restart.
        if let Some(n) = failpoint::torn_bytes("wal.append") {
            let keep = frame.len().saturating_sub(n as usize);
            let _ = self.wal.write_all(&frame[..keep]);
            let _ = self.wal.sync_data();
            return Err(AppendError::crash(format!(
                "torn write injected: {keep} of {} bytes persisted",
                frame.len()
            )));
        }

        let result = failpoint::hit("wal.append")
            .map_err(io_err)
            .and_then(|()| self.wal.write_all(&frame))
            .and_then(|()| self.sync_after_append());
        match result {
            Ok(()) => {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.since_checkpoint += 1;
                Ok(seq)
            }
            Err(e) => {
                // Undo the partial append so disk matches the caller's
                // rolled-back memory state.
                let undone = failpoint::hit("wal.truncate")
                    .map_err(io_err)
                    .and_then(|()| self.wal.set_len(start))
                    .and_then(|()| self.wal.seek(SeekFrom::End(0)).map(|_| ()));
                match undone {
                    Ok(()) => Err(AppendError::clean(format!("wal append failed: {e}"))),
                    Err(t) => Err(AppendError::crash(format!(
                        "wal append failed ({e}) and truncate-back failed ({t})"
                    ))),
                }
            }
        }
    }

    fn sync_after_append(&mut self) -> io::Result<()> {
        match self.policy {
            SyncPolicy::Always => {
                failpoint::hit("wal.fsync").map_err(io_err)?;
                self.wal.sync_data()
            }
            SyncPolicy::Batch => {
                self.unsynced += 1;
                if self.unsynced >= BATCH_SYNC_RECORDS {
                    failpoint::hit("wal.fsync").map_err(io_err)?;
                    self.wal.sync_data()?;
                    self.unsynced = 0;
                }
                Ok(())
            }
            SyncPolicy::Never => Ok(()),
        }
    }

    /// Records appended since the last checkpoint (or recovery).
    pub fn since_checkpoint(&self) -> u64 {
        self.since_checkpoint
    }

    /// Write a checkpoint of `facts` at `version` and truncate the WAL.
    ///
    /// Failure is always safe: the snapshot goes to a temporary file first
    /// and the WAL is only truncated after the rename lands, so a crash at
    /// any point leaves either the old (checkpoint, WAL) pair or the new
    /// one — recovery replays whichever is on disk.
    pub fn checkpoint(
        &mut self,
        version: u64,
        facts: &[(String, Vec<FactValue>)],
    ) -> io::Result<()> {
        failpoint::hit("snapshot.write").map_err(io_err)?;
        let tmp = self.dir.join("checkpoint.tmp");
        let mut out = Vec::new();
        out.extend_from_slice(SNAP_MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&(facts.len() as u64).to_le_bytes());
        for (pred, tuple) in facts {
            let record = WalRecord::Insert {
                pred: pred.clone(),
                tuple: tuple.clone(),
            };
            out.extend_from_slice(&encode_record(version, &record));
        }
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&out)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, self.dir.join("checkpoint.snap"))?;
        sync_dir(&self.dir)?;

        // The snapshot is durable; the WAL can restart empty.
        failpoint::hit("wal.truncate").map_err(io_err)?;
        let wal_path = self.dir.join("wal.log");
        write_fresh_wal(&wal_path)?;
        self.wal = OpenOptions::new().read(true).write(true).open(&wal_path)?;
        self.wal.seek(SeekFrom::End(0))?;
        self.unsynced = 0;
        self.since_checkpoint = 0;
        Ok(())
    }
}

/// How an [`TenantStore::append`] failed.
#[derive(Debug)]
pub struct AppendError {
    /// Human-readable cause.
    pub message: String,
    /// `true` when disk state no longer matches what a rolled-back caller
    /// holds in memory — the tenant must be quarantined until a restart
    /// re-runs recovery.
    pub quarantine: bool,
}

impl AppendError {
    fn clean(message: String) -> AppendError {
        AppendError {
            message,
            quarantine: false,
        }
    }

    fn crash(message: String) -> AppendError {
        AppendError {
            message,
            quarantine: true,
        }
    }
}

fn write_fresh_wal(path: &Path) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(WAL_MAGIC)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        sync_dir(dir)?;
    }
    Ok(())
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    // Directory fsync makes the rename itself durable on POSIX systems;
    // opening a directory read-only is not portable everywhere, so a
    // failure to open is ignored rather than failing the checkpoint.
    if let Ok(d) = File::open(dir) {
        d.sync_all()?;
    }
    Ok(())
}

fn decode_checkpoint(bytes: &[u8]) -> Result<(u64, Vec<WalRecord>), String> {
    if bytes.len() < SNAP_MAGIC.len() + 16 || &bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err("checkpoint.snap: bad magic or truncated header".to_string());
    }
    let mut c = Cursor {
        buf: bytes,
        pos: SNAP_MAGIC.len(),
    };
    let version = c.u64().map_err(|e| format!("checkpoint.snap: {e}"))?;
    let count = c.u64().map_err(|e| format!("checkpoint.snap: {e}"))?;
    let mut facts = Vec::new();
    let mut offset = c.pos;
    for i in 0..count {
        match decode_record(&bytes[offset..]) {
            Decoded::Record {
                record, consumed, ..
            } => {
                if !matches!(record, WalRecord::Insert { .. }) {
                    return Err(format!("checkpoint.snap: record {i} is not an insert"));
                }
                facts.push(record);
                offset += consumed;
            }
            // Unlike the WAL, the snapshot was renamed into place as a
            // complete unit: a torn record inside it is real corruption,
            // and serving a silently smaller database would be worse than
            // refusing to start.
            Decoded::Torn(reason) => {
                return Err(format!(
                    "checkpoint.snap: corrupt at record {i}/{count}: {reason}"
                ));
            }
        }
    }
    Ok((version, facts))
}

/// Escape a tenant name into a filesystem-safe directory component:
/// `[A-Za-z0-9_-]` pass through, everything else (including `.`, so `..`
/// cannot traverse) becomes `%XX` per UTF-8 byte.
pub fn escape_tenant(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'-' => out.push(b as char),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    if out.is_empty() {
        out.push_str("%empty");
    }
    out
}

/// The directory a tenant's durable state lives in.
pub fn tenant_dir(data_dir: &Path, tenant: &str) -> PathBuf {
    data_dir.join("tenants").join(escape_tenant(tenant))
}

/// What [`scan_wal`] finds: the decoded `(seq, record)` pairs plus the
/// torn-tail reason, if the file does not end on a frame boundary.
pub type WalScan = (Vec<(u64, WalRecord)>, Option<String>);

/// Read one WAL file start to finish without truncating (diagnostics and
/// tests): the decoded records plus the torn-tail reason, if any.
pub fn scan_wal(path: &Path) -> io::Result<WalScan> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(io_err(format!("{}: bad WAL magic", path.display())));
    }
    let mut records = Vec::new();
    let mut offset = WAL_MAGIC.len();
    let torn = loop {
        if offset == bytes.len() {
            break None;
        }
        match decode_record(&bytes[offset..]) {
            Decoded::Record {
                seq,
                record,
                consumed,
            } => {
                records.push((seq, record));
                offset += consumed;
            }
            Decoded::Torn(reason) => break Some(reason),
        }
    };
    Ok((records, torn))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "idlog-durability-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn insert(pred: &str, tuple: Vec<FactValue>) -> WalRecord {
        WalRecord::Insert {
            pred: pred.to_string(),
            tuple,
        }
    }

    #[test]
    fn records_round_trip_through_the_frame() {
        let cases = [
            insert("edge", vec![FactValue::Sym("a".into()), FactValue::Int(42)]),
            WalRecord::Retract {
                pred: "p".into(),
                tuple: vec![FactValue::Int(i64::MIN), FactValue::Int(i64::MAX)],
            },
            insert("unicode", vec![FactValue::Sym("smile 😀 ok".into())]),
            insert("empty", vec![]),
            WalRecord::SetProgram {
                program: "q(X) :- p(X).".into(),
                output: "q".into(),
            },
        ];
        for (i, record) in cases.iter().enumerate() {
            let frame = encode_record(i as u64 + 1, record);
            match decode_record(&frame) {
                Decoded::Record {
                    seq,
                    record: back,
                    consumed,
                } => {
                    assert_eq!(seq, i as u64 + 1);
                    assert_eq!(&back, record);
                    assert_eq!(consumed, frame.len());
                }
                Decoded::Torn(e) => panic!("{record:?}: {e}"),
            }
        }
    }

    /// The corrupt-tail table: every way a tail can be damaged must decode
    /// to a clean [`Decoded::Torn`], never a panic or a wrong record.
    #[test]
    fn corrupt_tails_stop_cleanly() {
        let frame = encode_record(7, &insert("p", vec![FactValue::Sym("x".into())]));
        // Truncated length prefix (0..8 bytes of header).
        for keep in 0..8 {
            assert!(
                matches!(decode_record(&frame[..keep]), Decoded::Torn(_)),
                "header cut at {keep}"
            );
        }
        // Partial final record: every proper prefix of the payload.
        for keep in 8..frame.len() {
            assert!(
                matches!(decode_record(&frame[..keep]), Decoded::Torn(_)),
                "payload cut at {keep}"
            );
        }
        // Bad CRC: flip one payload bit.
        let mut bad = frame.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert_eq!(decode_record(&bad), Decoded::Torn("CRC mismatch".into()));
        // Implausible length prefix.
        let mut huge = frame.clone();
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_record(&huge), Decoded::Torn(_)));
        // An integer wider than i64 on disk is refused, not wrapped.
        let mut payload = 9u64.to_le_bytes().to_vec();
        payload.push(KIND_INSERT);
        put_bytes(&mut payload, b"p");
        payload.extend_from_slice(&1u16.to_le_bytes());
        payload.push(TAG_INT);
        payload.extend_from_slice(&(i64::MAX as i128 + 1).to_le_bytes());
        let mut framed = (payload.len() as u32).to_le_bytes().to_vec();
        framed.extend_from_slice(&crc32(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        match decode_record(&framed) {
            Decoded::Torn(e) => assert!(e.contains("i64"), "{e}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn append_recover_round_trips_and_truncates_torn_tails() {
        let dir = temp_dir("roundtrip");
        let (mut store, recovery) = TenantStore::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(recovery.version, 0);
        assert!(recovery.ops.is_empty());
        let a = insert(
            "e",
            vec![FactValue::Sym("a".into()), FactValue::Sym("b".into())],
        );
        let b = insert(
            "e",
            vec![FactValue::Sym("b".into()), FactValue::Sym("c".into())],
        );
        let r = WalRecord::Retract {
            pred: "e".into(),
            tuple: vec![FactValue::Sym("a".into()), FactValue::Sym("b".into())],
        };
        assert_eq!(store.append(&a).unwrap(), 1);
        assert_eq!(store.append(&b).unwrap(), 2);
        assert_eq!(store.append(&r).unwrap(), 3);
        drop(store);

        // Clean reopen: all three records, in order.
        let (store, recovery) = TenantStore::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(recovery.version, 3);
        assert_eq!(recovery.ops, vec![a.clone(), b.clone(), r.clone()]);
        assert!(recovery.truncated_tail.is_none());
        drop(store);

        // Tear the tail: drop the last 3 bytes of the file.
        let wal_path = dir.join("wal.log");
        let len = fs::metadata(&wal_path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let (store, recovery) = TenantStore::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(recovery.version, 2, "torn third record dropped");
        assert_eq!(recovery.ops, vec![a.clone(), b.clone()]);
        assert!(recovery.truncated_tail.is_some());
        // The truncation is durable: the file now ends at record 2 and a
        // fresh append gets sequence 3.
        let (records, torn) = scan_wal(&wal_path).unwrap();
        assert_eq!(records.len(), 2);
        assert!(torn.is_none(), "{torn:?}");
        let mut store = store;
        assert_eq!(store.append(&b).unwrap(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_the_wal_and_recovery_prefers_it() {
        let dir = temp_dir("checkpoint");
        let (mut store, _) = TenantStore::open(&dir, SyncPolicy::Batch).unwrap();
        let mut facts = Vec::new();
        for i in 0..10i64 {
            let rec = insert("p", vec![FactValue::Int(i)]);
            store.append(&rec).unwrap();
            facts.push(("p".to_string(), vec![FactValue::Int(i)]));
        }
        assert_eq!(store.since_checkpoint(), 10);
        store.checkpoint(10, &facts).unwrap();
        assert_eq!(store.since_checkpoint(), 0);
        // The WAL restarted empty…
        let (records, torn) = scan_wal(&dir.join("wal.log")).unwrap();
        assert!(records.is_empty() && torn.is_none());
        // …and two more appends land after the checkpoint.
        store
            .append(&insert("p", vec![FactValue::Int(10)]))
            .unwrap();
        store
            .append(&insert("p", vec![FactValue::Int(11)]))
            .unwrap();
        drop(store);

        let (_, recovery) = TenantStore::open(&dir, SyncPolicy::Batch).unwrap();
        assert_eq!(recovery.checkpoint_version, 10);
        assert_eq!(recovery.version, 12);
        assert_eq!(recovery.wal_replayed, 2);
        assert_eq!(recovery.ops.len(), 12);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tenant_names_cannot_escape_the_data_dir() {
        assert_eq!(escape_tenant("acme"), "acme");
        assert_eq!(escape_tenant(".."), "%2E%2E");
        assert_eq!(escape_tenant("a/b"), "a%2Fb");
        assert_eq!(escape_tenant(""), "%empty");
        assert_eq!(escape_tenant("a b😀"), "a%20b%F0%9F%98%80");
        let dir = tenant_dir(Path::new("/data"), "../../etc");
        assert!(dir.starts_with("/data/tenants"), "{}", dir.display());
        assert!(!dir.to_string_lossy().contains(".."));
    }
}
