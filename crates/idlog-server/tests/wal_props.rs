//! Property tests of the WAL record encoding: arbitrary records survive a
//! frame round trip byte for byte, including integer extremes (the on-disk
//! format is 16-byte i128) and strings full of non-BMP characters (the
//! code points UTF-16 would need surrogate pairs for).

use proptest::prelude::*;

use idlog_core::service::FactValue;
use idlog_server::durability::{decode_record, encode_record, Decoded, WalRecord};

/// Characters drawn from the whole scalar-value space, weighted toward the
/// interesting regions: ASCII, the BMP edges around the surrogate gap, and
/// supplementary planes (emoji included) that need surrogate pairs in
/// UTF-16 and 4-byte sequences in UTF-8.
fn arb_char() -> impl Strategy<Value = char> {
    prop_oneof![
        (0x20u32..0x7f).prop_map(|c| char::from_u32(c).unwrap()),
        // Just below the surrogate range.
        (0xd000u32..0xd800).prop_map(|c| char::from_u32(c).unwrap()),
        // Just above it.
        (0xe000u32..0xe100).prop_map(|c| char::from_u32(c).unwrap()),
        // Emoji block.
        (0x1f300u32..0x1f700).prop_map(|c| char::from_u32(c).unwrap()),
        // The far end of the supplementary planes.
        (0x10fff0u32..=0x10ffff).prop_map(|c| char::from_u32(c).unwrap()),
    ]
}

fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(arb_char(), 0..12).prop_map(|cs| cs.into_iter().collect())
}

/// Integers covering the full i64 range: proptest's vendored build has no
/// i128 strategy, so extremes are built from two u64 halves.
fn arb_int() -> impl Strategy<Value = i64> {
    prop_oneof![
        Just(i64::MIN),
        Just(i64::MAX),
        Just(0i64),
        Just(-1i64),
        any::<u64>().prop_map(|bits| bits as i64),
    ]
}

fn arb_value() -> impl Strategy<Value = FactValue> {
    prop_oneof![
        arb_string().prop_map(FactValue::Sym),
        arb_int().prop_map(FactValue::Int),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Vec<FactValue>> {
    proptest::collection::vec(arb_value(), 0..6)
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (arb_string(), arb_tuple()).prop_map(|(pred, tuple)| WalRecord::Insert { pred, tuple }),
        (arb_string(), arb_tuple()).prop_map(|(pred, tuple)| WalRecord::Retract { pred, tuple }),
        (arb_string(), arb_string())
            .prop_map(|(program, output)| WalRecord::SetProgram { program, output }),
    ]
}

proptest! {
    /// encode → decode is the identity, the sequence number travels, and
    /// the frame length is exactly what decode reports consumed.
    #[test]
    fn records_round_trip(seq in any::<u64>(), record in arb_record()) {
        let frame = encode_record(seq, &record);
        match decode_record(&frame) {
            Decoded::Record { seq: got_seq, record: got, consumed } => {
                prop_assert_eq!(got_seq, seq);
                prop_assert_eq!(got, record);
                prop_assert_eq!(consumed, frame.len());
            }
            Decoded::Torn(e) => prop_assert!(false, "torn on intact frame: {}", e),
        }
    }

    /// Back-to-back frames decode independently: the first decode consumes
    /// exactly its own frame and the second record is intact after it.
    #[test]
    fn concatenated_frames_split_cleanly(a in arb_record(), b in arb_record()) {
        let mut buf = encode_record(1, &a);
        buf.extend_from_slice(&encode_record(2, &b));
        let Decoded::Record { record: first, consumed, .. } = decode_record(&buf) else {
            return Err(TestCaseError::fail("first frame torn"));
        };
        prop_assert_eq!(first, a);
        let Decoded::Record { record: second, seq, .. } = decode_record(&buf[consumed..]) else {
            return Err(TestCaseError::fail("second frame torn"));
        };
        prop_assert_eq!(second, b);
        prop_assert_eq!(seq, 2);
    }

    /// Every proper prefix of a frame is reported torn — never a wrong
    /// record, never a panic. This is the exact guarantee torn-tail
    /// recovery rests on.
    #[test]
    fn every_truncation_is_torn(record in arb_record(), cut in any::<u16>()) {
        let frame = encode_record(7, &record);
        let keep = (cut as usize) % frame.len();
        prop_assert!(
            matches!(decode_record(&frame[..keep]), Decoded::Torn(_)),
            "prefix of {} bytes decoded as a record", keep
        );
    }

    /// A single flipped bit anywhere in the frame can never yield the
    /// original record presented as intact: either the CRC (or structure)
    /// rejects it, or — if the flip lands in the length/CRC header making
    /// a self-consistent smaller frame — the decoded record differs.
    #[test]
    fn bit_flips_never_forge_the_original(record in arb_record(), pos in any::<u16>(), bit in 0u8..8) {
        let frame = encode_record(3, &record);
        let mut bad = frame.clone();
        let i = (pos as usize) % bad.len();
        bad[i] ^= 1 << bit;
        if let Decoded::Record { record: got, seq, .. } = decode_record(&bad) {
            prop_assert!(
                !(got == record && seq == 3),
                "flipped bit {} of byte {} went undetected", bit, i
            );
        }
    }
}
