//! End-to-end tests of the served protocol: concurrency across tenants,
//! byte-identical answers against direct sessions, cache behaviour, limit
//! handling, and error codes.

use std::net::SocketAddr;
use std::thread;

use idlog_core::service::{render_answers, FactValue, Request, Response, RunRequest, ServeMode};
use idlog_core::{ErrorCode, LimitKind, Query};
use idlog_server::{Client, Server, DEFAULT_WORKERS};
use idlog_storage::{BackendKind, Database};

const TC: &str = "t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), e(Y, Z).";

fn start() -> (SocketAddr, thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = thread::spawn(move || server.run(DEFAULT_WORKERS).expect("serve"));
    (addr, handle)
}

fn client(addr: SocketAddr) -> Client {
    Client::connect(&addr.to_string()).expect("connect")
}

fn shutdown(addr: SocketAddr, handle: thread::JoinHandle<()>) {
    let resp = client(addr).request(&Request::Shutdown).expect("shutdown");
    assert_eq!(resp.exit, 0);
    handle.join().expect("server thread");
}

fn insert(c: &mut Client, tenant: &str, pred: &str, cols: &[&str]) -> Response {
    c.request(&Request::Insert {
        tenant: tenant.into(),
        pred: pred.into(),
        tuple: cols.iter().map(|s| FactValue::Sym(s.to_string())).collect(),
    })
    .expect("insert")
}

fn retract(c: &mut Client, tenant: &str, pred: &str, cols: &[&str]) -> Response {
    c.request(&Request::Retract {
        tenant: tenant.into(),
        pred: pred.into(),
        tuple: cols.iter().map(|s| FactValue::Sym(s.to_string())).collect(),
    })
    .expect("retract")
}

/// What a fresh, single-threaded, direct [`idlog_core::Session`] renders
/// for `program`/`output` over `edges` — the reference the served answers
/// must equal byte for byte.
fn direct_answers(program: &str, output: &str, edges: &[(String, String)]) -> Vec<String> {
    let query = Query::parse(program, output).expect("parse");
    let mut db = Database::with_interner(query.interner().clone());
    for (a, b) in edges {
        db.insert_syms("e", &[a, b]).expect("insert");
    }
    let out = query.session(&db).threads(1).run().expect("run");
    render_answers(&out.relation, query.interner())
}

#[test]
fn served_answers_match_direct_sessions_for_concurrent_tenants() {
    let (addr, handle) = start();
    const CLIENTS: usize = 8;
    const TENANTS: usize = 2;

    // Each client owns a disjoint slice of the node space, so the final
    // database per tenant is deterministic whatever the interleaving:
    // edges n{i}_0 → … → n{i}_9 minus the two retracted mid-stream.
    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            thread::spawn(move || {
                let tenant = format!("t{}", i % TENANTS);
                let mut c = client(addr);
                for j in 0..9 {
                    let resp = insert(
                        &mut c,
                        &tenant,
                        "e",
                        &[&format!("n{i}_{j}"), &format!("n{i}_{}", j + 1)],
                    );
                    assert_eq!(resp.exit, 0, "insert failed: {:?}", resp.error);
                    assert_eq!(resp.changed, Some(true));
                    // Interleave queries with the writes; every response
                    // must be a clean success.
                    let run = c
                        .request(&Request::Run(RunRequest::new(&tenant, TC, "t")))
                        .expect("run");
                    assert_eq!(run.exit, 0, "run failed: {:?}", run.error);
                    assert!(run.answers.is_some());
                }
                for j in [6, 7] {
                    let resp = retract(
                        &mut c,
                        &tenant,
                        "e",
                        &[&format!("n{i}_{j}"), &format!("n{i}_{}", j + 1)],
                    );
                    assert_eq!(resp.exit, 0);
                    assert_eq!(resp.changed, Some(true));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    for tenant_idx in 0..TENANTS {
        let tenant = format!("t{tenant_idx}");
        let mut edges = Vec::new();
        for i in (0..CLIENTS).filter(|i| i % TENANTS == tenant_idx) {
            for j in (0..9).filter(|j| ![6, 7].contains(j)) {
                edges.push((format!("n{i}_{j}"), format!("n{i}_{}", j + 1)));
            }
        }
        let expected = direct_answers(TC, "t", &edges);
        let mut c = client(addr);
        let served = c
            .request(&Request::Run(RunRequest::new(&tenant, TC, "t")))
            .expect("run");
        assert_eq!(served.exit, 0);
        assert_eq!(served.answers.as_deref(), Some(&expected[..]));
        // The served state survived the mixed run/insert/retract traffic.
        let stats = c
            .request(&Request::Stats {
                tenant: tenant.clone(),
            })
            .expect("stats");
        assert_eq!(stats.facts, Some(edges.len() as u64));
    }
    shutdown(addr, handle);
}

#[test]
fn cache_miss_then_hit_then_incremental_maintenance() {
    let (addr, handle) = start();
    let mut c = client(addr);
    insert(&mut c, "acme", "e", &["a", "b"]);
    insert(&mut c, "acme", "e", &["b", "c"]);

    let run = |c: &mut Client| {
        c.request(&Request::Run(RunRequest::new("acme", TC, "t")))
            .expect("run")
    };
    let first = run(&mut c);
    assert_eq!(first.exit, 0);
    assert_eq!(first.cache_hit, Some(false));
    assert_eq!(first.mode, Some(ServeMode::Recomputed));
    assert_eq!(
        first.answers.as_deref(),
        Some(&["a,b".to_string(), "a,c".into(), "b,c".into()][..])
    );

    let second = run(&mut c);
    assert_eq!(second.cache_hit, Some(true));
    assert_eq!(second.mode, Some(ServeMode::Materialized));
    assert_eq!(second.answers, first.answers);

    // A fact change re-drives the delta machinery instead of recomputing.
    insert(&mut c, "acme", "e", &["c", "d"]);
    let third = run(&mut c);
    assert_eq!(third.cache_hit, Some(true));
    assert_eq!(third.mode, Some(ServeMode::Incremental));
    assert_eq!(
        third.answers.as_deref(),
        Some(
            &direct_answers(
                TC,
                "t",
                &[
                    ("a".into(), "b".into()),
                    ("b".into(), "c".into()),
                    ("c".into(), "d".into()),
                ],
            )[..]
        )
    );

    // Deletion: DRed removes the no-longer-derivable closure.
    let ret = retract(&mut c, "acme", "e", &["b", "c"]);
    assert_eq!(ret.changed, Some(true));
    let fourth = run(&mut c);
    assert_eq!(fourth.mode, Some(ServeMode::Incremental));
    assert_eq!(
        fourth.answers.as_deref(),
        Some(
            &direct_answers(
                TC,
                "t",
                &[("a".into(), "b".into()), ("c".into(), "d".into())]
            )[..]
        )
    );
    shutdown(addr, handle);
}

#[test]
fn served_answers_are_identical_across_backends_and_thread_counts() {
    let (addr, handle) = start();
    let mut c = client(addr);
    for (a, b) in [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")] {
        insert(&mut c, "x", "e", &[a, b]);
    }
    let expected = direct_answers(
        TC,
        "t",
        &[
            ("a".into(), "b".into()),
            ("b".into(), "c".into()),
            ("c".into(), "a".into()),
            ("c".into(), "d".into()),
        ],
    );
    for backend in [BackendKind::Hash, BackendKind::Columnar] {
        for threads in [1, 4] {
            // Materialized path (fresh tenant-equivalent query text per
            // combination keeps each request a clean build).
            let mut req = RunRequest::new("x", TC, "t");
            req.backend = Some(backend);
            req.threads = Some(threads);
            let served = c.request(&Request::Run(req.clone())).expect("run");
            assert_eq!(served.exit, 0);
            assert_eq!(
                served.answers.as_deref(),
                Some(&expected[..]),
                "materialized, backend={backend:?} threads={threads}"
            );
            // Fresh path: the same request with a (generous) limit skips
            // the cache and evaluates from a snapshot.
            req.max_rounds = Some(1_000_000);
            let fresh = c.request(&Request::Run(req)).expect("run");
            assert_eq!(fresh.exit, 0);
            assert_eq!(fresh.mode, Some(ServeMode::Fresh));
            assert_eq!(
                fresh.answers.as_deref(),
                Some(&expected[..]),
                "fresh, backend={backend:?} threads={threads}"
            );
        }
    }
    shutdown(addr, handle);
}

#[test]
fn deadline_trip_returns_partial_results_without_poisoning_the_tenant() {
    let (addr, handle) = start();
    let mut c = client(addr);
    // A chain long enough that its transitive closure cannot finish in a
    // microsecond-scale deadline.
    for j in 0..400 {
        let resp = insert(
            &mut c,
            "slow",
            "e",
            &[&format!("v{j}"), &format!("v{}", j + 1)],
        );
        assert_eq!(resp.exit, 0);
    }
    let mut limited = RunRequest::new("slow", TC, "t");
    limited.timeout_ms = Some(1);
    let tripped = c.request(&Request::Run(limited)).expect("run");
    assert_eq!(tripped.exit, 3, "deadline must trip: {:?}", tripped.error);
    assert_eq!(tripped.code, Some(ErrorCode::Limit(LimitKind::Deadline)));
    assert_eq!(tripped.complete, Some(false));
    assert!(
        tripped.answers.is_some(),
        "a tripped run still reports the partial prefix"
    );

    // The tenant is not poisoned: a bounded-but-roomy request still
    // completes correctly afterwards.
    let mut roomy = RunRequest::new("slow", TC, "t");
    roomy.timeout_ms = Some(60_000);
    let after = c.request(&Request::Run(roomy)).expect("run");
    assert_eq!(after.exit, 0, "tenant poisoned: {:?}", after.error);
    let expected_len = 400 * 401 / 2;
    assert_eq!(after.answers.map(|a| a.len()), Some(expected_len));
    shutdown(addr, handle);
}

#[test]
fn limit_kinds_map_to_stable_codes_over_the_wire() {
    let (addr, handle) = start();
    let mut c = client(addr);
    for (a, b) in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")] {
        insert(&mut c, "lim", "e", &[a, b]);
    }
    let mut req = RunRequest::new("lim", TC, "t");
    req.max_rounds = Some(1);
    let resp = c.request(&Request::Run(req)).expect("run");
    assert_eq!(resp.exit, 3);
    assert_eq!(resp.code, Some(ErrorCode::Limit(LimitKind::Rounds)));
    assert_eq!(resp.complete, Some(false));
    shutdown(addr, handle);
}

#[test]
fn error_codes_cover_protocol_compile_and_input_failures() {
    let (addr, handle) = start();
    let mut c = client(addr);

    let raw = c.request_raw("this is not json").expect("raw");
    let resp = Response::parse(&raw).expect("parse");
    assert_eq!(resp.code, Some(ErrorCode::Protocol));
    assert_eq!(resp.exit, 1);

    let raw = c.request_raw(r#"{"op":"warp"}"#).expect("raw");
    let resp = Response::parse(&raw).expect("parse");
    assert_eq!(resp.code, Some(ErrorCode::Protocol));

    // A malformed program reports the library's parse code.
    let bad = c
        .request(&Request::Run(RunRequest::new("err", "t(X :-", "t")))
        .expect("run");
    assert_eq!(bad.code, Some(ErrorCode::Parse));
    assert_eq!(bad.exit, 1);

    // Retracting from an undeclared relation is an input error.
    let missing = retract(&mut c, "err", "ghost", &["a"]);
    assert_eq!(missing.code, Some(ErrorCode::Input));
    assert_eq!(missing.exit, 1);

    // An ill-typed fact is an input error too.
    insert(&mut c, "err", "p", &["a"]);
    let bad_fact = c
        .request(&Request::Insert {
            tenant: "err".into(),
            pred: "p".into(),
            tuple: vec![FactValue::Int(3)],
        })
        .expect("insert");
    assert_eq!(bad_fact.code, Some(ErrorCode::Input));

    let ping = c.request(&Request::Ping { schema: None }).expect("ping");
    assert_eq!(ping.exit, 0);
    assert_eq!(ping.schema.as_deref(), Some("idlog-service/2"));
    shutdown(addr, handle);
}

#[test]
fn seeded_and_enumerating_requests_take_the_fresh_path() {
    let (addr, handle) = start();
    let mut c = client(addr);
    insert(&mut c, "nd", "e", &["a", "b"]);
    insert(&mut c, "nd", "e", &["b", "c"]);

    let mut seeded = RunRequest::new("nd", TC, "t");
    seeded.seed = Some(7);
    let resp = c.request(&Request::Run(seeded)).expect("run");
    assert_eq!(resp.exit, 0);
    assert_eq!(resp.mode, Some(ServeMode::Fresh));

    let mut all = RunRequest::new("nd", TC, "t");
    all.all = true;
    let resp = c.request(&Request::Run(all)).expect("run");
    assert_eq!(resp.exit, 0);
    assert_eq!(resp.complete, Some(true));
    // TC is deterministic: exactly one answer, equal to the canonical one.
    let models = resp.models.expect("models");
    assert_eq!(models.len(), 1);
    shutdown(addr, handle);
}
