//! Durability integration tests over the wire: cold-restart recovery,
//! checkpoint truncation, hand-torn WAL tails, schema negotiation, and
//! deterministic overload shedding.

use std::fs::{self, OpenOptions};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::thread;

use idlog_core::service::{render_answers, FactValue, Request, Response, RunRequest};
use idlog_core::{ErrorCode, Query};
use idlog_server::durability::{self, scan_wal};
use idlog_server::{Client, Server, ServerConfig, SyncPolicy, DEFAULT_WORKERS, RETRY_AFTER_MS};
use idlog_storage::{BackendKind, Database};

const TC: &str = "t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), e(Y, Z).";

fn temp_data_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "idlog-recovery-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        data_dir: Some(dir.to_path_buf()),
        sync: SyncPolicy::Always,
        ..ServerConfig::default()
    }
}

fn start_with(config: ServerConfig, workers: usize) -> (SocketAddr, thread::JoinHandle<()>) {
    let server = Server::bind_with("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = thread::spawn(move || server.run(workers).expect("serve"));
    (addr, handle)
}

fn client(addr: SocketAddr) -> Client {
    Client::connect(&addr.to_string()).expect("connect")
}

fn shutdown(addr: SocketAddr, handle: thread::JoinHandle<()>) {
    let resp = client(addr).request(&Request::Shutdown).expect("shutdown");
    assert_eq!(resp.exit, 0);
    handle.join().expect("server thread");
}

fn insert(c: &mut Client, tenant: &str, pred: &str, cols: &[&str]) -> Response {
    let resp = c
        .request(&Request::Insert {
            tenant: tenant.into(),
            pred: pred.into(),
            tuple: cols.iter().map(|s| FactValue::Sym(s.to_string())).collect(),
        })
        .expect("insert");
    assert_eq!(resp.exit, 0, "{:?}", resp.error);
    resp
}

fn retract(c: &mut Client, tenant: &str, pred: &str, cols: &[&str]) -> Response {
    let resp = c
        .request(&Request::Retract {
            tenant: tenant.into(),
            pred: pred.into(),
            tuple: cols.iter().map(|s| FactValue::Sym(s.to_string())).collect(),
        })
        .expect("retract");
    assert_eq!(resp.exit, 0, "{:?}", resp.error);
    resp
}

fn served_answers(c: &mut Client, tenant: &str) -> Vec<String> {
    let resp = c
        .request(&Request::Run(RunRequest::new(tenant, TC, "t")))
        .expect("run");
    assert_eq!(resp.exit, 0, "{:?}", resp.error);
    assert_eq!(resp.complete, Some(true));
    resp.answers.expect("answers")
}

/// What a fresh, single-threaded, direct [`idlog_core::Session`] renders
/// over the same edges — the reference the recovered server must match
/// byte for byte.
fn direct_answers(edges: &[(&str, &str)], backend: BackendKind) -> Vec<String> {
    let query = Query::parse(TC, "t").expect("parse");
    let mut db = Database::with_interner(query.interner().clone());
    for (a, b) in edges {
        db.insert_syms("e", &[a, b]).expect("insert");
    }
    let out = query
        .session(&db)
        .threads(1)
        .backend(backend)
        .run()
        .expect("run");
    render_answers(&out.relation, query.interner())
}

#[test]
fn a_cold_restart_recovers_every_acknowledged_write() {
    let dir = temp_data_dir("cold");
    let edges = [("a", "b"), ("b", "c"), ("c", "d")];
    {
        let (addr, handle) = start_with(durable_config(&dir), 4);
        let mut c = client(addr);
        for (x, y) in &edges {
            insert(&mut c, "acme", "e", &[x, y]);
        }
        // A retracted-then-reinserted edge exercises both record kinds.
        retract(&mut c, "acme", "e", &["c", "d"]);
        insert(&mut c, "acme", "e", &["c", "d"]);
        shutdown(addr, handle);
    }

    // Restart over the same directory: answers equal a fresh direct
    // Session on both storage backends.
    let (addr, handle) = start_with(durable_config(&dir), 4);
    let mut c = client(addr);
    let recovered = served_answers(&mut c, "acme");
    assert_eq!(recovered, direct_answers(&edges, BackendKind::Hash));
    assert_eq!(recovered, direct_answers(&edges, BackendKind::Columnar));
    let stats = c
        .request(&Request::Stats {
            tenant: "acme".into(),
        })
        .expect("stats");
    assert_eq!(stats.facts, Some(3));
    assert_eq!(stats.version, Some(5), "3 inserts + retract + reinsert");
    shutdown(addr, handle);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_hand_torn_wal_tail_is_truncated_to_the_acknowledged_prefix() {
    let dir = temp_data_dir("torn");
    {
        let (addr, handle) = start_with(durable_config(&dir), 2);
        let mut c = client(addr);
        insert(&mut c, "t", "e", &["a", "b"]);
        insert(&mut c, "t", "e", &["b", "c"]);
        shutdown(addr, handle);
    }

    // Simulate a crash mid-append: chop bytes off the WAL tail so the last
    // record's frame is incomplete, then append CRC-garbage as a second
    // scenario on the next loop pass.
    let wal = durability::tenant_dir(&dir, "t").join("wal.log");
    for damage in ["truncate", "garbage"] {
        match damage {
            "truncate" => {
                let len = fs::metadata(&wal).unwrap().len();
                OpenOptions::new()
                    .write(true)
                    .open(&wal)
                    .unwrap()
                    .set_len(len - 5)
                    .unwrap();
            }
            _ => {
                use std::io::Write;
                let mut f = OpenOptions::new().append(true).open(&wal).unwrap();
                f.write_all(&[0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05])
                    .unwrap();
            }
        }
        let (addr, handle) = start_with(durable_config(&dir), 2);
        let mut c = client(addr);
        let answers = served_answers(&mut c, "t");
        let expected = match damage {
            // The second insert's record was torn: only edge a→b remains.
            "truncate" => direct_answers(&[("a", "b")], BackendKind::Hash),
            // Garbage after intact records: nothing acknowledged is lost.
            _ => direct_answers(&[("a", "b")], BackendKind::Hash),
        };
        assert_eq!(answers, expected, "{damage}");
        // Recovery repaired the file in place: a rescan finds no tear.
        let (_, torn) = scan_wal(&wal).unwrap();
        assert!(torn.is_none(), "{damage}: {torn:?}");
        // New writes land cleanly on the repaired log.
        insert(&mut c, "t", "e", &["x", "y"]);
        retract(&mut c, "t", "e", &["x", "y"]);
        shutdown(addr, handle);
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoints_truncate_the_wal_without_losing_writes() {
    let dir = temp_data_dir("ckpt");
    let config = ServerConfig {
        checkpoint_every: 4,
        ..durable_config(&dir)
    };
    {
        let (addr, handle) = start_with(config.clone(), 2);
        let mut c = client(addr);
        for i in 0..10 {
            insert(
                &mut c,
                "t",
                "e",
                &[&format!("n{i}"), &format!("n{}", i + 1)],
            );
        }
        shutdown(addr, handle);
    }
    let tenant_dir = durability::tenant_dir(&dir, "t");
    assert!(tenant_dir.join("checkpoint.snap").exists());
    let (records, torn) = scan_wal(&tenant_dir.join("wal.log")).unwrap();
    assert!(torn.is_none());
    assert!(
        records.len() < 10,
        "WAL was never truncated: {}",
        records.len()
    );

    let (addr, handle) = start_with(config, 2);
    let mut c = client(addr);
    let stats = c
        .request(&Request::Stats { tenant: "t".into() })
        .expect("stats");
    assert_eq!(stats.facts, Some(10));
    assert_eq!(stats.version, Some(10), "checkpoint + tail replay");
    shutdown(addr, handle);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn schema_negotiation_over_the_wire() {
    let (addr, handle) = start_with(ServerConfig::default(), 2);
    let mut c = client(addr);
    let modern = c.request(&Request::Ping { schema: None }).expect("ping");
    assert_eq!(modern.schema.as_deref(), Some("idlog-service/2"));
    let legacy = c
        .request(&Request::Ping {
            schema: Some("idlog-service/1".into()),
        })
        .expect("ping");
    assert_eq!(legacy.exit, 0);
    assert_eq!(legacy.schema.as_deref(), Some("idlog-service/1"));
    let unknown = c
        .request(&Request::Ping {
            schema: Some("idlog-service/99".into()),
        })
        .expect("ping");
    assert_eq!(unknown.code, Some(ErrorCode::Protocol));
    assert!(
        unknown
            .error
            .as_deref()
            .unwrap_or("")
            .contains("idlog-service/2"),
        "refusal lists what the server speaks: {:?}",
        unknown.error
    );
    shutdown(addr, handle);
}

#[test]
fn overload_sheds_deterministically_with_a_retry_hint() {
    // One worker, queue depth one: connection A owns the worker, B fills
    // the queue, C must be shed.
    let config = ServerConfig {
        queue_depth: 1,
        ..ServerConfig::default()
    };
    let (addr, handle) = start_with(config, 1);
    let mut a = client(addr);
    // A round trip proves the single worker has picked A off the queue.
    let ping = a.request(&Request::Ping { schema: None }).expect("ping");
    assert_eq!(ping.exit, 0);

    // B parks in the queue (no worker free to serve it).
    let _b = client(addr);
    // Give the accept loop a beat to enqueue B before C arrives.
    thread::sleep(std::time::Duration::from_millis(50));

    // C is shed at admission: an `overloaded` error with the retry hint,
    // delivered without C sending a single byte.
    let mut c = client(addr);
    let resp = c
        .request(&Request::Ping { schema: None })
        .expect("shed line");
    assert_eq!(resp.code, Some(ErrorCode::Overloaded), "{resp:?}");
    assert_eq!(resp.exit, ErrorCode::Overloaded.exit_code());
    assert_eq!(resp.exit, 3, "overload maps to the limit exit class");
    assert_eq!(resp.retry_after_ms, Some(RETRY_AFTER_MS));

    // A keeps working through the overload: admission control sheds new
    // arrivals, never established sessions. (Shutdown also goes through A —
    // a fresh connection would itself be shed.)
    let again = a.request(&Request::Ping { schema: None }).expect("ping");
    assert_eq!(again.exit, 0);
    let bye = a.request(&Request::Shutdown).expect("shutdown");
    assert_eq!(bye.exit, 0);
    handle.join().expect("server thread");
}

#[test]
fn tenants_with_hostile_names_stay_inside_the_data_dir() {
    let dir = temp_data_dir("hostile");
    let (addr, handle) = start_with(durable_config(&dir), 2);
    let mut c = client(addr);
    let resp = c
        .request(&Request::Insert {
            tenant: "../escapee".into(),
            pred: "p".into(),
            tuple: vec![FactValue::Sym("x".into())],
        })
        .expect("insert");
    assert_eq!(resp.exit, 0, "{:?}", resp.error);
    shutdown(addr, handle);
    // The escaped name landed under tenants/, not beside the data dir.
    assert!(!dir.parent().unwrap().join("escapee").exists());
    let escaped = fs::read_dir(dir.join("tenants"))
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect::<Vec<_>>();
    assert_eq!(escaped, vec!["%2E%2E%2Fescapee".to_string()]);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn in_memory_servers_still_work_without_a_data_dir() {
    let (addr, handle) = start_with(ServerConfig::default(), DEFAULT_WORKERS);
    let mut c = client(addr);
    insert(&mut c, "t", "e", &["a", "b"]);
    let answers = served_answers(&mut c, "t");
    assert_eq!(answers, direct_answers(&[("a", "b")], BackendKind::Hash));
    shutdown(addr, handle);
}
