//! Kill-and-recover: injected faults at every durability site must leave
//! the recovered database byte-identical to a prefix of the acknowledged
//! writes, with served answers matching a fresh single-threaded Session.
//!
//! Requires `--features failpoints`. The failpoint registry is
//! process-global, so every test serializes on one mutex.
#![cfg(feature = "failpoints")]

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use idlog_common::failpoint;
use idlog_core::service::{render_answers, FactValue, Request, Response, RunRequest};
use idlog_core::{ErrorCode, Query};
use idlog_server::durability::{scan_wal, tenant_dir};
use idlog_server::{Client, Server, ServerConfig, SyncPolicy};
use idlog_storage::Database;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    failpoint::clear();
    guard
}

const TC: &str = "t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), e(Y, Z).";

fn temp_data_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("idlog-failpoint-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path, checkpoint_every: u64) -> ServerConfig {
    ServerConfig {
        data_dir: Some(dir.to_path_buf()),
        sync: SyncPolicy::Always,
        checkpoint_every,
        ..ServerConfig::default()
    }
}

struct Served {
    addr: std::net::SocketAddr,
    handle: std::thread::JoinHandle<()>,
}

fn start(config: ServerConfig, workers: usize) -> Served {
    let server = Server::bind_with("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run(workers).expect("serve"));
    Served { addr, handle }
}

impl Served {
    fn client(&self) -> Client {
        Client::connect(&self.addr.to_string()).expect("connect")
    }

    fn stop(self) {
        let resp = self.client().request(&Request::Shutdown).expect("shutdown");
        assert_eq!(resp.exit, 0);
        self.handle.join().expect("server thread");
    }
}

fn insert_edge(c: &mut Client, a: &str, b: &str) -> Response {
    c.request(&Request::Insert {
        tenant: "t".into(),
        pred: "e".into(),
        tuple: vec![FactValue::Sym(a.into()), FactValue::Sym(b.into())],
    })
    .expect("request")
}

fn served_tc(c: &mut Client) -> Vec<String> {
    let resp = c
        .request(&Request::Run(RunRequest::new("t", TC, "t")))
        .expect("run");
    assert_eq!(resp.exit, 0, "{:?}", resp.error);
    resp.answers.expect("answers")
}

/// The reference: a fresh single-threaded direct Session over `edges`.
fn direct_tc(edges: &[(&str, &str)]) -> Vec<String> {
    let query = Query::parse(TC, "t").expect("parse");
    let mut db = Database::with_interner(query.interner().clone());
    for (a, b) in edges {
        db.insert_syms("e", &[a, b]).expect("insert");
    }
    let out = query.session(&db).threads(1).run().expect("run");
    render_answers(&out.relation, query.interner())
}

/// `wal.append=err`: the write is refused cleanly (nothing acked, nothing
/// durable, memory rolled back) and service continues once the fault
/// clears.
#[test]
fn append_failure_is_unacked_and_rolled_back() {
    let _g = serial();
    let dir = temp_data_dir("append-err");
    let srv = start(config(&dir, 1024), 2);
    let mut c = srv.client();
    assert_eq!(insert_edge(&mut c, "a", "b").exit, 0);

    failpoint::configure("wal.append=err").unwrap();
    let failed = insert_edge(&mut c, "b", "c");
    assert_eq!(failed.code, Some(ErrorCode::Io), "{failed:?}");
    assert!(failed.error.unwrap().contains("not durable"));
    failpoint::clear();

    // Memory rolled back: the failed edge is absent from served answers…
    assert_eq!(served_tc(&mut c), direct_tc(&[("a", "b")]));
    // …and from disk.
    let (records, torn) = scan_wal(&tenant_dir(&dir, "t").join("wal.log")).unwrap();
    assert_eq!(records.len(), 1);
    assert!(torn.is_none());

    // The tenant is not quarantined; the retried write succeeds.
    assert_eq!(insert_edge(&mut c, "b", "c").exit, 0);
    srv.stop();

    let srv = start(config(&dir, 1024), 2);
    let mut c = srv.client();
    assert_eq!(
        served_tc(&mut c),
        direct_tc(&[("a", "b"), ("b", "c")]),
        "recovery equals the acknowledged prefix"
    );
    srv.stop();
    fs::remove_dir_all(&dir).unwrap();
}

/// `wal.fsync=err` under `--sync always`: same contract as a failed
/// append — unacked, undone, retryable.
#[test]
fn fsync_failure_is_unacked_and_rolled_back() {
    let _g = serial();
    let dir = temp_data_dir("fsync-err");
    let srv = start(config(&dir, 1024), 2);
    let mut c = srv.client();
    assert_eq!(insert_edge(&mut c, "a", "b").exit, 0);

    failpoint::configure("wal.fsync=err").unwrap();
    let failed = insert_edge(&mut c, "b", "c");
    assert_eq!(failed.code, Some(ErrorCode::Io), "{failed:?}");
    failpoint::clear();

    // The record that could not be fsynced was truncated back off the log:
    // disk and memory agree on exactly one acknowledged write.
    let (records, _) = scan_wal(&tenant_dir(&dir, "t").join("wal.log")).unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(served_tc(&mut c), direct_tc(&[("a", "b")]));
    srv.stop();
    fs::remove_dir_all(&dir).unwrap();
}

/// `wal.append=torn:5` — an injected crash mid-write. The tenant is
/// quarantined (disk state unknown), every subsequent request gets a clean
/// wire error, and a restart truncates the torn tail: the recovered
/// database is exactly the acknowledged prefix.
#[test]
fn torn_write_quarantines_until_restart_then_recovers_the_acked_prefix() {
    let _g = serial();
    let dir = temp_data_dir("torn");
    let srv = start(config(&dir, 1024), 2);
    let mut c = srv.client();
    assert_eq!(insert_edge(&mut c, "a", "b").exit, 0);
    assert_eq!(insert_edge(&mut c, "b", "c").exit, 0);

    failpoint::configure("wal.append=torn:5").unwrap();
    let crashed = insert_edge(&mut c, "c", "d");
    failpoint::clear();
    assert_ne!(crashed.exit, 0);
    assert!(
        crashed
            .error
            .as_deref()
            .unwrap_or("")
            .contains("quarantined"),
        "{crashed:?}"
    );

    // Quarantine holds for reads and writes until restart.
    let refused = insert_edge(&mut c, "x", "y");
    assert!(refused.error.unwrap().contains("quarantined"));
    let run = c
        .request(&Request::Run(RunRequest::new("t", TC, "t")))
        .expect("run");
    assert!(run.error.unwrap().contains("quarantined"));

    // The torn frame really is on disk.
    let wal = tenant_dir(&dir, "t").join("wal.log");
    let (_, torn) = scan_wal(&wal).unwrap();
    assert!(torn.is_some(), "expected a torn tail on disk");
    srv.stop();

    // Restart: recovery truncates the tear; the database equals the
    // acknowledged prefix and matches a fresh direct Session.
    let srv = start(config(&dir, 1024), 2);
    let mut c = srv.client();
    assert_eq!(served_tc(&mut c), direct_tc(&[("a", "b"), ("b", "c")]));
    let (records, torn) = scan_wal(&wal).unwrap();
    assert_eq!(records.len(), 2);
    assert!(torn.is_none(), "recovery repaired the file: {torn:?}");
    assert_eq!(insert_edge(&mut c, "c", "d").exit, 0, "writes resume");
    srv.stop();
    fs::remove_dir_all(&dir).unwrap();
}

/// `wal.append=err` + `wal.truncate=err` — the double fault: the append
/// failed *and* the truncate-back failed, so disk no longer matches
/// memory. The only safe answer is quarantine.
#[test]
fn a_failed_truncate_back_quarantines() {
    let _g = serial();
    let dir = temp_data_dir("double-fault");
    let srv = start(config(&dir, 1024), 2);
    let mut c = srv.client();
    assert_eq!(insert_edge(&mut c, "a", "b").exit, 0);

    failpoint::configure("wal.append=err;wal.truncate=err").unwrap();
    let crashed = insert_edge(&mut c, "b", "c");
    failpoint::clear();
    assert!(
        crashed
            .error
            .as_deref()
            .unwrap_or("")
            .contains("quarantined"),
        "{crashed:?}"
    );
    srv.stop();

    let srv = start(config(&dir, 1024), 2);
    let mut c = srv.client();
    assert_eq!(served_tc(&mut c), direct_tc(&[("a", "b")]));
    srv.stop();
    fs::remove_dir_all(&dir).unwrap();
}

/// `snapshot.write=err`: a failed checkpoint is benign — every write still
/// acks, the WAL keeps growing, and the next healthy checkpoint truncates
/// it.
#[test]
fn snapshot_failure_never_loses_an_acked_write() {
    let _g = serial();
    let dir = temp_data_dir("snap-err");
    let srv = start(config(&dir, 2), 2);
    let mut c = srv.client();

    failpoint::configure("snapshot.write=err").unwrap();
    for i in 0..4 {
        let resp = insert_edge(&mut c, &format!("n{i}"), &format!("n{}", i + 1));
        assert_eq!(resp.exit, 0, "checkpoint faults must not fail writes");
    }
    // No checkpoint landed; all four records are in the WAL.
    let wal = tenant_dir(&dir, "t").join("wal.log");
    let (records, _) = scan_wal(&wal).unwrap();
    assert_eq!(records.len(), 4);
    assert!(!tenant_dir(&dir, "t").join("checkpoint.snap").exists());
    failpoint::clear();

    // The next due write checkpoints successfully and truncates the log.
    let resp = insert_edge(&mut c, "n4", "n5");
    assert_eq!(resp.exit, 0);
    let (records, _) = scan_wal(&wal).unwrap();
    assert!(
        records.is_empty(),
        "WAL truncated after recovery-side checkpoint"
    );
    assert!(tenant_dir(&dir, "t").join("checkpoint.snap").exists());
    srv.stop();

    let srv = start(config(&dir, 1024), 2);
    let mut c = srv.client();
    assert_eq!(
        served_tc(&mut c),
        direct_tc(&[
            ("n0", "n1"),
            ("n1", "n2"),
            ("n2", "n3"),
            ("n3", "n4"),
            ("n4", "n5")
        ])
    );
    srv.stop();
    fs::remove_dir_all(&dir).unwrap();
}

/// Regression for the tenant-mutex poisoning fix: a panic inside the
/// request handler (injected at `storage.insert`, which fires during the
/// materialized evaluation that runs *under the tenant lock*) no longer
/// wedges the tenant. The panicking request answers with a clean internal
/// error, and the next access repairs the poisoned lock — on a durable
/// server, by re-running recovery, which restores exactly the acknowledged
/// writes.
#[test]
fn a_handler_panic_answers_cleanly_and_the_tenant_self_repairs() {
    let _g = serial();
    let dir = temp_data_dir("poison");
    let srv = start(config(&dir, 1024), 2);
    let mut c = srv.client();
    assert_eq!(insert_edge(&mut c, "a", "b").exit, 0);

    failpoint::configure("storage.insert=panic").unwrap();
    let crashed = c
        .request(&Request::Run(RunRequest::new("t", TC, "t")))
        .expect("run");
    failpoint::clear();
    assert_eq!(crashed.code, Some(ErrorCode::Internal), "{crashed:?}");
    assert!(crashed.error.unwrap().contains("panicked"));

    // Same connection, next request: lock_tenant repaired the poison by
    // reloading from the WAL. The acked write survives.
    assert_eq!(served_tc(&mut c), direct_tc(&[("a", "b")]));
    assert_eq!(insert_edge(&mut c, "b", "c").exit, 0, "writes resume");
    assert_eq!(served_tc(&mut c), direct_tc(&[("a", "b"), ("b", "c")]));
    srv.stop();
    fs::remove_dir_all(&dir).unwrap();
}

/// The same poisoning repair on an in-memory (no data-dir) server: derived
/// state is dropped, the database survives, service continues.
#[test]
fn poison_repair_works_without_a_data_dir() {
    let _g = serial();
    let srv = start(ServerConfig::default(), 2);
    let mut c = srv.client();
    assert_eq!(insert_edge(&mut c, "a", "b").exit, 0);
    assert_eq!(served_tc(&mut c), direct_tc(&[("a", "b")]));

    failpoint::configure("storage.insert=panic").unwrap();
    // The view from the earlier run is synced; an insert makes the next
    // run re-apply a delta under the tenant lock, where the panic fires.
    assert_eq!(insert_edge(&mut c, "b", "c").exit, 0);
    let crashed = c
        .request(&Request::Run(RunRequest::new("t", TC, "t")))
        .expect("run");
    failpoint::clear();
    assert_eq!(crashed.code, Some(ErrorCode::Internal), "{crashed:?}");

    // Repair dropped the derived state but kept the database: both acked
    // edges serve.
    assert_eq!(served_tc(&mut c), direct_tc(&[("a", "b"), ("b", "c")]));
    srv.stop();
}
