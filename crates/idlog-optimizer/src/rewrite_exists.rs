//! The paper's four-step optimization strategy (§4): replace input-predicate
//! literals whose existential arguments were identified by the adornment
//! algorithm with tid-0 ID-literals.
//!
//! 1. Identify existential arguments with the adornment algorithm and
//!    transform the program accordingly;
//! 2. eliminate identified existential arguments of derived predicates
//!    (both handled by [`crate::rewrite_forall::push_projections`]);
//! 3. for each input-predicate literal `p(Ȳ)` with existential arguments
//!    `X₁…X_n`, replace `p(Ȳ)` by the ID-literal `p[s](Ȳ, 0)` where `s`
//!    corresponds to the arguments in `Ȳ − {X₁…X_n}`;
//! 4. (the thesis's Algorithm D.1 — a further pass propagating the tid
//!    constant into join orders — is not reproducible from the paper and is
//!    omitted; the measurable effect of steps 1–3 is benchmarked instead.)
//!
//! Soundness is Theorem 4: every ∀-existential argument identified by the
//! adornment algorithm is also ∃-existential, so keeping *one tuple per
//! sub-relation* (tid 0) instead of *all* tuples preserves the query.
//!
//! As an independent machine-checked precondition, every ID-literal this
//! pass introduces must be a *choice-free occurrence* in its clause
//! (`idlog_core::choice_free_occurrence`, the taint analysis's base case):
//! a rewrite that fails the check — e.g. a repeated variable inside the
//! rewritten atom, which turns "some tuple with equal columns" into "THE
//! chosen tuple has equal columns" — is reverted literal by literal.

use idlog_common::SymbolId;
use idlog_core::choice_free_occurrence;
use idlog_parser::{Atom, Clause, Literal, Program, Term};

use crate::adornment::analyze;
use crate::rewrite_forall::push_projections;

/// Apply steps 1–3: returns the optimized IDLOG program.
///
/// ```
/// use idlog_common::Interner;
/// use idlog_optimizer::to_id_program;
///
/// let interner = Interner::new();
/// let program = idlog_parser::parse_program(
///     "p(X) :- q(X, Z), z(Z, Y), y(W).",
///     &interner,
/// ).unwrap();
/// let rewritten = to_id_program(&program, interner.intern("p"));
/// assert_eq!(
///     rewritten.display(&interner).to_string(),
///     "p(X) :- q(X, Z), z[1](Z, Y, 0), y[](W, 0).\n"
/// );
/// ```
pub fn to_id_program(program: &Program, output: SymbolId) -> Program {
    let projected = push_projections(program, output);
    let analysis = analyze(&projected, output);
    let inputs = projected.input_predicates();

    let clauses = projected
        .clauses
        .iter()
        .enumerate()
        .map(|(ci, clause)| {
            let mut rewritten_at: Vec<usize> = Vec::new();
            let body: Vec<Literal> = clause
                .body
                .iter()
                .enumerate()
                .map(|(li, lit)| match lit {
                    Literal::Pos(atom)
                        if !atom.pred.is_id_version() && inputs.contains(&atom.pred.base()) =>
                    {
                        let exist = analysis.occurrence_positions(ci, li);
                        if exist.is_empty() {
                            lit.clone()
                        } else {
                            let grouping: Vec<usize> = (0..atom.terms.len())
                                .filter(|p| !exist.contains(p))
                                .collect();
                            let mut terms = atom.terms.clone();
                            terms.push(Term::Int(0));
                            rewritten_at.push(li);
                            Literal::Pos(Atom::id_version(atom.pred.base(), grouping, terms))
                        }
                    }
                    other => other.clone(),
                })
                .collect();
            let mut candidate = Clause {
                head: clause.head.clone(),
                body,
                disjunctive: clause.disjunctive,
            };
            // Precondition check: revert any introduced ID-literal that is
            // not choice-free in the rewritten clause. (Reverting one
            // literal never changes another's verdict — the rewrite keeps
            // base terms intact, so variable counts are unaffected.)
            for li in rewritten_at {
                if !choice_free_occurrence(&candidate, li) {
                    candidate.body[li] = clause.body[li].clone();
                }
            }
            candidate
        })
        .collect();
    Program { clauses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_common::Interner;
    use idlog_parser::parse_program;

    fn rewrite(src: &str, output: &str) -> String {
        let i = Interner::new();
        let p = parse_program(src, &i).unwrap();
        let out = i.intern(output);
        to_id_program(&p, out).display(&i).to_string()
    }

    #[test]
    fn paper_section4_example() {
        // p(X) :- q(X,Z), z(Z,Y), y(W)
        // →   p(X) :- q(X,Z), z[1](Z,Y,0), y[](W,0).
        let printed = rewrite("p(X) :- q(X, Z), z(Z, Y), y(W).", "p");
        assert_eq!(printed, "p(X) :- q(X, Z), z[1](Z, Y, 0), y[](W, 0).\n");
    }

    #[test]
    fn paper_example8() {
        // Example 6's program after both rewrites:
        // q(X) :- a(X). a(X) :- p(X,Z), a(Z). a(X) :- p[1](X,Y,0).
        let printed = rewrite(
            "q(X) :- a(X, Y).
             a(X, Y) :- p(X, Z), a(Z, Y).
             a(X, Y) :- p(X, Y).",
            "q",
        );
        assert_eq!(
            printed,
            "q(X) :- a(X).\na(X) :- p(X, Z), a(Z).\na(X) :- p[1](X, Y, 0).\n"
        );
    }

    #[test]
    fn no_existential_args_is_identity() {
        let printed = rewrite("q(X, Y) :- p(X, Y).", "q");
        assert_eq!(printed, "q(X, Y) :- p(X, Y).\n");
    }

    #[test]
    fn join_variables_prevent_grouping_removal() {
        // Z joins q and z: only Y is existential in z's occurrence.
        let printed = rewrite("p(X) :- q(X, Z), z(Z, Y).", "p");
        assert!(printed.contains("z[1](Z, Y, 0)"), "{printed}");
        assert!(printed.contains("q(X, Z)"), "{printed}");
    }

    #[test]
    fn repeated_variable_rewrite_is_reverted() {
        // Both columns of z(Y, Y) are existential, but z[](Y, Y, 0) is NOT
        // choice-free (Y occurs twice): it asks whether THE chosen tuple has
        // equal columns, not whether SOME tuple does. The precondition check
        // must keep the original literal.
        let printed = rewrite("p(X) :- q(X), z(Y, Y).", "p");
        assert!(printed.contains("z(Y, Y)"), "{printed}");
        assert!(!printed.contains("z["), "{printed}");
        // A sibling literal with a genuine existential argument is still
        // rewritten: the revert is per-literal, not per-clause.
        let printed = rewrite("p(X) :- q(X), z(Y, Y), y(W).", "p");
        assert!(printed.contains("z(Y, Y)"), "{printed}");
        assert!(printed.contains("y[](W, 0)"), "{printed}");
    }

    #[test]
    fn result_validates_as_idlog() {
        use idlog_core::ValidatedProgram;
        use std::sync::Arc;
        let i = Arc::new(Interner::new());
        let p = parse_program("p(X) :- q(X, Z), z(Z, Y), y(W).", &i).unwrap();
        let out = i.intern("p");
        let rewritten = to_id_program(&p, out);
        ValidatedProgram::new(rewritten, i).unwrap();
    }
}
