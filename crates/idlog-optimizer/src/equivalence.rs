//! Bounded q-equivalence checking.
//!
//! Two programs are *q-equivalent* when they define the same query `q`
//! (\[She90b\] §3.1) — for non-deterministic programs, the same *set* of
//! answers on every input database. Exact checking is undecidable
//! (Theorem 3), so we check on a caller-supplied or randomly generated
//! family of small databases: the paper's own counterexamples (Example 7)
//! are witnessed by databases with ≤ 2 constants, so small instances carry
//! real discriminating power.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use idlog_common::Interner;
use idlog_core::{
    analyze_taint, analyze_termination, enumerate_with_options, evaluate_with_options,
    CanonicalOracle, CoreResult, EnumBudget, EvalOptions, Limits, ValidatedProgram,
};
use idlog_parser::Program;
use idlog_storage::Database;

/// Outcome of a bounded equivalence check.
#[derive(Debug, Clone)]
pub struct EquivalenceReport {
    /// True when every checked database gave identical answer sets.
    pub equivalent: bool,
    /// Index of the first database that distinguished the programs.
    pub counterexample: Option<usize>,
    /// Number of databases checked (all of them when equivalent).
    pub databases_checked: usize,
}

/// Compare the answer sets of two programs for `output` on each database.
///
/// Both programs must share `interner` (and so must the databases).
pub fn q_equivalent_on(
    p1: &Program,
    p2: &Program,
    interner: &Arc<Interner>,
    dbs: &[Database],
    output: &str,
    budget: &EnumBudget,
) -> CoreResult<EquivalenceReport> {
    let v1 = ValidatedProgram::new(p1.clone(), Arc::clone(interner))?;
    let v2 = ValidatedProgram::new(p2.clone(), Arc::clone(interner))?;
    // Determinism fast path: when the taint analysis certifies `output` in
    // BOTH programs, each answer set is a singleton, so one canonical
    // evaluation per side replaces the full ID-function enumeration.
    let both_certified = interner.get(output).is_some_and(|out| {
        analyze_taint(v1.ast()).deterministic(out) && analyze_taint(v2.ast()).deterministic(out)
    });
    // Termination of the probed programs is undecidable (Theorem 3), and
    // this routine runs inside lints and optimizer suggestions that must
    // never hang. Three cases, decided by the static termination cert:
    // a growth witness on either side means the probe would only ever burn
    // its ceilings, so skip probing entirely (no verdict); both sides
    // certified bounded means every fixpoint finishes on its own, so the
    // probes run without governor ceilings (the certified per-database
    // round bound stays installed as a backstop against a buggy cert);
    // otherwise fall back to the legacy blunt ceilings.
    let t1 = analyze_termination(v1.ast());
    let t2 = analyze_termination(v2.ast());
    if t1.growth_witness().is_some() || t2.growth_witness().is_some() {
        return Err(idlog_core::CoreError::LimitExceeded {
            limit: idlog_core::LimitKind::Rounds,
        });
    }
    let both_bounded = t1.bounded() && t2.bounded();
    let legacy_limits = Limits {
        max_rounds: Some(10_000),
        max_tuples: Some(1_000_000),
        ..Limits::none()
    };
    for (i, db) in dbs.iter().enumerate() {
        let probe_limits = if both_bounded {
            let bound = t1
                .round_bound(db)
                .into_iter()
                .chain(t2.round_bound(db))
                .max();
            bound.map_or_else(Limits::none, |b| Limits::none().tighten_rounds(b))
        } else {
            legacy_limits
        };
        let opts = EvalOptions::serial().budget(*budget).limits(probe_limits);
        let differs = if both_certified {
            let r1 = evaluate_with_options(&v1, db, &mut CanonicalOracle, &opts)?;
            let r2 = evaluate_with_options(&v2, db, &mut CanonicalOracle, &opts)?;
            match (r1.relation(output), r2.relation(output)) {
                (Some(a), Some(b)) => !a.set_eq(b),
                (a, b) => {
                    a.map(|r| !r.is_empty()).unwrap_or(false)
                        || b.map(|r| !r.is_empty()).unwrap_or(false)
                }
            }
        } else {
            let a1 = enumerate_with_options(&v1, db, output, &opts)?;
            let a2 = enumerate_with_options(&v2, db, output, &opts)?;
            // A walk cut short by the probe ceilings (as opposed to the
            // caller's model/answer budget) compared two truncated sets;
            // no verdict can be drawn from that, so surface the trip.
            for set in [&a1, &a2] {
                if let Some(idlog_core::StopReason::Limit(kind)) = set.stopped() {
                    if !matches!(
                        kind,
                        idlog_core::LimitKind::Models | idlog_core::LimitKind::Answers
                    ) {
                        return Err(idlog_core::CoreError::LimitExceeded { limit: kind });
                    }
                }
            }
            !a1.same_answers(&a2, interner)
        };
        if differs {
            return Ok(EquivalenceReport {
                equivalent: false,
                counterexample: Some(i),
                databases_checked: i + 1,
            });
        }
    }
    Ok(EquivalenceReport {
        equivalent: true,
        counterexample: None,
        databases_checked: dbs.len(),
    })
}

/// Generate `count` random databases over the given relational schema
/// (`(name, arity)` pairs) and symbolic domain. Each possible tuple is
/// included independently with probability ½ — dense enough to exercise
/// joins, sparse enough to leave groups of differing sizes.
pub fn random_databases(
    interner: &Arc<Interner>,
    schema: &[(&str, usize)],
    domain: &[&str],
    count: usize,
    seed: u64,
) -> Vec<Database> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut db = Database::with_interner(Arc::clone(interner));
            for &(name, arity) in schema {
                // Ensure the relation exists even when empty.
                db.declare(name, idlog_common::RelType::elementary(arity))
                    .expect("fresh declaration");
                for combo in cartesian(domain, arity) {
                    if rng.gen_bool(0.5) {
                        let cols: Vec<&str> = combo.clone();
                        db.insert_syms(name, &cols).expect("sorted schema");
                    }
                }
            }
            db
        })
        .collect()
}

/// All `arity`-length combinations over `domain` (with repetition).
fn cartesian<'a>(domain: &'a [&'a str], arity: usize) -> Vec<Vec<&'a str>> {
    let mut out: Vec<Vec<&str>> = vec![vec![]];
    for _ in 0..arity {
        out = out
            .into_iter()
            .flat_map(|prefix| {
                domain.iter().map(move |&d| {
                    let mut v = prefix.clone();
                    v.push(d);
                    v
                })
            })
            .collect();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_parser::parse_program;

    #[test]
    fn identical_programs_are_equivalent() {
        let i = Arc::new(Interner::new());
        let p = parse_program("q(X) :- e(X, Y).", &i).unwrap();
        let dbs = random_databases(&i, &[("e", 2)], &["a", "b", "c"], 8, 7);
        let r = q_equivalent_on(&p, &p, &i, &dbs, "q", &EnumBudget::default()).unwrap();
        assert!(r.equivalent);
        assert_eq!(r.databases_checked, 8);
    }

    #[test]
    fn different_programs_are_distinguished() {
        let i = Arc::new(Interner::new());
        let p1 = parse_program("q(X) :- e(X, Y).", &i).unwrap();
        let p2 = parse_program("q(X) :- e(Y, X).", &i).unwrap();
        let dbs = random_databases(&i, &[("e", 2)], &["a", "b"], 16, 3);
        let r = q_equivalent_on(&p1, &p2, &i, &dbs, "q", &EnumBudget::default()).unwrap();
        assert!(!r.equivalent);
        assert!(r.counterexample.is_some());
    }

    #[test]
    fn paper_example7_forall_but_not_exists() {
        // P: q1 :- x(c). q2 :- x(a). x(Y) :- p(Y). p(b) :- y(X). p(c) :- y(X).
        // P2 replaces p(Y) with p[](Y, 0). The paper: P and P2 are NOT
        // q1-equivalent (P2's q1 may be FALSE on nonempty y), but they ARE
        // q2-equivalent (both always FALSE).
        let i = Arc::new(Interner::new());
        let p = parse_program(
            "q1 :- x(c).
             q2 :- x(a).
             x(Y) :- p(Y).
             p(b) :- y(X).
             p(c) :- y(X).",
            &i,
        )
        .unwrap();
        let p2 = parse_program(
            "q1 :- x(c).
             q2 :- x(a).
             x(Y) :- p[](Y, 0).
             p(b) :- y(X).
             p(c) :- y(X).",
            &i,
        )
        .unwrap();
        let dbs = random_databases(&i, &[("y", 1)], &["d1", "d2"], 12, 11);
        let budget = EnumBudget::default();
        let r1 = q_equivalent_on(&p, &p2, &i, &dbs, "q1", &budget).unwrap();
        assert!(
            !r1.equivalent,
            "the argument is NOT ∃-existential w.r.t. q1"
        );
        let r2 = q_equivalent_on(&p, &p2, &i, &dbs, "q2", &budget).unwrap();
        assert!(r2.equivalent, "the argument IS ∃-existential w.r.t. q2");
    }

    #[test]
    fn paper_example7_forall_side() {
        // P1 applies Definition 1's transformation: p(Y) in clause [3] is
        // replaced by p'(Y'), with the new clause p'(Y') :- p(Y). Under the
        // paper's domain-closure axiom the unbound Y' ranges over the whole
        // domain, which we encode with an explicit dom predicate:
        //   p'(Yp) :- dom(Yp), p(Y).
        // Paper: P is q1-equivalent to P1 (the argument IS ∀-existential
        // w.r.t. q1), but NOT q2-equivalent (q2 under P1 returns TRUE on
        // nonempty inputs).
        let i = Arc::new(Interner::new());
        let p = parse_program(
            "q1 :- x(c).
             q2 :- x(a).
             x(Y) :- p(Y).
             p(b) :- y(X).
             p(c) :- y(X).",
            &i,
        )
        .unwrap();
        let p1 = parse_program(
            "q1 :- x(c).
             q2 :- x(a).
             x(Y) :- pprime(Y).
             pprime(Yp) :- dom(Yp), p(Y).
             p(b) :- y(X).
             p(c) :- y(X).",
            &i,
        )
        .unwrap();
        let mut dbs = random_databases(&i, &[("y", 1)], &["d1", "d2"], 12, 5);
        for db in &mut dbs {
            for d in ["a", "b", "c", "d1", "d2"] {
                db.insert_syms("dom", &[d]).unwrap();
            }
        }
        let budget = EnumBudget::default();
        let r1 = q_equivalent_on(&p, &p1, &i, &dbs, "q1", &budget).unwrap();
        assert!(r1.equivalent, "the argument IS ∀-existential w.r.t. q1");
        let r2 = q_equivalent_on(&p, &p1, &i, &dbs, "q2", &budget).unwrap();
        assert!(
            !r2.equivalent,
            "the argument is NOT ∀-existential w.r.t. q2"
        );
    }

    #[test]
    fn certified_programs_compare_without_enumeration() {
        // Full-grouping ID-literals with constant tids: both programs are
        // certified deterministic, so the check runs on single canonical
        // evaluations. The verdicts must still be right in both directions.
        let i = Arc::new(Interner::new());
        let p1 = parse_program("q(D) :- e[1](D, 0).", &i).unwrap();
        let p2 = parse_program("q(D) :- e[1](D, T), T = 0.", &i).unwrap();
        let p3 = parse_program("q(D) :- e[1](D, 1).", &i).unwrap();
        let dbs = random_databases(&i, &[("e", 1)], &["a", "b", "c"], 8, 21);
        let budget = EnumBudget::default();
        let r = q_equivalent_on(&p1, &p2, &i, &dbs, "q", &budget).unwrap();
        assert!(r.equivalent, "tid constant vs tid builtin");
        // Full grouping means every group is a singleton, so tid 1 never
        // exists and p3 is empty everywhere — distinguishable.
        let r = q_equivalent_on(&p1, &p3, &i, &dbs, "q", &budget).unwrap();
        assert!(!r.equivalent, "tid 0 vs unreachable tid 1");
    }

    #[test]
    fn diverging_candidate_is_skipped_without_probing() {
        // A growth witness on either side means no probe can return a
        // verdict — the check reports the would-be limit trip immediately
        // instead of burning 10k rounds.
        let i = Arc::new(Interner::new());
        let p1 = parse_program("q(X) :- e(X, Y).", &i).unwrap();
        let p2 =
            parse_program("q(M) :- e(X, Y), q(N), plus(N, 1, M). q(0) :- e(X, Y).", &i).unwrap();
        let dbs = random_databases(&i, &[("e", 2)], &["a", "b"], 4, 9);
        let err = q_equivalent_on(&p1, &p2, &i, &dbs, "q", &EnumBudget::default()).unwrap_err();
        assert!(matches!(
            err,
            idlog_core::CoreError::LimitExceeded {
                limit: idlog_core::LimitKind::Rounds
            }
        ));
    }

    #[test]
    fn certified_bounded_programs_probe_without_blunt_ceilings() {
        // Both sides certify bounded: verdicts must match the legacy path
        // (covered by the other tests) while running under the certified
        // round bound only.
        let i = Arc::new(Interner::new());
        let p1 = parse_program("q(X) :- e(X, Y).", &i).unwrap();
        let p2 = parse_program("q(X) :- e(X, Y), e(X, Z).", &i).unwrap();
        assert!(idlog_core::analyze_termination(&p1).bounded());
        assert!(idlog_core::analyze_termination(&p2).bounded());
        let dbs = random_databases(&i, &[("e", 2)], &["a", "b", "c"], 8, 13);
        let r = q_equivalent_on(&p1, &p2, &i, &dbs, "q", &EnumBudget::default()).unwrap();
        assert!(r.equivalent, "projections of the same join key agree");
    }

    #[test]
    fn cartesian_sizes() {
        assert_eq!(cartesian(&["a", "b"], 2).len(), 4);
        assert_eq!(cartesian(&["a", "b", "c"], 1).len(), 3);
        assert_eq!(cartesian(&["a"], 0), vec![Vec::<&str>::new()]);
    }
}
