//! Projection pushing: eliminate ∀-existential arguments (Definition 1).
//!
//! Every predicate-level existential position of a non-input, non-output
//! predicate is dropped from all occurrences; elimination can expose new
//! existential positions, so the rewrite iterates analysis + projection to a
//! fixpoint. Predicate names are kept (arities shrink consistently); the
//! paper writes `a'` for the projected predicate, we keep `a`.

use idlog_common::{FxHashMap, SymbolId};
use idlog_parser::{Atom, Clause, HeadAtom, Literal, Program};

use crate::adornment::analyze;

/// Drop the given positions (ascending) from an atom's terms.
fn project_atom(atom: &Atom, drop: &[usize]) -> Atom {
    let terms = atom
        .terms
        .iter()
        .enumerate()
        .filter(|(i, _)| !drop.contains(i))
        .map(|(_, t)| t.clone())
        .collect();
    Atom {
        pred: atom.pred.clone(),
        terms,
    }
}

/// One round: eliminate all currently-identified predicate-level existential
/// positions. Returns `None` when nothing was eliminable.
fn eliminate_once(program: &Program, output: SymbolId) -> Option<Program> {
    let analysis = analyze(program, output);
    let inputs = program.input_predicates();

    // Collect per-predicate drop lists (non-input, non-output, non-empty).
    let mut drops: FxHashMap<SymbolId, Vec<usize>> = FxHashMap::default();
    let mut preds: Vec<SymbolId> = program.head_predicates().into_iter().collect();
    preds.extend(program.body_predicates());
    preds.sort_unstable();
    preds.dedup();
    for p in preds {
        if p == output || inputs.contains(&p) {
            continue;
        }
        let positions = analysis.pred_positions(p);
        if !positions.is_empty() {
            drops.insert(p, positions);
        }
    }
    if drops.is_empty() {
        return None;
    }

    let clauses = program
        .clauses
        .iter()
        .map(|clause| {
            let head = clause
                .head
                .iter()
                .map(|h| HeadAtom {
                    negated: h.negated,
                    atom: match drops.get(&h.atom.pred.base()) {
                        Some(d) => project_atom(&h.atom, d),
                        None => h.atom.clone(),
                    },
                })
                .collect();
            let body = clause
                .body
                .iter()
                .map(|lit| match lit {
                    Literal::Pos(a) => Literal::Pos(match drops.get(&a.pred.base()) {
                        Some(d) if !a.pred.is_id_version() => project_atom(a, d),
                        _ => a.clone(),
                    }),
                    other => other.clone(),
                })
                .collect();
            Clause {
                head,
                body,
                disjunctive: clause.disjunctive,
            }
        })
        .collect();
    Some(Program { clauses })
}

/// Eliminate ∀-existential arguments to a fixpoint (paper §4, steps 1–2).
pub fn push_projections(program: &Program, output: SymbolId) -> Program {
    let mut current = program.clone();
    while let Some(next) = eliminate_once(&current, output) {
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_common::Interner;
    use idlog_parser::parse_program;

    fn rewrite(src: &str, output: &str) -> (String, Interner) {
        let i = Interner::new();
        let p = parse_program(src, &i).unwrap();
        let out = i.intern(output);
        let rewritten = push_projections(&p, out);
        let printed = rewritten.display(&i).to_string();
        (printed, i)
    }

    #[test]
    fn paper_example6_rewrite() {
        // Expected (paper): q(X) :- a(X). a(X) :- p(X,Z), a(Z). a(X) :- p(X,Y).
        let (printed, _) = rewrite(
            "q(X) :- a(X, Y).
             a(X, Y) :- p(X, Z), a(Z, Y).
             a(X, Y) :- p(X, Y).",
            "q",
        );
        assert_eq!(
            printed,
            "q(X) :- a(X).\na(X) :- p(X, Z), a(Z).\na(X) :- p(X, Y).\n"
        );
    }

    #[test]
    fn nothing_to_eliminate_is_identity() {
        let src = "q(X, Y) :- p(X, Y).";
        let (printed, _) = rewrite(src, "q");
        assert_eq!(printed, "q(X, Y) :- p(X, Y).\n");
    }

    #[test]
    fn input_predicates_keep_their_arity() {
        // y(W)'s W is existential but y is an input: arity unchanged.
        let (printed, _) = rewrite("p(X) :- q(X, Z), z(Z, Y), y(W).", "p");
        assert!(printed.contains("y(W)"), "{printed}");
        assert!(printed.contains("z(Z, Y)"), "{printed}");
    }

    #[test]
    fn cascading_elimination() {
        // Dropping mid's 2nd arg makes bot's 2nd arg existential in turn...
        // bot is an input here, so add an IDB layer.
        let (printed, _) = rewrite(
            "q(X) :- mid(X, Y).
             mid(X, Y) :- low(X, Y).
             low(X, Y) :- base(X, Y).",
            "q",
        );
        assert_eq!(
            printed,
            "q(X) :- mid(X).\nmid(X) :- low(X).\nlow(X) :- base(X, Y).\n"
        );
    }
}
