//! Redundant-clause detection (bounded).
//!
//! The paper notes after Example 8 that "the second clause of this program
//! can actually be discarded without affecting the query q … but this is
//! beyond the scope of this paper" (the observation is from \[RBK88\]).
//! Exact redundancy is undecidable, so this module offers the bounded
//! counterpart used throughout the optimizer: a clause is *suggested* as
//! redundant when dropping it leaves the query's answer set unchanged on a
//! family of randomized test databases.
//!
//! The result is a **suggestion**, sound only up to the tested databases;
//! callers decide whether to apply it. (For the paper's Example 8 instance
//! the suggestion happens to be exactly right.)

use std::sync::Arc;

use idlog_common::Interner;
use idlog_core::{CoreResult, EnumBudget};
use idlog_parser::Program;
use idlog_storage::Database;

use crate::equivalence::q_equivalent_on;

/// Report for one clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedundancyReport {
    /// Indices of clauses whose removal preserved the answers on every test
    /// database (each tested in isolation).
    pub removable: Vec<usize>,
    /// Number of test databases used.
    pub databases_checked: usize,
}

/// Suggest clauses of `program` that look redundant w.r.t. `output` on the
/// given test databases. Each candidate is removed *individually*; the
/// suggestions are not guaranteed to be jointly removable.
pub fn suggest_redundant_clauses(
    program: &Program,
    interner: &Arc<Interner>,
    dbs: &[Database],
    output: &str,
    budget: &EnumBudget,
) -> CoreResult<RedundancyReport> {
    let mut removable = Vec::new();
    for ci in 0..program.clauses.len() {
        // Never suggest removing the only clause defining the output.
        let head = program.clauses[ci].head[0].atom.pred.base();
        let is_output = interner.get(output) == Some(head);
        let siblings = program
            .clauses
            .iter()
            .enumerate()
            .filter(|(k, c)| *k != ci && c.head[0].atom.pred.base() == head)
            .count();
        if is_output && siblings == 0 {
            continue;
        }
        let mut pruned = program.clone();
        pruned.clauses.remove(ci);
        let rep = q_equivalent_on(program, &pruned, interner, dbs, output, budget)?;
        if rep.equivalent {
            removable.push(ci);
        }
    }
    Ok(RedundancyReport {
        removable,
        databases_checked: dbs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_databases;
    use crate::rewrite_exists::to_id_program;

    #[test]
    fn example8_second_clause_is_suggested() {
        // Example 6's program after both rewrites (Example 8):
        //   q(X) :- a(X).
        //   a(X) :- p(X, Z), a(Z).      <- the paper says this can go
        //   a(X) :- p[1](X, Y, 0).
        let interner = Arc::new(Interner::new());
        let original = idlog_core::parse_program(
            "q(X) :- a(X, Y).
             a(X, Y) :- p(X, Z), a(Z, Y).
             a(X, Y) :- p(X, Y).",
            &interner,
        )
        .unwrap();
        let rewritten = to_id_program(&original, interner.intern("q"));
        let dbs = random_databases(&interner, &[("p", 2)], &["a", "b", "c"], 10, 77);
        let rep =
            suggest_redundant_clauses(&rewritten, &interner, &dbs, "q", &EnumBudget::default())
                .unwrap();
        assert!(
            rep.removable.contains(&1),
            "the recursive a-clause must be suggested: {rep:?}"
        );
        // And clause 0 / clause 2 are load-bearing.
        assert!(!rep.removable.contains(&0));
        assert!(!rep.removable.contains(&2));
    }

    #[test]
    fn needed_clauses_are_not_suggested() {
        let interner = Arc::new(Interner::new());
        let program = idlog_core::parse_program(
            "tc(X, Y) :- e(X, Y).
             tc(X, Y) :- e(X, Z), tc(Z, Y).",
            &interner,
        )
        .unwrap();
        let dbs = random_databases(&interner, &[("e", 2)], &["a", "b", "c"], 10, 5);
        let rep =
            suggest_redundant_clauses(&program, &interner, &dbs, "tc", &EnumBudget::default())
                .unwrap();
        assert!(rep.removable.is_empty(), "{rep:?}");
    }

    #[test]
    fn duplicate_clause_is_suggested() {
        let interner = Arc::new(Interner::new());
        let program = idlog_core::parse_program(
            "q(X) :- e(X, Y).
             q(X) :- e(X, Z).",
            &interner,
        )
        .unwrap();
        let dbs = random_databases(&interner, &[("e", 2)], &["a", "b"], 6, 9);
        let rep = suggest_redundant_clauses(&program, &interner, &dbs, "q", &EnumBudget::default())
            .unwrap();
        // Either copy can go (individually).
        assert_eq!(rep.removable, vec![0, 1]);
    }

    #[test]
    fn sole_output_clause_is_protected() {
        let interner = Arc::new(Interner::new());
        let program = idlog_core::parse_program("q(X) :- e(X, Y).", &interner).unwrap();
        // Even with empty test databases (vacuous equivalence), the sole
        // defining clause is never suggested.
        let dbs = random_databases(&interner, &[("e", 2)], &["a"], 2, 1);
        let rep = suggest_redundant_clauses(&program, &interner, &dbs, "q", &EnumBudget::default())
            .unwrap();
        assert!(rep.removable.is_empty());
    }
}
