//! The magic-sets transformation as a standalone `Program → Program`
//! rewrite, plus its empirical soundness harness.
//!
//! The analysis and rewrite live in [`idlog_core::relevance`] (the `Query`
//! API caches them per query, mirroring the taint and termination certs);
//! this module exposes the rewrite at the optimizer's program level — the
//! same shape as [`crate::push_projections`] and [`crate::to_id_program`] —
//! and hosts the certified-equivalence tests that validate it against the
//! untransformed program on randomized databases, across thread counts and
//! storage backends.
//!
//! The rewrite either returns the transformed program or the
//! [`RelevanceRefusal`] witness explaining why goal-directed evaluation is
//! not semantics-preserving here (floundering under the left-to-right SIPS,
//! or a choice site that magic guards must not split).

use std::sync::Arc;

use idlog_common::Interner;
use idlog_core::relevance::{
    analyze_relevance, magic_program, RelevanceAnalysis, RelevanceRefusal,
};
use idlog_parser::Program;

/// Rewrite `program` with magic sets for a query on `output`, or return the
/// refusal witness when the relevance analysis cannot certify the rewrite.
///
/// The returned program computes an `output` relation identical to the
/// original on every database (and every tid oracle — choice sites are
/// refused), while deriving only facts relevant to the query constants.
pub fn magic_rewrite(
    program: &Program,
    output: &str,
    interner: &Arc<Interner>,
) -> Result<Program, RelevanceRefusal> {
    let root = interner.intern(output);
    let analysis = analyze_relevance(program, root);
    if let Some(refusal) = analysis.refusal() {
        return Err(refusal.clone());
    }
    Ok(magic_program(program, root, interner, &analysis)
        .expect("certified analysis always yields a rewrite"))
}

/// The relevance analysis for a query on `output`, at the program level
/// (the `Query` API caches the same analysis per query).
pub fn relevance_for(
    program: &Program,
    output: &str,
    interner: &Arc<Interner>,
) -> RelevanceAnalysis {
    analyze_relevance(program, interner.intern(output))
}

#[cfg(test)]
mod tests {
    use super::*;

    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    use idlog_core::{EnumBudget, EvalStats, Query, Strategy, ValidatedProgram};
    use idlog_storage::BackendKind;

    use crate::equivalence::{q_equivalent_on, random_databases};

    const ANCESTOR: &str = "
        ancestor(X, Y) :- parent(X, Y).
        ancestor(X, Z) :- ancestor(X, Y), parent(Y, Z).
        query(Y) :- ancestor(ann, Y).
    ";

    #[test]
    fn rewrite_is_q_equivalent_on_random_databases() {
        let i = Arc::new(Interner::new());
        let p = idlog_parser::parse_program(ANCESTOR, &i).unwrap();
        let magic = magic_rewrite(&p, "query", &i).expect("certified");
        let mut dbs = random_databases(&i, &[("parent", 2)], &["x", "y", "z"], 12, 17);
        for db in &mut dbs {
            db.insert_syms("parent", &["ann", "x"]).unwrap();
        }
        let r = q_equivalent_on(&p, &magic, &i, &dbs, "query", &EnumBudget::default()).unwrap();
        assert!(r.equivalent, "counterexample at {:?}", r.counterexample);
        assert_eq!(r.databases_checked, 12);
    }

    #[test]
    fn refusal_carries_the_witness_walk() {
        let i = Arc::new(Interner::new());
        let p = idlog_parser::parse_program(
            "picked(X, Y) :- pref[2](X, Y, 0).
             q(Y) :- picked(a, Y).",
            &i,
        )
        .unwrap();
        let refusal = magic_rewrite(&p, "q", &i).unwrap_err();
        assert!(!refusal.walk.is_empty());
        assert!(refusal.render(&i).contains("choice site"));
    }

    /// Direct and magic evaluation of `src` must produce byte-identical
    /// answers and identical stats at 1/2/8 threads on both backends.
    fn assert_magic_agrees(src: &str, output: &str, db: &idlog_storage::Database, q: &Query) {
        let mut stats_seen: Option<(EvalStats, EvalStats)> = None;
        for backend in [BackendKind::Hash, BackendKind::Columnar] {
            for threads in [1usize, 2, 8] {
                let direct = q
                    .session(db)
                    .backend(backend)
                    .threads(threads)
                    .run()
                    .unwrap_or_else(|e| panic!("direct failed on {src}: {e}"));
                let magic = q
                    .session(db)
                    .backend(backend)
                    .threads(threads)
                    .strategy(Strategy::Magic)
                    .run()
                    .unwrap_or_else(|e| panic!("magic failed on {src}: {e}"));
                assert_eq!(
                    direct.relation.sorted_canonical(q.interner()),
                    magic.relation.sorted_canonical(q.interner()),
                    "answers diverge for {output} in {src}"
                );
                // Stats are part of the determinism contract: identical
                // across thread counts and backends, pruned ≥ 0 by type.
                match &stats_seen {
                    None => stats_seen = Some((direct.stats, magic.stats)),
                    Some((d, m)) => {
                        assert_eq!(*d, direct.stats, "direct stats drift in {src}");
                        assert_eq!(*m, magic.stats, "magic stats drift in {src}");
                    }
                }
            }
        }
    }

    #[test]
    fn ancestor_point_query_agrees_across_threads_and_backends() {
        let q = Query::parse(ANCESTOR, "query").unwrap();
        let mut db = q.new_database();
        for (x, y) in [
            ("ann", "bob"),
            ("bob", "cal"),
            ("cal", "dee"),
            ("eve", "fay"),
            ("fay", "gus"),
        ] {
            db.insert_syms("parent", &[x, y]).unwrap();
        }
        assert_magic_agrees(ANCESTOR, "query", &db, &q);
        let magic = q.session(&db).strategy(Strategy::Magic).run().unwrap();
        let direct = q.session(&db).run().unwrap();
        assert!(magic.stats.inserted < direct.stats.inserted);
        assert!(magic.stats.tuples_pruned > 0);
    }

    /// A random stratified, choice-free, negation-free program: layered
    /// IDB predicates over a binary EDB `e`, closed by a point query
    /// `q(Y) :- pK(c0, Y).` — always certified, so magic must agree.
    fn random_point_program(rng: &mut SmallRng) -> String {
        let layers = rng.gen_range(2..5usize);
        let mut src = String::from("p0(X, Y) :- e(X, Y).\n");
        for k in 1..layers {
            // Each layer joins a lower layer with the EDB, sometimes
            // linearly recursive in itself (left-linear keeps it safe).
            let lower = rng.gen_range(0..k);
            src.push_str(&format!("p{k}(X, Y) :- p{lower}(X, Y).\n"));
            if rng.gen_bool(0.7) {
                src.push_str(&format!("p{k}(X, Z) :- p{k}(X, Y), e(Y, Z).\n"));
            } else {
                src.push_str(&format!("p{k}(X, Z) :- p{lower}(X, Y), e(Y, Z).\n"));
            }
            // Occasionally a constant in a body position, to vary the
            // adornments the walk discovers.
            if rng.gen_bool(0.3) {
                src.push_str(&format!("p{k}(X, Y) :- p{lower}(X, c1), e(X, Y).\n"));
            }
        }
        src.push_str(&format!("q(Y) :- p{}(c0, Y).\n", layers - 1));
        src
    }

    #[test]
    fn random_programs_magic_equals_direct_everywhere() {
        let mut rng = SmallRng::seed_from_u64(0xD06_F00D);
        for case in 0..12 {
            let src = random_point_program(&mut rng);
            let q = Query::parse(&src, "q").expect("generated program is valid");
            assert!(q.magic_certified(), "generated programs never flounder");
            let mut db = q.new_database();
            let domain = ["c0", "c1", "c2", "c3"];
            for a in domain {
                for b in domain {
                    if rng.gen_bool(0.4) {
                        db.insert_syms("e", &[a, b]).unwrap();
                    }
                }
            }
            assert_magic_agrees(&src, "q", &db, &q);
            let _ = case;
        }
    }

    #[test]
    fn random_refusals_always_carry_witnesses() {
        // Inject a flounder or a choice site into otherwise-random programs:
        // every refusal must carry a non-empty walk ending at the site.
        let mut rng = SmallRng::seed_from_u64(0xBAD_5EED);
        let i = Arc::new(Interner::new());
        for _ in 0..12 {
            let mut src = random_point_program(&mut rng);
            if rng.gen_bool(0.5) {
                src.push_str("q(Y) :- not p0(Y, Z), e(Y, Z).\n");
            } else {
                src.push_str("q(Y) :- e[2](X, Y, 0).\n");
            }
            let p = idlog_parser::parse_program(&src, &i).unwrap();
            let refusal = magic_rewrite(&p, "q", &i).unwrap_err();
            assert!(!refusal.walk.is_empty(), "refusal without walk for {src}");
        }
    }

    #[test]
    fn rewritten_program_revalidates() {
        let i = Arc::new(Interner::new());
        let p = idlog_parser::parse_program(ANCESTOR, &i).unwrap();
        let magic = magic_rewrite(&p, "query", &i).unwrap();
        ValidatedProgram::new(magic, Arc::clone(&i)).expect("rewrite stays valid");
    }
}
