//! Existential-argument analysis and the paper's optimization strategy
//! (§4): rewrite DATALOG programs so that redundant intermediate tuples are
//! never produced.
//!
//! Two different notions of existential argument coexist (paper Example 7
//! shows they are incomparable):
//!
//! * **∀-existential** (Definition 1, from \[RBK88\]): the literal can be
//!   replaced by a projection that *keeps all tuples* but forgets the
//!   column. Detected (soundly, incompletely — detection is undecidable) by
//!   the adornment algorithm in [`adornment`]; eliminated by the
//!   projection-pushing rewrite in [`rewrite_forall`].
//! * **∃-existential** (Definition 2, new in the paper): the literal can be
//!   replaced by an ID-literal that keeps *one tuple per sub-relation*
//!   (`p[s](X̄, Y, 0)`). Theorem 3 shows detection is undecidable; Theorem 4
//!   shows every ∀-existential argument found by the adornment algorithm is
//!   also ∃-existential, so [`rewrite_exists`] may replace input-predicate
//!   literals with tid-0 ID-literals — the paper's four-step strategy.
//!
//! [`equivalence`] provides the bounded q-equivalence checking used to
//! validate the rewrites empirically (the paper proves them; we test them on
//! randomized databases).

#![warn(missing_docs)]

pub mod adornment;
pub mod equivalence;
pub mod magic;
pub mod redundancy;
pub mod rewrite_exists;
pub mod rewrite_forall;

pub use adornment::{analyze, ExistentialAnalysis};
pub use equivalence::{q_equivalent_on, random_databases, EquivalenceReport};
pub use magic::{magic_rewrite, relevance_for};
pub use redundancy::{suggest_redundant_clauses, RedundancyReport};
pub use rewrite_exists::to_id_program;
pub use rewrite_forall::push_projections;
