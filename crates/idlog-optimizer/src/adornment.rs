//! The adornment algorithm of \[RBK88\] (as quoted in the paper, §4):
//!
//! > "if a variable Y appears in a body literal and does not appear anywhere
//! > else in the clause, except possibly in an existential argument of the
//! > head, then the argument position corresponding to Y is existential."
//!
//! Because head-argument existentiality depends on body-occurrence
//! existentiality of the *same* predicate elsewhere, the definition is a
//! greatest fixpoint: we start from "every position of every non-output
//! predicate is existential" and delete violations until stable.
//!
//! The result distinguishes:
//!
//! * **predicate-level** marks — an argument of a predicate is existential
//!   when the local condition holds at *every* body occurrence; these drive
//!   the projection-pushing rewrite for IDB predicates;
//! * **occurrence-level** marks — the local condition at one body literal;
//!   these drive the ID-literal rewrite for input-predicate occurrences
//!   (paper's step 3).

use idlog_common::{FxHashMap, FxHashSet, SymbolId};
use idlog_parser::{Program, Term};

/// Result of the adornment analysis w.r.t. one output predicate.
#[derive(Debug, Clone)]
pub struct ExistentialAnalysis {
    /// Predicate-level marks: `(pred, 0-based position)`.
    pred_level: FxHashSet<(SymbolId, usize)>,
    /// Occurrence-level marks: `(clause index, body literal index)` →
    /// existential positions of that occurrence, ascending.
    occurrence: FxHashMap<(usize, usize), Vec<usize>>,
    output: SymbolId,
}

impl ExistentialAnalysis {
    /// Is `(pred, pos)` existential at every body occurrence?
    pub fn pred_existential(&self, pred: SymbolId, pos: usize) -> bool {
        self.pred_level.contains(&(pred, pos))
    }

    /// All predicate-level existential positions of `pred`, ascending.
    pub fn pred_positions(&self, pred: SymbolId) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .pred_level
            .iter()
            .filter(|&&(p, _)| p == pred)
            .map(|&(_, pos)| pos)
            .collect();
        v.sort_unstable();
        v
    }

    /// Existential positions of one body occurrence, ascending.
    pub fn occurrence_positions(&self, clause: usize, literal: usize) -> &[usize] {
        self.occurrence
            .get(&(clause, literal))
            .map_or(&[], |v| v.as_slice())
    }

    /// The output predicate the analysis was computed against.
    pub fn output(&self) -> SymbolId {
        self.output
    }
}

/// Run the adornment analysis on `program` w.r.t. `output`.
///
/// Only ordinary positive body literals participate; negated literals,
/// builtins, and ID-literals block existentiality of the variables they
/// mention (a variable occurring there "appears somewhere else").
pub fn analyze(program: &Program, output: SymbolId) -> ExistentialAnalysis {
    // Candidate predicate-level set: every position of every predicate
    // except the output's.
    let mut arities: FxHashMap<SymbolId, usize> = FxHashMap::default();
    for clause in &program.clauses {
        for h in &clause.head {
            arities.insert(h.atom.pred.base(), h.atom.base_arity());
        }
        for l in &clause.body {
            if let Some(a) = l.atom() {
                arities.insert(a.pred.base(), a.base_arity());
            }
        }
    }
    let mut pred_level: FxHashSet<(SymbolId, usize)> = arities
        .iter()
        .filter(|&(&p, _)| p != output)
        .flat_map(|(&p, &n)| (0..n).map(move |j| (p, j)))
        .collect();

    // Greatest fixpoint: delete (p, j) whenever some body occurrence of p
    // violates the local condition under the current pred_level.
    loop {
        let mut changed = false;
        for clause in &program.clauses {
            for (li, lit) in clause.body.iter().enumerate() {
                let Some(positions) = local_existential(program, clause, li, &pred_level) else {
                    continue;
                };
                let atom = clause.body[li].atom().expect("local_existential checked");
                if atom.pred.is_id_version() {
                    continue;
                }
                let p = atom.pred.base();
                for j in 0..atom.terms.len() {
                    if !positions.contains(&j) && pred_level.remove(&(p, j)) {
                        changed = true;
                    }
                }
                let _ = lit;
            }
        }
        if !changed {
            break;
        }
    }

    // Occurrence-level marks under the final pred_level.
    let mut occurrence: FxHashMap<(usize, usize), Vec<usize>> = FxHashMap::default();
    for (ci, clause) in program.clauses.iter().enumerate() {
        for li in 0..clause.body.len() {
            if let Some(positions) = local_existential(program, clause, li, &pred_level) {
                if !positions.is_empty() {
                    occurrence.insert((ci, li), positions);
                }
            }
        }
    }

    ExistentialAnalysis {
        pred_level,
        occurrence,
        output,
    }
}

/// The local condition at one body literal: which positions hold a variable
/// that appears (a) exactly once in this literal, (b) in no other body
/// literal of the clause, and (c) in the head only at positions currently
/// marked predicate-level existential. Returns `None` for non-atom literals
/// (builtins) and negated literals — those never qualify.
fn local_existential(
    _program: &Program,
    clause: &idlog_parser::Clause,
    li: usize,
    pred_level: &FxHashSet<(SymbolId, usize)>,
) -> Option<Vec<usize>> {
    use idlog_parser::Literal;
    let Literal::Pos(atom) = &clause.body[li] else {
        return None;
    };

    let mut out = Vec::new();
    'pos: for (j, term) in atom.terms.iter().enumerate() {
        let Term::Var(y) = term else { continue };

        // (a) exactly once in this literal.
        if atom.terms.iter().filter(|t| t.as_var() == Some(y)).count() != 1 {
            continue;
        }
        // (b) nowhere in any other body literal.
        for (lj, other) in clause.body.iter().enumerate() {
            if lj != li && other.variables().contains(&y.as_str()) {
                continue 'pos;
            }
        }
        // (c) head occurrences only at existential positions.
        for h in &clause.head {
            let hp = h.atom.pred.base();
            for (i, ht) in h.atom.terms.iter().enumerate() {
                if ht.as_var() == Some(y) && !pred_level.contains(&(hp, i)) {
                    continue 'pos;
                }
            }
        }
        out.push(j);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_common::Interner;
    use idlog_parser::parse_program;

    fn run(src: &str, output: &str) -> (ExistentialAnalysis, Interner) {
        let i = Interner::new();
        let p = parse_program(src, &i).unwrap();
        let out = i.intern(output);
        (analyze(&p, out), i)
    }

    #[test]
    fn paper_example6() {
        // [1] q(X) :- a(X, Y).  [2] a(X, Y) :- p(X, Z), a(Z, Y).
        // [3] a(X, Y) :- p(X, Y).
        let (an, i) = run(
            "q(X) :- a(X, Y).
             a(X, Y) :- p(X, Z), a(Z, Y).
             a(X, Y) :- p(X, Y).",
            "q",
        );
        let a = i.get("a").unwrap();
        let p = i.get("p").unwrap();
        // Paper: a's second argument is existential; a's first is not
        // (X flows to the output); p's first is not.
        assert!(an.pred_existential(a, 1));
        assert!(!an.pred_existential(a, 0));
        assert!(!an.pred_existential(p, 0));
        // p's second argument is existential in [3] (occurrence level) but
        // NOT in [2] (Z joins with a), hence not predicate-level.
        assert!(!an.pred_existential(p, 1));
        assert_eq!(an.occurrence_positions(2, 0), &[1]); // clause [3], p(X,Y)
        assert_eq!(an.occurrence_positions(1, 0), &[] as &[usize]); // [2], p(X,Z)
    }

    #[test]
    fn paper_section4_opening_program() {
        // p(X) :- q(X, Z), z(Z, Y), y(W): Y and W are existential.
        let (an, _) = run("p(X) :- q(X, Z), z(Z, Y), y(W).", "p");
        // occurrence marks: z's 2nd position (Y), y's 1st (W).
        assert_eq!(an.occurrence_positions(0, 1), &[1]);
        assert_eq!(an.occurrence_positions(0, 2), &[0]);
        // q's positions are not existential: X is output-bound, Z joins.
        assert_eq!(an.occurrence_positions(0, 0), &[] as &[usize]);
    }

    #[test]
    fn output_positions_are_never_existential() {
        let (an, i) = run("q(X) :- p(X).", "q");
        let q = i.get("q").unwrap();
        assert!(!an.pred_existential(q, 0));
    }

    #[test]
    fn repeated_variable_in_literal_blocks() {
        let (an, _) = run("q(X) :- p(X), r(Y, Y).", "q");
        assert_eq!(an.occurrence_positions(0, 1), &[] as &[usize]);
    }

    #[test]
    fn variable_in_negation_blocks() {
        let (an, _) = run("q(X) :- p(X, Y), s(Y), not t(Y).", "q");
        // Y appears in s and not t: nothing existential.
        assert_eq!(an.occurrence_positions(0, 0), &[] as &[usize]);
    }

    #[test]
    fn chained_head_dependency_converges() {
        // b's arg flows only into a's existential arg → b's arg existential.
        let (an, i) = run(
            "q(X) :- p(X), a(Y).
             a(Y) :- b(Y).",
            "q",
        );
        let a = i.get("a").unwrap();
        let b = i.get("b").unwrap();
        assert!(an.pred_existential(a, 0));
        assert!(an.pred_existential(b, 0));
    }

    #[test]
    fn head_dependency_blocks_when_not_existential() {
        // a's arg reaches the output through q's head: not existential.
        let (an, i) = run(
            "q(Y) :- a(Y).
             a(Y) :- b(Y).",
            "q",
        );
        let a = i.get("a").unwrap();
        assert!(!an.pred_existential(a, 0));
        let b = i.get("b").unwrap();
        assert!(!an.pred_existential(b, 0));
    }
}
