//! Property-based Theorem 4 testing: for randomly generated join programs,
//! the ID-rewrite of adornment-identified existential arguments preserves
//! the query on random databases.

use std::sync::Arc;

use proptest::prelude::*;

use idlog_core::{EnumBudget, Interner};
use idlog_optimizer::{push_projections, q_equivalent_on, random_databases, to_id_program};

/// A random "star join" program:
/// `out(X) :- base(X, J1), r1(J1, E1), r2(J2?), …` — each auxiliary relation
/// either joins on a shared variable or dangles with fresh existential
/// variables.
fn star_program(joins: &[bool]) -> (String, Vec<(&'static str, usize)>) {
    const NAMES: [&str; 4] = ["r0", "r1", "r2", "r3"];
    let mut body = vec!["base(X, J)".to_string()];
    let mut schema: Vec<(&str, usize)> = vec![("base", 2)];
    for (k, &joined) in joins.iter().enumerate() {
        let name = NAMES[k];
        if joined {
            body.push(format!("{name}(J, E{k})"));
        } else {
            body.push(format!("{name}(F{k}, E{k})"));
        }
        schema.push((name, 2));
    }
    (format!("out(X) :- {}.", body.join(", ")), schema)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 4 over the star-join family: original ≡ ID-rewrite on random
    /// databases.
    #[test]
    fn theorem4_star_joins(
        joins in proptest::collection::vec(any::<bool>(), 1..4),
        seed in any::<u64>(),
    ) {
        let (src, schema) = star_program(&joins);
        let interner = Arc::new(Interner::new());
        let ast = idlog_core::parse_program(&src, &interner).unwrap();
        let out = interner.intern("out");
        let rewritten = to_id_program(&ast, out);
        let dbs = random_databases(&interner, &schema, &["a", "b"], 5, seed);
        let rep = q_equivalent_on(&ast, &rewritten, &interner, &dbs, "out", &EnumBudget::default())
            .unwrap();
        prop_assert!(
            rep.equivalent,
            "counterexample db #{:?}\nprogram: {src}\nrewritten: {}",
            rep.counterexample,
            rewritten.display(&interner)
        );
    }

    /// The ∀-rewrite (projection pushing) preserves the query on chain
    /// programs of random depth.
    #[test]
    fn projection_pushing_on_chains(depth in 1usize..4, seed in any::<u64>()) {
        // out(X) :- l0(X, Y0). l0(X, Y) :- l1(X, Y). … l_last(X, Y) :- base(X, Y).
        let mut src = String::from("out(X) :- l0(X, Y).\n");
        for k in 0..depth {
            let next = if k + 1 == depth { "base".to_string() } else { format!("l{}", k + 1) };
            src.push_str(&format!("l{k}(X, Y) :- {next}(X, Y).\n"));
        }
        let interner = Arc::new(Interner::new());
        let ast = idlog_core::parse_program(&src, &interner).unwrap();
        let out = interner.intern("out");
        let projected = push_projections(&ast, out);
        let dbs = random_databases(&interner, &[("base", 2)], &["a", "b", "c"], 5, seed);
        let rep =
            q_equivalent_on(&ast, &projected, &interner, &dbs, "out", &EnumBudget::default())
                .unwrap();
        prop_assert!(rep.equivalent, "src:\n{src}\nprojected:\n{}", projected.display(&interner));
        // The rewrite really dropped the intermediate columns.
        let l0 = interner.intern("l0");
        let projected_validated =
            idlog_core::ValidatedProgram::new(projected, Arc::clone(&interner)).unwrap();
        prop_assert_eq!(projected_validated.arity(l0), Some(1));
    }

    /// Rewrites never turn a valid program invalid.
    #[test]
    fn rewrites_preserve_validity(joins in proptest::collection::vec(any::<bool>(), 1..4)) {
        let (src, _) = star_program(&joins);
        let interner = Arc::new(Interner::new());
        let ast = idlog_core::parse_program(&src, &interner).unwrap();
        let out = interner.intern("out");
        let rewritten = to_id_program(&ast, out);
        idlog_core::ValidatedProgram::new(rewritten, interner).unwrap();
    }
}
