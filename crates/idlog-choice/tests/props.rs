//! Property-based Theorem 2 testing: on random employee databases, the
//! direct KN88 semantics and the IDLOG translation agree for a family of
//! choice programs.

use std::sync::Arc;

use proptest::prelude::*;

use idlog_choice::{intended_models, one_intended_model, to_idlog::to_idlog, ChoiceBudget};
use idlog_core::{Interner, Query, Tuple, ValidatedProgram};
use idlog_storage::Database;

fn db_of(interner: &Arc<Interner>, members: &[(usize, usize)]) -> Database {
    let mut db = Database::with_interner(Arc::clone(interner));
    for (d, m) in members {
        db.insert_syms("emp", &[&format!("m{m}"), &format!("d{d}")])
            .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Theorem 2 on random databases, three program shapes.
    #[test]
    fn theorem2_random_databases(
        members in proptest::collection::vec((0usize..2, 0usize..3), 0..7),
        shape in 0usize..3,
    ) {
        let srcs = [
            "s(N) :- emp(N, D), choice((D), (N)).",
            "s(D) :- emp(N, D), choice((N), (D)).",
            "s(N, D) :- emp(N, D), choice((), (N, D)).",
        ];
        let interner = Arc::new(Interner::new());
        let ast = idlog_core::parse_program(srcs[shape], &interner).unwrap();
        let db = db_of(&interner, &members);
        let budget = ChoiceBudget::default();

        let direct = intended_models(&ast, &interner, &db, "s", &budget).unwrap();
        prop_assert!(direct.complete());

        let translated = to_idlog(&ast, &interner).unwrap();
        let validated = ValidatedProgram::new(translated, Arc::clone(&interner)).unwrap();
        let via = Query::new(validated, "s")
            .unwrap()
            .session(&db)
            .budget(budget)
            .all_answers()
            .unwrap();
        prop_assert!(via.complete());
        prop_assert!(
            direct.same_answers(&via, &interner),
            "direct {:?} vs idlog {:?}",
            direct.to_sorted_strings(&interner),
            via.to_sorted_strings(&interner)
        );
    }

    /// Functional-subset invariant: every intended model of the one-per-
    /// group program selects exactly one member per nonempty group.
    #[test]
    fn intended_models_are_functional(
        members in proptest::collection::vec((0usize..3, 0usize..4), 0..9),
    ) {
        let interner = Arc::new(Interner::new());
        let ast = idlog_core::parse_program(
            "s(N, D) :- emp(N, D), choice((D), (N)).",
            &interner,
        ).unwrap();
        let db = db_of(&interner, &members);
        let models =
            intended_models(&ast, &interner, &db, "s", &ChoiceBudget::default()).unwrap();
        let groups: std::collections::BTreeSet<usize> =
            members.iter().map(|&(d, _)| d).collect();
        for rel in models.iter() {
            // One tuple per distinct department.
            prop_assert_eq!(rel.len(), groups.len());
            let mut depts: Vec<String> = rel
                .iter()
                .map(|t| interner.resolve(t[1].as_sym().unwrap()))
                .collect();
            depts.sort();
            depts.dedup();
            prop_assert_eq!(depts.len(), groups.len(), "FD Dept -> Name violated");
        }
    }

    /// A sampled intended model is always among the enumerated ones.
    #[test]
    fn sampled_model_is_enumerated(
        members in proptest::collection::vec((0usize..2, 0usize..3), 1..7),
        seed in any::<u64>(),
    ) {
        let interner = Arc::new(Interner::new());
        let ast = idlog_core::parse_program(
            "s(N) :- emp(N, D), choice((D), (N)).",
            &interner,
        ).unwrap();
        let db = db_of(&interner, &members);
        let all = intended_models(&ast, &interner, &db, "s", &ChoiceBudget::default()).unwrap();
        let (one, _) = one_intended_model(&ast, &interner, &db, "s", Some(seed)).unwrap();
        let tuples: Vec<Tuple> = one.iter().cloned().collect();
        prop_assert!(all.contains_answer(&tuples));
    }
}
