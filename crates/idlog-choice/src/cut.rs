//! Top-down SLD evaluation of DATALOG with cut.
//!
//! The paper's §4 closes with: "The relationship between choice and cut in
//! top-down evaluation was also discussed in \[KN88\]. It is known that every
//! DATALOG program with cut has an equivalent DATALOG^C program. Since IDLOG
//! subsumes DATALOG^C, it means that cut can be expressed in IDLOG as well."
//!
//! This module supplies the missing substrate: a Prolog-style SLD resolution
//! interpreter over DATALOG (clauses tried in source order, body literals
//! left to right, negation as failure, arithmetic builtins) with `!` pruning
//! the choice points of the enclosing call. The cross-language tests then
//! demonstrate the containment the remark rests on: a cut program's answer
//! is one of the intended models of the corresponding choice program, which
//! in turn equals an IDLOG answer (Theorem 2).
//!
//! Left-recursive programs can loop in top-down evaluation (no tabling); a
//! step budget turns the loop into an error.

use std::sync::Arc;

use idlog_common::{FxHashMap, Interner, SymbolId, Tuple, Value};
use idlog_core::builtins;
use idlog_parser::{Atom, Builtin, Literal, Program, Term};
use idlog_storage::{Database, Relation};

use crate::error::{ChoiceError, ChoiceResult};

/// A validated DATALOG-with-cut program.
#[derive(Debug, Clone)]
pub struct CutProgram {
    interner: Arc<Interner>,
    ast: Program,
    /// Clause indices per head predicate, in source order.
    by_head: FxHashMap<SymbolId, Vec<usize>>,
    arities: FxHashMap<SymbolId, usize>,
}

/// Budget for one query.
#[derive(Debug, Clone, Copy)]
pub struct CutBudget {
    /// Maximum resolution steps (clause activations).
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for CutBudget {
    fn default() -> Self {
        CutBudget {
            max_steps: 1_000_000,
            max_depth: 10_000,
        }
    }
}

impl CutProgram {
    /// Validate `ast` as DATALOG with cut: single positive ordinary heads,
    /// no ID-atoms, no choice.
    pub fn new(ast: Program, interner: Arc<Interner>) -> ChoiceResult<Self> {
        let mut by_head: FxHashMap<SymbolId, Vec<usize>> = FxHashMap::default();
        let mut arities: FxHashMap<SymbolId, usize> = FxHashMap::default();
        for (ci, clause) in ast.clauses.iter().enumerate() {
            if clause.head.len() != 1 || clause.head[0].negated {
                return Err(ChoiceError::Invalid {
                    clause: ci,
                    message: "cut programs have single positive heads".into(),
                });
            }
            let head = &clause.head[0].atom;
            if head.pred.is_id_version() {
                return Err(ChoiceError::Invalid {
                    clause: ci,
                    message: "ID-atoms belong to IDLOG".into(),
                });
            }
            for l in &clause.body {
                if matches!(l, Literal::Choice { .. }) {
                    return Err(ChoiceError::Invalid {
                        clause: ci,
                        message: "cut programs may not also contain choice".into(),
                    });
                }
                if let Some(a) = l.atom() {
                    if a.pred.is_id_version() {
                        return Err(ChoiceError::Invalid {
                            clause: ci,
                            message: "ID-atoms belong to IDLOG".into(),
                        });
                    }
                }
            }
            let mut check = |pred: SymbolId, arity: usize| -> ChoiceResult<()> {
                match arities.get(&pred) {
                    Some(&a) if a != arity => Err(ChoiceError::Invalid {
                        clause: ci,
                        message: format!(
                            "predicate {} used with arities {a} and {arity}",
                            interner.resolve(pred)
                        ),
                    }),
                    _ => {
                        arities.insert(pred, arity);
                        Ok(())
                    }
                }
            };
            check(head.pred.base(), head.terms.len())?;
            for l in &clause.body {
                if let Some(a) = l.atom() {
                    check(a.pred.base(), a.terms.len())?;
                }
            }
            by_head.entry(head.pred.base()).or_default().push(ci);
        }
        Ok(CutProgram {
            interner,
            ast,
            by_head,
            arities,
        })
    }

    /// Parse and validate.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use idlog_choice::{CutBudget, CutProgram};
    /// use idlog_core::Interner;
    /// use idlog_storage::Database;
    ///
    /// let prog = CutProgram::parse(
    ///     "first(X) :- item(X), !.",
    ///     Arc::new(Interner::new()),
    /// ).unwrap();
    /// let mut db = Database::with_interner(Arc::clone(prog.interner()));
    /// db.insert_syms("item", &["b"]).unwrap();
    /// db.insert_syms("item", &["a"]).unwrap();
    ///
    /// // The cut commits to the first derivation (canonical EDB order).
    /// let rel = prog.all_solutions(&db, "first", &CutBudget::default()).unwrap();
    /// assert_eq!(rel.len(), 1);
    /// ```
    pub fn parse(src: &str, interner: Arc<Interner>) -> ChoiceResult<Self> {
        let ast = idlog_parser::parse_program(src, &interner)?;
        Self::new(ast, interner)
    }

    /// The shared interner.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// All solutions of `?- output(V…)` in derivation order (cuts applied),
    /// deduplicated into a relation.
    pub fn all_solutions(
        &self,
        db: &Database,
        output: &str,
        budget: &CutBudget,
    ) -> ChoiceResult<Relation> {
        self.solutions(db, output, budget, None)
    }

    /// The first solution only (stops the search after one answer) — the
    /// usual way cut programs are run.
    pub fn first_solution(
        &self,
        db: &Database,
        output: &str,
        budget: &CutBudget,
    ) -> ChoiceResult<Option<Tuple>> {
        let rel = self.solutions(db, output, budget, Some(1))?;
        let first = rel.iter().next().cloned();
        Ok(first)
    }

    fn solutions(
        &self,
        db: &Database,
        output: &str,
        budget: &CutBudget,
        limit: Option<usize>,
    ) -> ChoiceResult<Relation> {
        let pred = self
            .interner
            .get(output)
            .filter(|p| self.arities.contains_key(p) || db.relation(output).is_some())
            .ok_or_else(|| ChoiceError::Invalid {
                clause: 0,
                message: format!("output predicate {output} does not occur"),
            })?;
        let arity = self
            .arities
            .get(&pred)
            .copied()
            .or_else(|| db.relation(output).map(|r| r.arity()))
            .expect("filtered above");

        let mut machine = Machine {
            prog: self,
            db,
            cells: Vec::new(),
            steps: 0,
            budget: *budget,
            results: Vec::new(),
            limit,
        };
        // Fresh query variables.
        let base = machine.alloc(arity);
        let args: Vec<Slot> = (0..arity).map(|k| Slot::Var(base + k)).collect();
        machine.solve_call(pred, &args, 0, &mut |m| {
            let tuple: Tuple = args
                .iter()
                .map(|s| m.deref(*s).expect("query answer must be ground"))
                .collect();
            m.results.push(tuple);
            if m.limit.is_some_and(|l| m.results.len() >= l) {
                Sig::CutTo(0) // stop the whole search
            } else {
                Sig::More
            }
        })?;

        let mut rel = match machine.results.first() {
            Some(t) => Relation::new(idlog_common::RelType::new(
                t.values().iter().map(|v| v.sort()).collect(),
            )),
            None => Relation::elementary(arity),
        };
        for t in machine.results {
            rel.insert(t).map_err(|e| ChoiceError::Core(e.into()))?;
        }
        Ok(rel)
    }
}

/// A runtime term: a binding slot or a ground value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Var(usize),
    Val(Value),
}

/// One binding cell: unbound, bound to a value, or linked to another cell
/// (variable-variable unification). Links always point to *older* (lower)
/// indices so truncating an activation's slots never dangles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cell {
    Free,
    Val(Value),
    Link(usize),
}

/// Backtracking signal: keep enumerating, or prune to (and including) the
/// call at the given barrier depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sig {
    More,
    CutTo(usize),
}

struct Machine<'a> {
    prog: &'a CutProgram,
    db: &'a Database,
    cells: Vec<Cell>,
    steps: u64,
    budget: CutBudget,
    results: Vec<Tuple>,
    limit: Option<usize>,
}

type Cont<'m> = dyn FnMut(&mut Machine<'_>) -> Sig + 'm;

impl Machine<'_> {
    fn alloc(&mut self, n: usize) -> usize {
        let base = self.cells.len();
        self.cells.resize(base + n, Cell::Free);
        base
    }

    /// Follow links to the representative: a value or a free variable slot.
    fn walk(&self, s: Slot) -> Slot {
        let mut s = s;
        loop {
            match s {
                Slot::Val(_) => return s,
                Slot::Var(i) => match self.cells[i] {
                    Cell::Free => return s,
                    Cell::Val(v) => return Slot::Val(v),
                    Cell::Link(j) => s = Slot::Var(j),
                },
            }
        }
    }

    fn deref(&self, s: Slot) -> Option<Value> {
        match self.walk(s) {
            Slot::Val(v) => Some(v),
            Slot::Var(_) => None,
        }
    }

    /// Unify two runtime terms, trailing changed cells.
    fn unify(&mut self, a: Slot, b: Slot, trail: &mut Vec<usize>) -> bool {
        match (self.walk(a), self.walk(b)) {
            (Slot::Val(x), Slot::Val(y)) => x == y,
            (Slot::Var(i), Slot::Val(v)) | (Slot::Val(v), Slot::Var(i)) => {
                self.cells[i] = Cell::Val(v);
                trail.push(i);
                true
            }
            (Slot::Var(i), Slot::Var(j)) => {
                if i != j {
                    // Link the younger to the older so truncation is safe.
                    let (young, old) = if i > j { (i, j) } else { (j, i) };
                    self.cells[young] = Cell::Link(old);
                    trail.push(young);
                }
                true
            }
        }
    }

    fn undo(&mut self, trail: &[usize]) {
        for &i in trail {
            self.cells[i] = Cell::Free;
        }
    }

    /// Resolve a clause term to a slot under an activation base.
    fn slot_of(term: &Term, vars: &FxHashMap<&str, usize>, base: usize) -> Slot {
        match term {
            Term::Var(v) => Slot::Var(base + vars[v.as_str()]),
            Term::Sym(s) => Slot::Val(Value::Sym(*s)),
            Term::Int(n) => Slot::Val(Value::Int(*n)),
        }
    }

    fn bump(&mut self) -> ChoiceResult<()> {
        self.steps += 1;
        if self.steps > self.budget.max_steps {
            return Err(ChoiceError::Core(idlog_core::CoreError::BudgetExceeded {
                what: format!("{} SLD steps", self.budget.max_steps),
            }));
        }
        Ok(())
    }

    /// Prove `pred(args…)`, invoking `cont` at every solution. `depth` is
    /// the call depth; cuts in bodies activated here carry barrier
    /// `depth + 1`.
    fn solve_call(
        &mut self,
        pred: SymbolId,
        args: &[Slot],
        depth: usize,
        cont: &mut Cont<'_>,
    ) -> ChoiceResult<Sig> {
        if depth >= self.budget.max_depth {
            return Err(ChoiceError::Core(idlog_core::CoreError::BudgetExceeded {
                what: format!("SLD depth {}", self.budget.max_depth),
            }));
        }

        // Database facts first (EDB), in canonical order for determinism.
        if let Some(rel) = self.db.relation_by_id(pred) {
            let tuples = rel.sorted_canonical(&self.prog.interner);
            for t in tuples {
                self.bump()?;
                let mut trail = Vec::new();
                let ok = args
                    .iter()
                    .zip(t.values())
                    .all(|(&s, &v)| self.unify(s, Slot::Val(v), &mut trail));
                let sig = if ok { cont(self) } else { Sig::More };
                self.undo(&trail);
                if let Sig::CutTo(b) = sig {
                    return Ok(Sig::CutTo(b));
                }
            }
        }

        // Program clauses in source order.
        let clause_ids = self.prog.by_head.get(&pred).cloned().unwrap_or_default();
        for ci in clause_ids {
            self.bump()?;
            let clause = &self.prog.ast.clauses[ci];
            let names = clause.variables();
            let vars: FxHashMap<&str, usize> =
                names.iter().enumerate().map(|(i, &n)| (n, i)).collect();
            let base = self.alloc(names.len());

            let mut trail = Vec::new();
            let head = clause.single_head();
            let ok = args.iter().zip(&head.terms).all(|(&s, term)| {
                let t = Self::slot_of(term, &vars, base);
                self.unify(s, t, &mut trail)
            });
            let sig = if ok {
                self.solve_body(clause, &vars, base, depth, 0, cont)?
            } else {
                Sig::More
            };
            self.undo(&trail);
            self.cells.truncate(base);
            match sig {
                Sig::More => {}
                // A cut whose barrier is this call: consume it (stop trying
                // further clauses) but let the caller continue normally.
                Sig::CutTo(b) if b > depth => return Ok(Sig::More),
                Sig::CutTo(b) => return Ok(Sig::CutTo(b)),
            }
        }
        Ok(Sig::More)
    }

    /// Prove the body literals of `clause` from index `li` on.
    fn solve_body(
        &mut self,
        clause: &idlog_parser::Clause,
        vars: &FxHashMap<&str, usize>,
        base: usize,
        depth: usize,
        li: usize,
        cont: &mut Cont<'_>,
    ) -> ChoiceResult<Sig> {
        if li == clause.body.len() {
            return Ok(cont(self));
        }
        match &clause.body[li] {
            Literal::Pos(atom) => {
                let args: Vec<Slot> = atom
                    .terms
                    .iter()
                    .map(|t| Self::slot_of(t, vars, base))
                    .collect();
                let mut err: Option<ChoiceError> = None;
                let sig = {
                    let mut k = |m: &mut Machine<'_>| -> Sig {
                        match m.solve_body(clause, vars, base, depth, li + 1, &mut *cont) {
                            Ok(sig) => sig,
                            Err(e) => {
                                err = Some(e);
                                Sig::CutTo(0)
                            }
                        }
                    };
                    self.solve_call(atom.pred.base(), &args, depth + 1, &mut k)?
                };
                if let Some(e) = err {
                    return Err(e);
                }
                Ok(sig)
            }
            Literal::Neg(atom) => {
                if self.prove_once(atom, vars, base, depth)? {
                    Ok(Sig::More)
                } else {
                    self.solve_body(clause, vars, base, depth, li + 1, cont)
                }
            }
            Literal::Cut => {
                let sig = self.solve_body(clause, vars, base, depth, li + 1, cont)?;
                match sig {
                    Sig::More => Ok(Sig::CutTo(depth + 1)),
                    cut => Ok(cut),
                }
            }
            Literal::Builtin { op, args } => {
                let slots: Vec<Slot> = args.iter().map(|t| Self::slot_of(t, vars, base)).collect();
                self.solve_builtin(clause, vars, base, depth, li, *op, &slots, cont)
            }
            Literal::Choice { .. } => unreachable!("validated away"),
        }
    }

    /// Negation as failure: succeed iff the (ground) atom has no proof.
    fn prove_once(
        &mut self,
        atom: &Atom,
        vars: &FxHashMap<&str, usize>,
        base: usize,
        depth: usize,
    ) -> ChoiceResult<bool> {
        let args: Vec<Slot> = atom
            .terms
            .iter()
            .map(|t| Self::slot_of(t, vars, base))
            .collect();
        if args.iter().any(|&s| self.deref(s).is_none()) {
            return Err(ChoiceError::Core(idlog_core::CoreError::Eval {
                message: "negation-as-failure on a non-ground goal".into(),
            }));
        }
        let mut proved = false;
        self.solve_call(atom.pred.base(), &args, depth + 1, &mut |_m| {
            proved = true;
            Sig::CutTo(0) // abandon the sub-proof entirely
        })?;
        Ok(proved)
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_builtin(
        &mut self,
        clause: &idlog_parser::Clause,
        vars: &FxHashMap<&str, usize>,
        base: usize,
        depth: usize,
        li: usize,
        op: Builtin,
        slots: &[Slot],
        cont: &mut Cont<'_>,
    ) -> ChoiceResult<Sig> {
        // `=`/`!=` on any sort.
        if matches!(op, Builtin::Eq | Builtin::Ne) {
            let a = self.deref(slots[0]);
            let b = self.deref(slots[1]);
            return match (a, b) {
                (Some(x), Some(y)) => {
                    if builtins::eq_check(op, x, y) {
                        self.solve_body(clause, vars, base, depth, li + 1, cont)
                    } else {
                        Ok(Sig::More)
                    }
                }
                (_, _) if op == Builtin::Eq => {
                    // Unify the two sides (covers var=val and var=var).
                    let mut trail = Vec::new();
                    let sig = if self.unify(slots[0], slots[1], &mut trail) {
                        self.solve_body(clause, vars, base, depth, li + 1, cont)?
                    } else {
                        Sig::More
                    };
                    self.undo(&trail);
                    Ok(sig)
                }
                _ => Err(ChoiceError::Core(idlog_core::CoreError::Eval {
                    message: "insufficiently bound disequality".into(),
                })),
            };
        }
        let ints: Vec<Option<i64>> = slots
            .iter()
            .map(|&s| self.deref(s).and_then(Value::as_int))
            .collect();
        // A bound non-integer can never satisfy arithmetic.
        for (&s, i) in slots.iter().zip(&ints) {
            if i.is_none() && matches!(self.deref(s), Some(Value::Sym(_))) {
                return Ok(Sig::More);
            }
        }
        let sols = builtins::solve(op, &ints).map_err(ChoiceError::Core)?;
        for sol in sols {
            let mut trail = Vec::new();
            let ok = slots
                .iter()
                .zip(&sol)
                .all(|(&s, &v)| self.unify(s, Slot::Val(Value::Int(v)), &mut trail));
            let sig = if ok {
                self.solve_body(clause, vars, base, depth, li + 1, cont)?
            } else {
                Sig::More
            };
            self.undo(&trail);
            if let Sig::CutTo(b) = sig {
                return Ok(Sig::CutTo(b));
            }
        }
        Ok(Sig::More)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(src: &str, facts: &[(&str, &[&str])]) -> (CutProgram, Database) {
        let interner = Arc::new(Interner::new());
        let prog = CutProgram::parse(src, Arc::clone(&interner)).unwrap();
        let mut db = Database::with_interner(interner);
        for (pred, cols) in facts {
            db.insert_syms(pred, cols).unwrap();
        }
        (prog, db)
    }

    fn names(prog: &CutProgram, rel: &Relation) -> Vec<String> {
        let mut v: Vec<String> = rel
            .iter()
            .map(|t| {
                t.values()
                    .iter()
                    .map(|x| x.display(prog.interner()).to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn plain_sld_finds_all_solutions() {
        let (prog, db) = setup(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
            &[("par", &["a", "b"]), ("par", &["b", "c"])],
        );
        let rel = prog
            .all_solutions(&db, "anc", &CutBudget::default())
            .unwrap();
        assert_eq!(names(&prog, &rel), ["a,b", "a,c", "b,c"]);
    }

    #[test]
    fn cut_commits_to_the_first_clause() {
        // Classic if-then-else, driven per person so each status(...) call
        // has a bound argument: special for VIPs (cut commits), normal
        // otherwise.
        let (prog, db) = setup(
            "result(X, S) :- person(X), status(X, S).
             status(X, special) :- vip(X), !.
             status(X, normal) :- person(X).",
            &[("person", &["a"]), ("person", &["b"]), ("vip", &["a"])],
        );
        let rel = prog
            .all_solutions(&db, "result", &CutBudget::default())
            .unwrap();
        assert_eq!(names(&prog, &rel), ["a,special", "b,normal"]);
    }

    #[test]
    fn toplevel_cut_prunes_the_whole_query() {
        // With the query variable unbound, the cut in clause 1 commits the
        // whole status(X, S) call to its first derivation — exactly
        // Prolog's behaviour.
        let (prog, db) = setup(
            "status(X, special) :- vip(X), !.
             status(X, normal) :- person(X).",
            &[("person", &["a"]), ("person", &["b"]), ("vip", &["a"])],
        );
        let rel = prog
            .all_solutions(&db, "status", &CutBudget::default())
            .unwrap();
        assert_eq!(names(&prog, &rel), ["a,special"]);
    }

    #[test]
    fn cut_prunes_within_one_call_only() {
        // first(X) :- item(X), !. — one item, but which one depends on
        // derivation order (canonical EDB order here: the least).
        let (prog, db) = setup(
            "first(X) :- item(X), !.",
            &[("item", &["b"]), ("item", &["a"]), ("item", &["c"])],
        );
        let rel = prog
            .all_solutions(&db, "first", &CutBudget::default())
            .unwrap();
        assert_eq!(names(&prog, &rel), ["a"], "canonical order puts a first");
    }

    #[test]
    fn negation_as_failure() {
        let (prog, db) = setup(
            "bachelor(X) :- person(X), not married(X).",
            &[("person", &["a"]), ("person", &["b"]), ("married", &["a"])],
        );
        let rel = prog
            .all_solutions(&db, "bachelor", &CutBudget::default())
            .unwrap();
        assert_eq!(names(&prog, &rel), ["b"]);
    }

    #[test]
    fn arithmetic_in_bodies() {
        let (prog, mut db) = setup("double(X, Y) :- num(X), plus(X, X, Y).", &[]);
        db.insert("num", Tuple::new(vec![Value::Int(3)])).unwrap();
        db.insert("num", Tuple::new(vec![Value::Int(5)])).unwrap();
        let rel = prog
            .all_solutions(&db, "double", &CutBudget::default())
            .unwrap();
        assert_eq!(names(&prog, &rel), ["3,6", "5,10"]);
    }

    #[test]
    fn first_solution_stops_early() {
        let (prog, db) = setup(
            "pick(X) :- item(X).",
            &[("item", &["a"]), ("item", &["b"]), ("item", &["c"])],
        );
        let t = prog
            .first_solution(&db, "pick", &CutBudget::default())
            .unwrap()
            .unwrap();
        assert_eq!(t.display(prog.interner()).to_string(), "(a)");
    }

    #[test]
    fn left_recursion_hits_the_budget() {
        let (prog, db) = setup(
            "p(X) :- p(X).
             p(X) :- item(X).",
            &[("item", &["a"])],
        );
        let budget = CutBudget {
            max_steps: 10_000,
            max_depth: 64,
        };
        assert!(prog.all_solutions(&db, "p", &budget).is_err());
    }

    #[test]
    fn rejects_choice_and_id_atoms() {
        let i = Arc::new(Interner::new());
        assert!(CutProgram::parse("p(X) :- q(X, Y), choice((X), (Y)).", Arc::clone(&i)).is_err());
        assert!(CutProgram::parse("p(X) :- q[](X, 0).", i).is_err());
    }

    #[test]
    fn cut_interacts_with_variable_aliasing() {
        // Head var flows through an unbound call: exercise var-var links.
        let (prog, db) = setup(
            "top(X) :- mid(X).
             mid(Y) :- item(Y), !.",
            &[("item", &["z"]), ("item", &["y"])],
        );
        let rel = prog
            .all_solutions(&db, "top", &CutBudget::default())
            .unwrap();
        assert_eq!(names(&prog, &rel), ["y"], "canonical order: y before z");
    }
}
