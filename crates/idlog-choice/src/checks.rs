//! The paper's syntactic conditions on DATALOG^C programs.
//!
//! * **C1** — every clause contains at most one choice operator.
//! * **C2** — a clause containing a choice operator is not *related to* the
//!   head predicate of another clause that contains a choice operator
//!   (relatedness as in the paper's `P/q`: the clause's head transitively
//!   contributes to the predicate).
//!
//! We additionally check that no choice clause is recursive through its own
//! head predicate; the paper's footnote concedes that the \[KN88\] semantics
//! "does not seem to be appropriate for all DATALOG^C programs", and both the
//! direct semantics and the Theorem 2 translation need this exclusion to be
//! well-defined.

use idlog_common::{FxHashSet, Interner, SymbolId};
use idlog_parser::{Literal, Program};

use crate::error::{ChoiceError, ChoiceResult};

/// Predicates that (transitively) contribute to `q`: the heads of `P/q`.
fn reachable(program: &Program, q: SymbolId) -> FxHashSet<SymbolId> {
    let mut wanted: FxHashSet<SymbolId> = FxHashSet::default();
    wanted.insert(q);
    loop {
        let mut changed = false;
        for clause in &program.clauses {
            let head = clause.head[0].atom.pred.base();
            if wanted.contains(&head) {
                for lit in &clause.body {
                    if let Some(a) = lit.atom() {
                        changed |= wanted.insert(a.pred.base());
                    }
                    if let Literal::Choice { .. } = lit {
                        // Choice has no predicate.
                    }
                }
            }
        }
        if !changed {
            return wanted;
        }
    }
}

/// One structured violation of the paper's choice conditions, with clause
/// (and where meaningful, literal) anchors for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChoiceViolation {
    /// C1: more than one choice operator in a clause.
    C1 {
        /// The offending clause.
        clause: usize,
        /// Body indices of every choice literal in it.
        literals: Vec<usize>,
    },
    /// C2: two choice clauses are related (the first's head contributes to
    /// the second's head, or both share a head).
    C2 {
        /// Clause index and head predicate of the contributing choice clause.
        first: (usize, SymbolId),
        /// Clause index and head predicate of the choice clause it reaches.
        second: (usize, SymbolId),
    },
    /// A choice clause recursive through its own head predicate.
    Recursion {
        /// The offending clause.
        clause: usize,
        /// Its head predicate.
        pred: SymbolId,
        /// The body literal through which the head is reachable.
        literal: usize,
    },
}

/// Collect *every* violation of C1, C2, and the no-self-recursion condition
/// (single positive heads assumed — the parser accepts more, the caller's
/// engine validates that part). Violations come out grouped in that order,
/// so the first element reproduces the historical fail-fast error.
pub fn collect_violations(program: &Program) -> Vec<ChoiceViolation> {
    let mut violations = Vec::new();

    // C1 plus collect choice clauses.
    let mut choice_clauses: Vec<(usize, SymbolId)> = Vec::new();
    for (ci, clause) in program.clauses.iter().enumerate() {
        let choice_lits: Vec<usize> = clause
            .body
            .iter()
            .enumerate()
            .filter(|(_, l)| matches!(l, Literal::Choice { .. }))
            .map(|(i, _)| i)
            .collect();
        if choice_lits.len() > 1 {
            violations.push(ChoiceViolation::C1 {
                clause: ci,
                literals: choice_lits.clone(),
            });
        }
        if !choice_lits.is_empty() {
            choice_clauses.push((ci, clause.head[0].atom.pred.base()));
        }
    }

    // C2: for distinct choice clauses i, j: head(i) must not contribute to
    // head(j) (clause i ∉ P/head(j)).
    for &(ci, pi) in &choice_clauses {
        for &(cj, pj) in &choice_clauses {
            if pi == pj {
                continue;
            }
            if reachable(program, pj).contains(&pi) {
                violations.push(ChoiceViolation::C2 {
                    first: (ci, pi),
                    second: (cj, pj),
                });
            }
        }
    }
    // Two choice clauses with the same head violate C2 as well (each is
    // trivially related to the other's head).
    for (k, &(ci, pi)) in choice_clauses.iter().enumerate() {
        for &(cj, pj) in &choice_clauses[k + 1..] {
            if pi == pj {
                violations.push(ChoiceViolation::C2 {
                    first: (ci, pi),
                    second: (cj, pj),
                });
            }
        }
    }

    // No recursion through a choice clause's own head: the head must not be
    // reachable from the clause's own body.
    for &(ci, head) in &choice_clauses {
        for (li, lit) in program.clauses[ci].body.iter().enumerate() {
            if let Some(a) = lit.atom() {
                if reachable(program, a.pred.base()).contains(&head) {
                    violations.push(ChoiceViolation::Recursion {
                        clause: ci,
                        pred: head,
                        literal: li,
                    });
                    break; // one recursion report per clause
                }
            }
        }
    }
    violations
}

/// Check C1, C2, and the no-self-recursion condition, failing on the first
/// violation found.
pub fn check_conditions(program: &Program, interner: &Interner) -> ChoiceResult<()> {
    match collect_violations(program).into_iter().next() {
        None => Ok(()),
        Some(ChoiceViolation::C1 { clause, .. }) => Err(ChoiceError::C1Violation { clause }),
        Some(ChoiceViolation::C2 {
            first: (_, pi),
            second: (_, pj),
        }) => Err(ChoiceError::C2Violation {
            first: interner.resolve(pi),
            second: interner.resolve(pj),
        }),
        Some(ChoiceViolation::Recursion { pred, .. }) => Err(ChoiceError::ChoiceRecursion {
            pred: interner.resolve(pred),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_parser::parse_program;

    fn check(src: &str) -> ChoiceResult<()> {
        let i = Interner::new();
        let p = parse_program(src, &i).unwrap();
        check_conditions(&p, &i)
    }

    #[test]
    fn paper_select_emp_is_fine() {
        check("select_emp(N) :- emp(N, D), choice((D), (N)).").unwrap();
    }

    #[test]
    fn two_independent_choices_are_fine() {
        // Paper Example 5's (incorrect but legal) two-sample program.
        check(
            "emp1(N, D) :- emp(N, D), choice((D), (N)).
             emp2(N, D) :- emp(N, D), choice((D), (N)).
             two(N1) :- emp1(N1, D), emp2(N2, D), N1 != N2.",
        )
        .unwrap();
    }

    #[test]
    fn c1_two_choices_in_one_clause() {
        let err = check("s(N) :- emp(N, D), choice((D), (N)), choice((N), (D)).").unwrap_err();
        assert!(matches!(err, ChoiceError::C1Violation { .. }));
    }

    #[test]
    fn c2_chained_choice_clauses() {
        // q's choice clause body uses p, which is defined with choice:
        // clause for q is related to p's head.
        let err = check(
            "p(X) :- base(X, Y), choice((X), (Y)).
             q(X) :- p(X), other(X, Y), choice((X), (Y)).",
        )
        .unwrap_err();
        assert!(matches!(err, ChoiceError::C2Violation { .. }));
    }

    #[test]
    fn c2_same_head_twice() {
        let err = check(
            "p(X) :- a(X, Y), choice((X), (Y)).
             p(X) :- b(X, Y), choice((X), (Y)).",
        )
        .unwrap_err();
        assert!(matches!(err, ChoiceError::C2Violation { .. }));
    }

    #[test]
    fn self_recursive_choice_rejected() {
        let err = check("p(X) :- p(Y), e(Y, X), choice((Y), (X)).").unwrap_err();
        assert!(matches!(err, ChoiceError::ChoiceRecursion { .. }));
    }

    #[test]
    fn collect_reports_independent_violations_together() {
        // One C1 clause and, separately, a same-head C2 pair.
        let i = Interner::new();
        let p = parse_program(
            "s(N) :- emp(N, D), choice((D), (N)), choice((N), (D)).
             p(X) :- a(X, Y), choice((X), (Y)).
             p(X) :- b(X, Y), choice((X), (Y)).",
            &i,
        )
        .unwrap();
        let vs = collect_violations(&p);
        assert!(vs.iter().any(
            |v| matches!(v, ChoiceViolation::C1 { clause: 0, literals } if literals == &vec![1, 2])
        ));
        assert!(vs.iter().any(|v| matches!(
            v,
            ChoiceViolation::C2 {
                first: (1, _),
                second: (2, _)
            }
        )));
    }

    #[test]
    fn recursion_without_choice_is_fine() {
        check(
            "tc(X, Y) :- e(X, Y).
             tc(X, Y) :- e(X, Z), tc(Z, Y).
             s(X) :- tc(X, Y), choice((X), (Y)).",
        )
        .unwrap();
    }
}
