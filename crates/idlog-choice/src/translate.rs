//! The `P → Pᶜ` rewriting shared by the direct semantics and the IDLOG
//! translation.
//!
//! Each occurrence of `choice((X̄), (Ȳ))` in clause `r` is replaced by a
//! literal `ext_choice_i(X̄, Ȳ)` over a fresh *choice predicate*, and a
//! *choice clause* `ext_choice_i(X̄, Ȳ) :- body` (the body of `r` without the
//! choice operator) is added (\[KN88\], paper §3.2.2).

use std::sync::Arc;

use idlog_common::{Interner, SymbolId};
use idlog_parser::{Atom, Clause, Literal, Program, Term};

use crate::error::{ChoiceError, ChoiceResult};

/// One rewritten choice occurrence.
#[derive(Debug, Clone)]
pub struct ChoiceSite {
    /// The fresh choice predicate `ext_choice_i`.
    pub pred: SymbolId,
    /// Its name (for rendering and oracle keys).
    pub name: String,
    /// Number of grouped terms `X̄` (the FD's left side; the first `grouped`
    /// columns of the choice predicate).
    pub grouped: usize,
    /// Number of chosen terms `Ȳ`.
    pub chosen: usize,
    /// Index of the clause (in the rewritten program) that *uses* the choice
    /// predicate.
    pub use_clause: usize,
    /// Index of the added choice clause that *defines* it.
    pub def_clause: usize,
}

/// A DATALOG^C program rewritten to plain clauses plus choice metadata.
#[derive(Debug, Clone)]
pub struct Translated {
    /// The rewritten program `Pᶜ` (no choice literals).
    pub program: Program,
    /// One entry per choice occurrence, in source order.
    pub sites: Vec<ChoiceSite>,
    /// The shared interner.
    pub interner: Arc<Interner>,
}

/// Rewrite `program`, validating each choice literal structurally: terms
/// must be variables that occur in an ordinary positive body literal of the
/// same clause, and grouped/chosen sets must be disjoint.
pub fn translate(program: &Program, interner: &Arc<Interner>) -> ChoiceResult<Translated> {
    let mut out_clauses: Vec<Clause> = Vec::new();
    let mut sites: Vec<ChoiceSite> = Vec::new();
    let mut counter = 0usize;

    for (ci, clause) in program.clauses.iter().enumerate() {
        let choice_count = clause
            .body
            .iter()
            .filter(|l| matches!(l, Literal::Choice { .. }))
            .count();
        if choice_count == 0 {
            out_clauses.push(clause.clone());
            continue;
        }
        if choice_count > 1 {
            return Err(ChoiceError::C1Violation { clause: ci });
        }

        // Variables positively bound by the ordinary body.
        let positive_vars: Vec<&str> = clause
            .body
            .iter()
            .filter(|l| matches!(l, Literal::Pos(_)))
            .flat_map(|l| l.variables())
            .collect();

        let (grouped, chosen) = clause
            .body
            .iter()
            .find_map(|l| match l {
                Literal::Choice { grouped, chosen } => Some((grouped.clone(), chosen.clone())),
                _ => None,
            })
            .expect("counted above");

        let mut seen_vars: Vec<&str> = Vec::new();
        for t in grouped.iter().chain(chosen.iter()) {
            match t {
                Term::Var(v) => {
                    if !positive_vars.contains(&v.as_str()) {
                        return Err(ChoiceError::Invalid {
                            clause: ci,
                            message: format!(
                                "choice variable {v} does not occur in a positive body literal"
                            ),
                        });
                    }
                    if seen_vars.contains(&v.as_str()) {
                        return Err(ChoiceError::Invalid {
                            clause: ci,
                            message: format!("choice variable {v} occurs twice in the operator"),
                        });
                    }
                    seen_vars.push(v);
                }
                _ => {
                    return Err(ChoiceError::Invalid {
                        clause: ci,
                        message: "choice operands must be variables".into(),
                    })
                }
            }
        }
        if chosen.is_empty() {
            return Err(ChoiceError::Invalid {
                clause: ci,
                message: "choice must select at least one variable".into(),
            });
        }

        let name = format!("ext_choice_{counter}");
        counter += 1;
        let pred = interner.intern(&name);
        let mut args: Vec<Term> = grouped.clone();
        args.extend(chosen.iter().cloned());
        let choice_atom = Atom::ordinary(pred, args);

        // The clause with the operator replaced by the choice literal.
        let mut use_clause = clause.clone();
        for l in &mut use_clause.body {
            if matches!(l, Literal::Choice { .. }) {
                *l = Literal::Pos(choice_atom.clone());
            }
        }
        // The defining choice clause: same body minus the operator.
        let def_body: Vec<Literal> = clause
            .body
            .iter()
            .filter(|l| !matches!(l, Literal::Choice { .. }))
            .cloned()
            .collect();
        let def_clause = Clause::new(choice_atom, def_body);

        let use_idx = out_clauses.len();
        out_clauses.push(use_clause);
        let def_idx = out_clauses.len();
        out_clauses.push(def_clause);

        sites.push(ChoiceSite {
            pred,
            name,
            grouped: grouped.len(),
            chosen: chosen.len(),
            use_clause: use_idx,
            def_clause: def_idx,
        });
    }

    Ok(Translated {
        program: Program {
            clauses: out_clauses,
        },
        sites,
        interner: Arc::clone(interner),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_parser::parse_program;

    fn tr(src: &str) -> ChoiceResult<Translated> {
        let i = Arc::new(Interner::new());
        let p = parse_program(src, &i).unwrap();
        translate(&p, &i)
    }

    #[test]
    fn paper_select_emp_translation() {
        // Paper §3.2.2: select_emp(Name) :- emp(Name, Dept), choice((Dept),(Name)).
        let t = tr("select_emp(N) :- emp(N, D), choice((D), (N)).").unwrap();
        assert_eq!(t.sites.len(), 1);
        let site = &t.sites[0];
        assert_eq!(site.grouped, 1);
        assert_eq!(site.chosen, 1);
        assert_eq!(t.program.clauses.len(), 2);
        let printed = t.program.display(&t.interner).to_string();
        assert!(
            printed.contains("ext_choice_0(D, N) :- emp(N, D)."),
            "{printed}"
        );
        assert!(
            printed.contains("select_emp(N) :- emp(N, D), ext_choice_0(D, N)."),
            "{printed}"
        );
    }

    #[test]
    fn clause_without_choice_passes_through() {
        let t = tr("p(X) :- q(X). s(N) :- emp(N, D), choice((D), (N)).").unwrap();
        assert_eq!(t.program.clauses.len(), 3);
        assert_eq!(t.sites.len(), 1);
        assert_eq!(t.sites[0].use_clause, 1);
        assert_eq!(t.sites[0].def_clause, 2);
    }

    #[test]
    fn two_choices_in_one_clause_is_c1() {
        let err = tr("s(N) :- emp(N, D), choice((D), (N)), choice((N), (D)).").unwrap_err();
        assert!(matches!(err, ChoiceError::C1Violation { clause: 0 }));
    }

    #[test]
    fn choice_variable_must_be_positive() {
        let err = tr("s(N) :- emp(N, D), not x(Z), choice((D), (Z)).").unwrap_err();
        assert!(matches!(err, ChoiceError::Invalid { .. }));
    }

    #[test]
    fn empty_grouping_is_global_choice() {
        // choice((), (N)): one tuple overall.
        let t = tr("s(N) :- emp(N, D), choice((), (N)).").unwrap();
        assert_eq!(t.sites[0].grouped, 0);
        assert_eq!(t.sites[0].chosen, 1);
    }

    #[test]
    fn duplicate_choice_variable_rejected() {
        let err = tr("s(N) :- emp(N, D), choice((D), (D)).").unwrap_err();
        assert!(matches!(err, ChoiceError::Invalid { .. }));
    }

    #[test]
    fn constant_operand_rejected() {
        let err = tr("s(N) :- emp(N, D), choice((a), (N)).").unwrap_err();
        assert!(matches!(err, ChoiceError::Invalid { .. }));
    }
}
