//! The KN88 intended-model semantics, as described in the paper (§3.2.2):
//!
//! 1. construct the unique minimal (perfect) model of `Pᶜ`, where every
//!    choice clause contributes *all* candidate tuples to its choice
//!    predicate;
//! 2. for each choice predicate, pick a **functional subset** of its
//!    candidates w.r.t. `X̄ → Ȳ` — one tuple per `X̄`-group;
//! 3. re-evaluate the non-choice clauses with the chosen facts fixed.
//!
//! Every combination of functional subsets yields one intended model;
//! [`intended_models`] enumerates them all (budgeted) and
//! [`one_intended_model`] resolves a single one (canonically or by seed).

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use idlog_common::{Interner, Tuple};
use idlog_core::{
    evaluate_with_options, AnswerSet, CanonicalOracle, CoreError, EnumBudget, EvalOptions,
    EvalStats, ValidatedProgram,
};
use idlog_parser::Program;
use idlog_storage::{group_by, Database, Grouping, Relation};

use crate::checks::check_conditions;
use crate::error::{ChoiceError, ChoiceResult};
use crate::translate::{translate, Translated};

/// Budget for intended-model enumeration (same shape as the IDLOG one).
pub type ChoiceBudget = EnumBudget;

/// Everything shared by the enumeration and single-model paths.
struct Prepared {
    translated: Translated,
    /// `Pᶜ` with the choice clauses removed (choice predicates become
    /// inputs).
    fixed_program: ValidatedProgram,
    /// Candidate pool and its grouping, per choice site.
    pools: Vec<(Relation, Grouping)>,
    /// Statistics from the candidate-pool evaluation.
    pool_stats: EvalStats,
}

fn prepare(program: &Program, interner: &Arc<Interner>, db: &Database) -> ChoiceResult<Prepared> {
    check_conditions(program, interner)?;
    let translated = translate(program, interner)?;

    // Phase 1: candidate pools from the full Pᶜ.
    let pc = ValidatedProgram::new(translated.program.clone(), Arc::clone(interner))?;
    let out = evaluate_with_options(&pc, db, &mut CanonicalOracle, &EvalOptions::default())?;
    let pool_stats = out.stats();

    let mut pools = Vec::with_capacity(translated.sites.len());
    for site in &translated.sites {
        let rel = out
            .relation(&site.name)
            .cloned()
            .unwrap_or_else(|| Relation::elementary(site.grouped + site.chosen));
        let positions: Vec<usize> = (0..site.grouped).collect();
        let grouping = group_by(&rel, &positions, interner);
        pools.push((rel, grouping));
    }

    // Phase 3 program: non-choice clauses only.
    let def_clauses: Vec<usize> = translated.sites.iter().map(|s| s.def_clause).collect();
    let fixed_clauses: Vec<_> = translated
        .program
        .clauses
        .iter()
        .enumerate()
        .filter(|(i, _)| !def_clauses.contains(i))
        .map(|(_, c)| c.clone())
        .collect();
    let fixed_program = ValidatedProgram::new(
        Program {
            clauses: fixed_clauses,
        },
        Arc::clone(interner),
    )?;

    Ok(Prepared {
        translated,
        fixed_program,
        pools,
        pool_stats,
    })
}

/// Evaluate the fixed program with one concrete functional subset per site.
fn eval_with_selection(
    prep: &Prepared,
    db: &Database,
    output: &str,
    selection: &[Vec<usize>], // per site, chosen member index per group
) -> ChoiceResult<(Relation, EvalStats)> {
    let mut db2 = db.clone();
    for (site, ((rel, grouping), picks)) in prep
        .translated
        .sites
        .iter()
        .zip(prep.pools.iter().zip(selection))
    {
        db2.declare(&site.name, rel.rtype().clone())?;
        for (g, &pick) in picks.iter().enumerate() {
            let t: Tuple = grouping.group(g)[pick].clone();
            db2.insert(&site.name, t)?;
        }
    }
    let out = evaluate_with_options(
        &prep.fixed_program,
        &db2,
        &mut CanonicalOracle,
        &EvalOptions::default(),
    )?;
    let rel = out.relation(output).cloned().ok_or_else(|| {
        ChoiceError::Core(CoreError::Validation {
            clause: None,
            message: format!("output predicate {output} does not occur in the program"),
        })
    })?;
    Ok((rel, out.stats()))
}

/// Enumerate every intended model's answer for `output` (bounded).
///
/// ```
/// use std::sync::Arc;
/// use idlog_choice::{intended_models, ChoiceBudget};
/// use idlog_core::Interner;
/// use idlog_storage::Database;
///
/// let interner = Arc::new(Interner::new());
/// let program = idlog_core::parse_program(
///     "select_emp(N) :- emp(N, D), choice((D), (N)).",
///     &interner,
/// ).unwrap();
/// let mut db = Database::with_interner(Arc::clone(&interner));
/// db.insert_syms("emp", &["ann", "sales"]).unwrap();
/// db.insert_syms("emp", &["bob", "sales"]).unwrap();
///
/// let models =
///     intended_models(&program, &interner, &db, "select_emp", &ChoiceBudget::default())
///         .unwrap();
/// assert_eq!(models.len(), 2); // ann or bob
/// ```
pub fn intended_models(
    program: &Program,
    interner: &Arc<Interner>,
    db: &Database,
    output: &str,
    budget: &ChoiceBudget,
) -> ChoiceResult<AnswerSet> {
    let prep = prepare(program, interner, db)?;

    // Walk the product of per-group member choices across all sites.
    let group_sizes: Vec<Vec<usize>> = prep.pools.iter().map(|(_, g)| g.group_sizes()).collect();
    let mut selection: Vec<Vec<usize>> = group_sizes
        .iter()
        .map(|sizes| vec![0; sizes.len()])
        .collect();

    let mut relations = Vec::new();
    let mut models: u64 = 0;
    let mut complete = true;
    'outer: loop {
        models += 1;
        if models > budget.max_models {
            complete = false;
            break;
        }
        let (rel, _) = eval_with_selection(&prep, db, output, &selection)?;
        relations.push(rel);
        if relations.len() > budget.max_answers {
            // `collect` dedups; cap raw growth at the same bound to avoid
            // unbounded memory when every model differs.
            complete = false;
            break;
        }
        // Odometer over all (site, group) positions.
        for (si, sizes) in group_sizes.iter().enumerate() {
            for (gi, &size) in sizes.iter().enumerate() {
                if selection[si][gi] + 1 < size {
                    selection[si][gi] += 1;
                    continue 'outer;
                }
                selection[si][gi] = 0;
            }
        }
        break; // odometer wrapped: done
    }
    Ok(AnswerSet::collect(
        relations,
        complete,
        models.min(budget.max_models),
        interner,
    ))
}

/// Resolve one intended model. `seed: None` picks the canonically first
/// member of each group; `Some(s)` picks uniformly at random, reproducibly.
pub fn one_intended_model(
    program: &Program,
    interner: &Arc<Interner>,
    db: &Database,
    output: &str,
    seed: Option<u64>,
) -> ChoiceResult<(Relation, EvalStats)> {
    let prep = prepare(program, interner, db)?;
    let mut rng = seed.map(SmallRng::seed_from_u64);
    let selection: Vec<Vec<usize>> = prep
        .pools
        .iter()
        .map(|(_, grouping)| {
            grouping
                .group_sizes()
                .iter()
                .map(|&size| match &mut rng {
                    Some(rng) => rng.gen_range(0..size),
                    None => 0,
                })
                .collect()
        })
        .collect();
    let (rel, stats) = eval_with_selection(&prep, db, output, &selection)?;
    let mut total = prep.pool_stats;
    total += stats;
    Ok((rel, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_parser::parse_program;

    fn setup(src: &str, facts: &[(&str, &[&str])]) -> (Program, Arc<Interner>, Database) {
        let interner = Arc::new(Interner::new());
        let program = parse_program(src, &interner).unwrap();
        let mut db = Database::with_interner(Arc::clone(&interner));
        for (pred, cols) in facts {
            db.insert_syms(pred, cols).unwrap();
        }
        (program, interner, db)
    }

    #[test]
    fn paper_select_emp_one_per_dept() {
        let (p, i, db) = setup(
            "select_emp(N) :- emp(N, D), choice((D), (N)).",
            &[
                ("emp", &["ann", "sales"]),
                ("emp", &["bob", "sales"]),
                ("emp", &["cay", "dev"]),
            ],
        );
        let all = intended_models(&p, &i, &db, "select_emp", &ChoiceBudget::default()).unwrap();
        assert!(all.complete());
        // 2 (sales) × 1 (dev) = 2 intended models, both with 2 employees.
        assert_eq!(all.len(), 2);
        for rel in all.iter() {
            assert_eq!(rel.len(), 2);
        }
        let strings = all.to_sorted_strings(&i);
        assert!(strings.contains(&vec!["(ann)".to_string(), "(cay)".to_string()]));
        assert!(strings.contains(&vec!["(bob)".to_string(), "(cay)".to_string()]));
    }

    #[test]
    fn paper_sex_guess_choice_program() {
        // Paper §3.2.2: the DATALOG^C program equivalent to Example 2.
        let (p, i, db) = setup(
            "sex_guess(X, male) :- person(X).
             sex_guess(X, female) :- person(X).
             sex(X, Y) :- sex_guess(X, Y), choice((X), (Y)).
             man(X) :- sex(X, male).
             woman(X) :- sex(X, female).",
            &[("person", &["a"]), ("person", &["b"])],
        );
        let all = intended_models(&p, &i, &db, "man", &ChoiceBudget::default()).unwrap();
        let strings = all.to_sorted_strings(&i);
        assert_eq!(
            strings,
            vec![
                vec![],
                vec!["(a)".to_string()],
                vec!["(a)".to_string(), "(b)".to_string()],
                vec!["(b)".to_string()],
            ]
        );
    }

    #[test]
    fn one_model_is_among_all_models() {
        let (p, i, db) = setup(
            "s(N) :- emp(N, D), choice((D), (N)).",
            &[
                ("emp", &["a", "x"]),
                ("emp", &["b", "x"]),
                ("emp", &["c", "y"]),
            ],
        );
        let all = intended_models(&p, &i, &db, "s", &ChoiceBudget::default()).unwrap();
        for seed in [None, Some(1), Some(2), Some(99)] {
            let (rel, _) = one_intended_model(&p, &i, &db, "s", seed).unwrap();
            let tuples: Vec<Tuple> = rel.iter().cloned().collect();
            assert!(all.contains_answer(&tuples), "seed {seed:?}");
        }
    }

    #[test]
    fn empty_input_has_one_empty_model() {
        let (p, i, db) = setup("s(N) :- emp(N, D), choice((D), (N)).", &[]);
        let all = intended_models(&p, &i, &db, "s", &ChoiceBudget::default()).unwrap();
        assert_eq!(all.len(), 1);
        assert!(all.iter().next().unwrap().is_empty());
    }

    #[test]
    fn budget_truncation_is_flagged() {
        let emps: Vec<(String, String)> =
            (0..6).map(|k| (format!("e{k}"), "d".to_string())).collect();
        let facts: Vec<(&str, Vec<&str>)> = emps
            .iter()
            .map(|(n, d)| ("emp", vec![n.as_str(), d.as_str()]))
            .collect();
        let interner = Arc::new(Interner::new());
        let program = parse_program("s(N) :- emp(N, D), choice((D), (N)).", &interner).unwrap();
        let mut db = Database::with_interner(Arc::clone(&interner));
        for (pred, cols) in &facts {
            db.insert_syms(pred, cols).unwrap();
        }
        let budget = ChoiceBudget {
            max_models: 3,
            max_answers: 1000,
        };
        let all = intended_models(&program, &interner, &db, "s", &budget).unwrap();
        assert!(!all.complete());
        assert!(all.len() <= 3);
    }

    #[test]
    fn global_choice_selects_single_tuple() {
        let (p, i, db) = setup(
            "s(N) :- emp(N, D), choice((), (N)).",
            &[("emp", &["a", "x"]), ("emp", &["b", "y"])],
        );
        let all = intended_models(&p, &i, &db, "s", &ChoiceBudget::default()).unwrap();
        assert_eq!(all.len(), 2);
        for rel in all.iter() {
            assert_eq!(rel.len(), 1);
        }
    }

    #[test]
    fn condition_violations_surface() {
        let (p, i, db) = setup(
            "p(X) :- a(X, Y), choice((X), (Y)).
             p(X) :- b(X, Y), choice((X), (Y)).",
            &[],
        );
        assert!(matches!(
            intended_models(&p, &i, &db, "p", &ChoiceBudget::default()),
            Err(ChoiceError::C2Violation { .. })
        ));
    }
}
