//! The constructive side of **Theorem 2**: every DATALOG^C program
//! satisfying C1 and C2 has a q-equivalent stratified (four-stratum) IDLOG
//! program.
//!
//! Construction, per choice site `h :- body, choice((X̄), (Ȳ))`:
//!
//! ```text
//! ext_choice_i(X̄, Ȳ) :- body.                       % candidate pool
//! chosen_i(X̄, Ȳ)     :- ext_choice_i[X̄](X̄, Ȳ, 0).   % one Ȳ per X̄-group
//! h                  :- body, chosen_i(X̄, Ȳ).        % original clause
//! ```
//!
//! Reading the ID-relation of the pool grouped by `X̄` at tid 0 is precisely
//! "a functional subset of the pool w.r.t. X̄ → Ȳ": every group contributes
//! exactly one tuple, and every functional subset arises under some
//! ID-function. The resulting strata are: inputs (0), pools (1), chosen via
//! ID-literal (2), outputs (3) — the paper's four strata.

use std::sync::Arc;

use idlog_common::Interner;
use idlog_parser::{Atom, Clause, Literal, PredicateRef, Program, Term};

use crate::checks::check_conditions;
use crate::error::ChoiceResult;
use crate::translate::translate;

/// Translate a DATALOG^C program into a q-equivalent IDLOG program (AST).
pub fn to_idlog(program: &Program, interner: &Arc<Interner>) -> ChoiceResult<Program> {
    check_conditions(program, interner)?;
    let translated = translate(program, interner)?;
    let mut clauses = translated.program.clauses.clone();

    for (k, site) in translated.sites.iter().enumerate() {
        let chosen_name = format!("chosen_{k}");
        let chosen_pred = interner.intern(&chosen_name);

        // Fresh variable names that cannot clash with source variables
        // (source variables never contain `#`... the lexer forbids it, so
        // use generated uppercase names with a reserved suffix instead).
        let vars: Vec<Term> = (0..site.grouped + site.chosen)
            .map(|i| Term::Var(format!("Vc{k}_{i}")))
            .collect();

        // chosen_k(V…) :- ext_choice_k[grouping](V…, 0).
        let mut id_terms = vars.clone();
        id_terms.push(Term::Int(0));
        let grouping: Vec<usize> = (0..site.grouped).collect();
        let id_atom = Atom::id_version(site.pred, grouping, id_terms);
        let chosen_clause = Clause::new(
            Atom::ordinary(chosen_pred, vars.clone()),
            vec![Literal::Pos(id_atom)],
        );

        // In the use clause, retarget the ext_choice literal to chosen_k
        // (same argument terms as the original occurrence).
        let use_clause = &mut clauses[site.use_clause];
        for lit in &mut use_clause.body {
            if let Literal::Pos(atom) = lit {
                if atom.pred == PredicateRef::Ordinary(site.pred) {
                    atom.pred = PredicateRef::Ordinary(chosen_pred);
                }
            }
        }

        clauses.push(chosen_clause);
    }

    Ok(Program { clauses })
}

/// Like [`to_idlog`], returning the printed IDLOG source (useful for docs
/// and for feeding other tools).
pub fn to_idlog_source(program: &Program, interner: &Arc<Interner>) -> ChoiceResult<String> {
    let p = to_idlog(program, interner)?;
    Ok(p.display(interner).to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_core::{EnumBudget, Query, ValidatedProgram};
    use idlog_parser::parse_program;
    use idlog_storage::Database;

    use crate::eval::intended_models;

    fn setup(src: &str, facts: &[(&str, &[&str])]) -> (Program, Arc<Interner>, Database) {
        let interner = Arc::new(Interner::new());
        let program = parse_program(src, &interner).unwrap();
        let mut db = Database::with_interner(Arc::clone(&interner));
        for (pred, cols) in facts {
            db.insert_syms(pred, cols).unwrap();
        }
        (program, interner, db)
    }

    /// The heart of Theorem 2: same answer sets under both semantics.
    fn assert_q_equivalent(src: &str, facts: &[(&str, &[&str])], output: &str) {
        let (program, interner, db) = setup(src, facts);
        let budget = EnumBudget::default();
        let direct = intended_models(&program, &interner, &db, output, &budget).unwrap();
        assert!(direct.complete());

        let idlog_ast = to_idlog(&program, &interner).unwrap();
        let validated = ValidatedProgram::new(idlog_ast, Arc::clone(&interner)).unwrap();
        let q = Query::new(validated, output).unwrap();
        let translated = q.session(&db).budget(budget).all_answers().unwrap();
        assert!(translated.complete());

        assert!(
            direct.same_answers(&translated, &interner),
            "answer sets differ:\n direct: {:?}\n idlog: {:?}",
            direct.to_sorted_strings(&interner),
            translated.to_sorted_strings(&interner)
        );
    }

    #[test]
    fn theorem2_select_emp() {
        assert_q_equivalent(
            "select_emp(N) :- emp(N, D), choice((D), (N)).",
            &[
                ("emp", &["ann", "sales"]),
                ("emp", &["bob", "sales"]),
                ("emp", &["cay", "dev"]),
                ("emp", &["dan", "dev"]),
            ],
            "select_emp",
        );
    }

    #[test]
    fn theorem2_sex_guess() {
        assert_q_equivalent(
            "sex_guess(X, male) :- person(X).
             sex_guess(X, female) :- person(X).
             sex(X, Y) :- sex_guess(X, Y), choice((X), (Y)).
             man(X) :- sex(X, male).",
            &[("person", &["a"]), ("person", &["b"])],
            "man",
        );
    }

    #[test]
    fn theorem2_two_independent_choices() {
        assert_q_equivalent(
            "left(N) :- emp(N, D), choice((D), (N)).
             right(P) :- proj(P, T), choice((T), (P)).
             pair(N, P) :- left(N), right(P).",
            &[
                ("emp", &["a", "x"]),
                ("emp", &["b", "x"]),
                ("proj", &["p1", "t"]),
                ("proj", &["p2", "t"]),
            ],
            "pair",
        );
    }

    #[test]
    fn theorem2_global_choice() {
        assert_q_equivalent(
            "s(N) :- item(N, K), choice((), (N)).",
            &[
                ("item", &["a", "k1"]),
                ("item", &["b", "k2"]),
                ("item", &["c", "k1"]),
            ],
            "s",
        );
    }

    #[test]
    fn theorem2_choice_over_recursion() {
        // Choice applied to a recursively-defined relation (tc), which is
        // legal: the recursion does not pass through the choice clause.
        assert_q_equivalent(
            "tc(X, Y) :- e(X, Y).
             tc(X, Y) :- e(X, Z), tc(Z, Y).
             next(X, Y) :- tc(X, Y), choice((X), (Y)).",
            &[("e", &["a", "b"]), ("e", &["b", "c"])],
            "next",
        );
    }

    #[test]
    fn translated_source_is_stratified_idlog() {
        let (program, interner, _) = setup("select_emp(N) :- emp(N, D), choice((D), (N)).", &[]);
        let src = to_idlog_source(&program, &interner).unwrap();
        assert!(src.contains("ext_choice_0"), "{src}");
        assert!(src.contains("chosen_0"), "{src}");
        assert!(src.contains("[1]"), "grouping preserved: {src}");
        // And it validates as IDLOG.
        ValidatedProgram::parse(&src, interner).unwrap();
    }

    #[test]
    fn condition_violation_blocks_translation() {
        let (program, interner, _) = setup("p(X) :- p(Y), e(Y, X), choice((Y), (X)).", &[]);
        assert!(to_idlog(&program, &interner).is_err());
    }
}
