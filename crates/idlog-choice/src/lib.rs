//! DATALOG with choice (DATALOG^C, \[KN88\]) — the baseline non-deterministic
//! mechanism the paper compares IDLOG against.
//!
//! A clause `h :- body, choice((X̄), (Ȳ))` non-deterministically restricts the
//! body matches to a *functional subset*: for every value of `X̄`, exactly one
//! `Ȳ` survives. This crate provides:
//!
//! * [`checks`] — the paper's syntactic conditions C1 (at most one choice per
//!   clause) and C2 (no choice clause related to another choice clause's
//!   head);
//! * [`eval`] — the KN88 intended-model semantics, implemented exactly as the
//!   paper describes: minimal model of the translated program `Pᶜ`, then a
//!   functional subset per choice predicate, then the minimal model with the
//!   chosen facts fixed;
//! * [`mod@translate`] — the shared `P → Pᶜ` rewriting (choice literals become
//!   `ext_choice_i` predicates with defining clauses);
//! * [`to_idlog`] — the constructive side of **Theorem 2**: every DATALOG^C
//!   program satisfying C1/C2 (and not recursive through a choice clause's
//!   own head) has a q-equivalent stratified IDLOG program, built by reading
//!   each choice predicate's ID-relation at tid 0.

#![warn(missing_docs)]

pub mod checks;
pub mod cut;
pub mod error;
pub mod eval;
pub mod to_idlog;
pub mod translate;

pub use checks::{check_conditions, collect_violations, ChoiceViolation};
pub use cut::{CutBudget, CutProgram};
pub use error::{ChoiceError, ChoiceResult};
pub use eval::{intended_models, one_intended_model, ChoiceBudget};
pub use to_idlog::to_idlog_source;
pub use translate::{translate, ChoiceSite, Translated};
