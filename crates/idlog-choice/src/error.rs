//! Errors for the DATALOG^C layer.

use std::fmt;

use idlog_core::CoreError;
use idlog_parser::ParseError;

/// Failures in checking, translating, or evaluating a DATALOG^C program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChoiceError {
    /// Surface-syntax error.
    Parse(ParseError),
    /// Condition C1 violated: more than one choice operator in a clause.
    C1Violation {
        /// 0-based clause index.
        clause: usize,
    },
    /// Condition C2 violated: a choice clause is related to the head of
    /// another clause containing a choice operator.
    C2Violation {
        /// Head predicate of the first offending clause.
        first: String,
        /// Head predicate of the clause it is related to.
        second: String,
    },
    /// A choice clause is recursive through its own head predicate; the
    /// KN88 semantics (and the Theorem 2 translation) are not defined for it.
    ChoiceRecursion {
        /// The offending head predicate.
        pred: String,
    },
    /// A structural problem (choice variables not in the body, negated
    /// choice, …).
    Invalid {
        /// 0-based clause index.
        clause: usize,
        /// What is wrong.
        message: String,
    },
    /// The underlying IDLOG engine failed.
    Core(CoreError),
}

impl fmt::Display for ChoiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChoiceError::Parse(e) => write!(f, "{e}"),
            ChoiceError::C1Violation { clause } => {
                write!(
                    f,
                    "clause #{clause} has more than one choice operator (condition C1)"
                )
            }
            ChoiceError::C2Violation { first, second } => write!(
                f,
                "choice clause for {first} is related to choice clause head {second} \
                 (condition C2)"
            ),
            ChoiceError::ChoiceRecursion { pred } => {
                write!(
                    f,
                    "choice clause for {pred} is recursive through its own head"
                )
            }
            ChoiceError::Invalid { clause, message } => {
                write!(f, "invalid DATALOG^C clause #{clause}: {message}")
            }
            ChoiceError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ChoiceError {}

impl From<ParseError> for ChoiceError {
    fn from(e: ParseError) -> Self {
        ChoiceError::Parse(e)
    }
}

impl From<CoreError> for ChoiceError {
    fn from(e: CoreError) -> Self {
        ChoiceError::Core(e)
    }
}

impl From<idlog_common::CommonError> for ChoiceError {
    fn from(e: idlog_common::CommonError) -> Self {
        ChoiceError::Core(CoreError::Common(e))
    }
}

/// Result alias.
pub type ChoiceResult<T> = Result<T, ChoiceError>;
