//! ID-relations: relations augmented with tuple identifiers.
//!
//! An *ID-function* of a relation `g` (here: one sub-relation) is a bijection
//! from `g` to `{0, …, |g|−1}`. An *ID-relation of r on s* pairs every tuple
//! `t ∈ r` with the tid its sub-relation's ID-function assigns it (\[She90b\]
//! §2.1, Example 1). Choosing the ID-functions is the engine's only source of
//! non-determinism.

use rand::seq::SliceRandom;
use rand::Rng;

use idlog_common::{CommonError, CommonResult, FxHashMap, Interner, Tuple, Value};

use crate::group::{group_by, Grouping};
use crate::relation::Relation;

/// How tids are drawn within each sub-relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TidOrder {
    /// Tid = rank of the tuple in canonical (name) order within its group.
    /// Deterministic and interning-order independent.
    Canonical,
    /// A uniformly random permutation per group, drawn from the provided RNG.
    Random,
}

/// A concrete choice of ID-functions: a map from each tuple of the base
/// relation to its tid, for one grouping attribute set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdAssignment {
    positions: Vec<usize>,
    tids: FxHashMap<Tuple, i64>,
}

impl IdAssignment {
    /// Canonical assignment: within each group, tuples get tids in canonical
    /// order (tid 0 = canonically smallest).
    pub fn canonical(rel: &Relation, positions: &[usize], interner: &Interner) -> Self {
        let grouping = group_by(rel, positions, interner);
        Self::from_grouping_ranks(&grouping, |size| (0..size as i64).collect())
    }

    /// Random assignment: an independent uniform permutation per group.
    pub fn random<R: Rng>(
        rel: &Relation,
        positions: &[usize],
        interner: &Interner,
        rng: &mut R,
    ) -> Self {
        let grouping = group_by(rel, positions, interner);
        Self::from_grouping_ranks(&grouping, |size| {
            let mut perm: Vec<i64> = (0..size as i64).collect();
            perm.shuffle(rng);
            perm
        })
    }

    /// Build from an explicit permutation per group: `perms[g][k]` is the tid
    /// of the `k`-th canonical member of group `g`. Panics if a permutation's
    /// length disagrees with its group size (enumeration internals guarantee
    /// consistency).
    pub fn from_permutations(grouping: &Grouping, perms: &[Vec<i64>]) -> Self {
        assert_eq!(
            perms.len(),
            grouping.group_count(),
            "one permutation per group"
        );
        let mut tids = FxHashMap::default();
        for (g, (_, _)) in grouping.iter().enumerate() {
            let members = grouping.group(g);
            assert_eq!(
                perms[g].len(),
                members.len(),
                "permutation matches group size"
            );
            for (k, t) in members.iter().enumerate() {
                tids.insert(t.clone(), perms[g][k]);
            }
        }
        IdAssignment {
            positions: grouping.positions().to_vec(),
            tids,
        }
    }

    fn from_grouping_ranks(grouping: &Grouping, mut ranks: impl FnMut(usize) -> Vec<i64>) -> Self {
        let mut tids = FxHashMap::default();
        for g in 0..grouping.group_count() {
            let members = grouping.group(g);
            let perm = ranks(members.len());
            for (k, t) in members.iter().enumerate() {
                tids.insert(t.clone(), perm[k]);
            }
        }
        IdAssignment {
            positions: grouping.positions().to_vec(),
            tids,
        }
    }

    /// The grouping positions this assignment was built for.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// The tid assigned to `t`, if `t` was in the base relation.
    pub fn tid(&self, t: &Tuple) -> Option<i64> {
        self.tids.get(t).copied()
    }

    /// Number of tuples covered.
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// True when the base relation was empty.
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty()
    }
}

/// Materialize the ID-relation of `rel` under `assignment`: each tuple is
/// extended with its tid as a trailing `i`-sorted column.
///
/// Errors if the assignment does not cover every tuple of `rel` — a buggy
/// oracle must surface as a clean error, not take down the evaluation.
pub fn make_id_relation(rel: &Relation, assignment: &IdAssignment) -> CommonResult<Relation> {
    let mut out = Relation::new(rel.rtype().id_version());
    for t in rel.iter() {
        let tid = assignment.tid(t).ok_or_else(|| CommonError::Invariant {
            detail: format!(
                "ID-assignment covers {} tuple(s) but misses one of the base relation's {}",
                assignment.len(),
                rel.len()
            ),
        })?;
        out.insert_unchecked(t.with_appended(Value::Int(tid)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn example1_relation(i: &Interner) -> Relation {
        let mut r = Relation::elementary(2);
        for (x, y) in [("a", "c"), ("a", "d"), ("b", "c")] {
            r.insert(vec![Value::Sym(i.intern(x)), Value::Sym(i.intern(y))].into())
                .unwrap();
        }
        r
    }

    fn tid_of(i: &Interner, a: &IdAssignment, x: &str, y: &str) -> i64 {
        let t: Tuple = vec![Value::Sym(i.intern(x)), Value::Sym(i.intern(y))].into();
        a.tid(&t).unwrap()
    }

    #[test]
    fn canonical_assignment_matches_paper_first_listing() {
        // Paper Example 1 lists {(a,c,1),(a,d,0),(b,c,0)} and
        // {(a,c,0),(a,d,1),(b,c,0)} as the two ID-relations of r on {1}.
        // Canonical order puts (a,c) before (a,d), so the canonical
        // assignment is the second listing.
        let i = Interner::new();
        let r = example1_relation(&i);
        let a = IdAssignment::canonical(&r, &[0], &i);
        assert_eq!(tid_of(&i, &a, "a", "c"), 0);
        assert_eq!(tid_of(&i, &a, "a", "d"), 1);
        assert_eq!(tid_of(&i, &a, "b", "c"), 0);
    }

    #[test]
    fn tids_are_bijective_within_groups() {
        let i = Interner::new();
        let r = example1_relation(&i);
        let mut rng = SmallRng::seed_from_u64(7);
        let a = IdAssignment::random(&r, &[0], &i, &mut rng);
        // Group "a" has tids {0,1}; group "b" has {0}.
        let mut tids_a = vec![tid_of(&i, &a, "a", "c"), tid_of(&i, &a, "a", "d")];
        tids_a.sort_unstable();
        assert_eq!(tids_a, vec![0, 1]);
        assert_eq!(tid_of(&i, &a, "b", "c"), 0);
    }

    #[test]
    fn id_relation_has_id_version_type() {
        let i = Interner::new();
        let r = example1_relation(&i);
        let a = IdAssignment::canonical(&r, &[0], &i);
        let idr = make_id_relation(&r, &a).unwrap();
        assert_eq!(idr.rtype().to_string(), "001");
        assert_eq!(idr.len(), r.len());
    }

    #[test]
    fn empty_grouping_numbers_whole_relation() {
        let i = Interner::new();
        let r = example1_relation(&i);
        let a = IdAssignment::canonical(&r, &[], &i);
        let mut tids: Vec<i64> = r.iter().map(|t| a.tid(t).unwrap()).collect();
        tids.sort_unstable();
        assert_eq!(tids, vec![0, 1, 2]);
    }

    #[test]
    fn from_permutations_respects_explicit_choice() {
        let i = Interner::new();
        let r = example1_relation(&i);
        let g = group_by(&r, &[0], &i);
        // Swap the "a" group: (a,c)↦1, (a,d)↦0 — the paper's first listing.
        let a = IdAssignment::from_permutations(&g, &[vec![1, 0], vec![0]]);
        assert_eq!(tid_of(&i, &a, "a", "c"), 1);
        assert_eq!(tid_of(&i, &a, "a", "d"), 0);
        assert_eq!(tid_of(&i, &a, "b", "c"), 0);
    }

    #[test]
    fn incomplete_assignment_is_an_error_not_a_panic() {
        let i = Interner::new();
        let r = example1_relation(&i);
        let a = IdAssignment::canonical(&r, &[0], &i);
        let mut bigger = r.clone();
        bigger
            .insert(vec![Value::Sym(i.intern("x")), Value::Sym(i.intern("y"))].into())
            .unwrap();
        let err = make_id_relation(&bigger, &a).unwrap_err();
        assert!(err.to_string().contains("invariant"), "{err}");
    }

    #[test]
    fn missing_tuple_has_no_tid() {
        let i = Interner::new();
        let r = example1_relation(&i);
        let a = IdAssignment::canonical(&r, &[0], &i);
        let t: Tuple = vec![Value::Sym(i.intern("x")), Value::Sym(i.intern("y"))].into();
        assert_eq!(a.tid(&t), None);
    }
}
