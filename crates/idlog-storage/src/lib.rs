//! In-memory relational storage for the IDLOG workspace.
//!
//! Provides typed relations over two-sorted tuples, hash indexes on attribute
//! subsets, databases (named relations sharing an interner), and — the part
//! specific to the paper — **ID-relations**: augmentations of a relation `r`
//! with tuple identifiers assigned per *sub-relation* of `r` grouped by a set
//! of attributes (\[She90b\] §2.1).
//!
//! The non-determinism of IDLOG is exactly the freedom in choosing an
//! ID-function for each sub-relation; [`idrel`] constructs one ID-relation
//! given a choice, and [`enumerate`] iterates over all of them.

#![warn(missing_docs)]
// Storage faults must surface as errors, never panics: a panicking store
// would unwind through the engine's worker threads. Tests may still unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod database;
pub mod enumerate;
pub mod group;
pub mod idrel;
pub mod index;
pub mod relation;
pub mod storage;

pub use database::Database;
pub use enumerate::{
    count_bounded_assignments, count_id_functions, BoundedAssignmentIter, IdAssignmentIter,
};
pub use group::{group_by, Grouping};
pub use idrel::TidOrder;
pub use idrel::{make_id_relation, IdAssignment};
pub use index::Index;
pub use relation::Relation;
pub use storage::{
    estimated_tuple_bytes, estimated_value_bytes, BackendKind, ColumnarBackend, HashBackend, Probe,
    ScanIter, Storage,
};
