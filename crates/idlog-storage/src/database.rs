//! Databases: named relations sharing one interner.

use std::sync::Arc;

use idlog_common::{
    CommonError, CommonResult, FxHashMap, FxHashSet, Interner, RelType, SymbolId, Tuple, Value,
};

use crate::relation::Relation;

/// A database: a u-domain plus a finite relation per predicate name
/// (\[She90b\] §2.1: `(u-domain=D; r₁, …, r_n)`).
///
/// The u-domain is the union of all uninterpreted constants appearing in the
/// stored relations plus any explicitly declared domain elements (the paper
/// allows domain elements that appear in no tuple).
#[derive(Clone, Debug)]
pub struct Database {
    interner: Arc<Interner>,
    relations: FxHashMap<SymbolId, Relation>,
    extra_domain: FxHashSet<SymbolId>,
}

impl Database {
    /// An empty database over a fresh interner.
    pub fn new() -> Self {
        Self::with_interner(Arc::new(Interner::new()))
    }

    /// An empty database over a shared interner.
    pub fn with_interner(interner: Arc<Interner>) -> Self {
        Database {
            interner,
            relations: FxHashMap::default(),
            extra_domain: FxHashSet::default(),
        }
    }

    /// The shared interner.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Declare an (initially empty) relation. Overwrites nothing: returns an
    /// error if the predicate already exists with a different type.
    pub fn declare(&mut self, name: &str, rtype: RelType) -> CommonResult<SymbolId> {
        let id = self.interner.intern(name);
        if let Some(existing) = self.relations.get(&id) {
            if existing.rtype() != &rtype {
                return Err(CommonError::TypeMismatch {
                    detail: format!(
                        "relation {name} already declared with type {} (got {})",
                        existing.rtype(),
                        rtype
                    ),
                });
            }
        } else {
            self.relations.insert(id, Relation::new(rtype));
        }
        Ok(id)
    }

    /// Insert a fact, declaring the relation on first use by inferring its
    /// type from the tuple's sorts.
    pub fn insert(&mut self, name: &str, tuple: Tuple) -> CommonResult<()> {
        let id = self.interner.intern(name);
        let rel = self.relations.entry(id).or_insert_with(|| {
            Relation::new(RelType::new(
                tuple.values().iter().map(|v| v.sort()).collect(),
            ))
        });
        rel.insert(tuple)?;
        Ok(())
    }

    /// Convenience: insert a fact whose columns are all uninterpreted
    /// constants, given by name.
    pub fn insert_syms(&mut self, name: &str, cols: &[&str]) -> CommonResult<()> {
        let tuple: Tuple = cols
            .iter()
            .map(|c| Value::Sym(self.interner.intern(c)))
            .collect();
        self.insert(name, tuple)
    }

    /// Retract a fact. Returns `Ok(true)` when the tuple was present and
    /// removed, `Ok(false)` when the relation exists but lacked the tuple,
    /// and an error when the predicate is undeclared or the tuple is
    /// ill-typed for it. The (now possibly empty) relation stays declared:
    /// programs referencing it keep validating.
    pub fn retract(&mut self, name: &str, tuple: &Tuple) -> CommonResult<bool> {
        let rel = self
            .interner
            .get(name)
            .and_then(|id| self.relations.get_mut(&id))
            .ok_or_else(|| CommonError::TypeMismatch {
                detail: format!("cannot retract from undeclared relation {name}"),
            })?;
        rel.check_tuple(tuple)?;
        Ok(rel.remove_batch(&[tuple])[0])
    }

    /// Convenience: retract a fact whose columns are all uninterpreted
    /// constants, given by name.
    pub fn retract_syms(&mut self, name: &str, cols: &[&str]) -> CommonResult<bool> {
        let tuple: Tuple = cols
            .iter()
            .map(|c| Value::Sym(self.interner.intern(c)))
            .collect();
        self.retract(name, &tuple)
    }

    /// Add a u-domain element that need not appear in any tuple.
    pub fn add_domain_element(&mut self, name: &str) -> SymbolId {
        let id = self.interner.intern(name);
        self.extra_domain.insert(id);
        id
    }

    /// Look up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        let id = self.interner.get(name)?;
        self.relations.get(&id)
    }

    /// Look up a relation by predicate symbol.
    pub fn relation_by_id(&self, id: SymbolId) -> Option<&Relation> {
        self.relations.get(&id)
    }

    /// Iterate `(predicate, relation)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, &Relation)> {
        self.relations.iter().map(|(&id, r)| (id, r))
    }

    /// Predicate names present, in canonical (name) order.
    pub fn predicate_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .relations
            .keys()
            .map(|&id| self.interner.resolve(id))
            .collect();
        names.sort();
        names
    }

    /// The u-domain: every uninterpreted constant in any stored tuple, plus
    /// explicitly added domain elements.
    pub fn u_domain(&self) -> FxHashSet<SymbolId> {
        let mut dom = self.extra_domain.clone();
        for rel in self.relations.values() {
            dom.extend(rel.u_constants());
        }
        dom
    }

    /// Total number of stored facts.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Materialize the paper's `udom` relation: one unary fact per u-domain
    /// element (\[She90b\] §3.1's database program includes `udom(dᵢ)` for
    /// every domain element, realizing the domain-closure axiom). Call after
    /// all other facts are loaded; re-calling refreshes the relation.
    pub fn materialize_udom(&mut self, name: &str) -> CommonResult<()> {
        let id = self.interner.intern(name);
        let mut dom: Vec<SymbolId> = self.u_domain().into_iter().collect();
        // Exclude the udom relation's own previous contents from the domain
        // it encodes (they are re-derived from everything else).
        dom.retain(|&s| s != id);
        let mut rel = Relation::elementary(1);
        for s in dom {
            rel.insert(vec![Value::Sym(s)].into())?;
        }
        self.relations.insert(id, rel);
        Ok(())
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_infers_type() {
        let mut db = Database::new();
        db.insert_syms("emp", &["alice", "sales"]).unwrap();
        let r = db.relation("emp").unwrap();
        assert_eq!(r.rtype().to_string(), "00");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn mixed_sort_insert_rejected_after_inference() {
        let mut db = Database::new();
        db.insert_syms("p", &["a"]).unwrap();
        let bad: Tuple = vec![Value::Int(3)].into();
        assert!(db.insert("p", bad).is_err());
    }

    #[test]
    fn declare_conflicting_type_errors() {
        let mut db = Database::new();
        db.declare("p", RelType::elementary(2)).unwrap();
        assert!(db.declare("p", RelType::elementary(3)).is_err());
        assert!(db.declare("p", RelType::elementary(2)).is_ok());
    }

    #[test]
    fn u_domain_includes_extra_elements() {
        let mut db = Database::new();
        db.insert_syms("person", &["a"]).unwrap();
        db.add_domain_element("ghost");
        let dom = db.u_domain();
        assert_eq!(dom.len(), 2);
        assert!(dom.contains(&db.interner().get("ghost").unwrap()));
    }

    #[test]
    fn fact_count_sums_relations() {
        let mut db = Database::new();
        db.insert_syms("p", &["a"]).unwrap();
        db.insert_syms("p", &["b"]).unwrap();
        db.insert_syms("q", &["a", "b"]).unwrap();
        assert_eq!(db.fact_count(), 3);
        assert_eq!(db.predicate_names(), vec!["p".to_string(), "q".to_string()]);
    }

    #[test]
    fn materialize_udom_covers_the_domain() {
        let mut db = Database::new();
        db.insert_syms("e", &["a", "b"]).unwrap();
        db.add_domain_element("ghost");
        db.materialize_udom("udom").unwrap();
        let udom = db.relation("udom").unwrap();
        assert_eq!(udom.len(), 3);
        // Refreshing after new facts picks them up.
        db.insert_syms("e", &["c", "a"]).unwrap();
        db.materialize_udom("udom").unwrap();
        assert_eq!(db.relation("udom").unwrap().len(), 4);
    }

    #[test]
    fn retract_removes_and_keeps_relation_declared() {
        let mut db = Database::new();
        db.insert_syms("p", &["a"]).unwrap();
        db.insert_syms("p", &["b"]).unwrap();
        assert_eq!(db.retract_syms("p", &["a"]), Ok(true));
        assert_eq!(db.retract_syms("p", &["a"]), Ok(false));
        assert_eq!(db.relation("p").unwrap().len(), 1);
        // Retracting the last fact keeps the (empty) relation declared.
        assert_eq!(db.retract_syms("p", &["b"]), Ok(true));
        assert!(db.relation("p").unwrap().is_empty());
        // Undeclared predicate and ill-typed tuple both error.
        assert!(db.retract_syms("q", &["a"]).is_err());
        let bad: Tuple = vec![Value::Int(1)].into();
        assert!(db.retract("p", &bad).is_err());
    }

    #[test]
    fn missing_relation_is_none() {
        let db = Database::new();
        assert!(db.relation("nope").is_none());
    }
}
