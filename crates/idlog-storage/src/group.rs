//! Sub-relations grouped by an attribute set.
//!
//! The paper (§2.1): "A *sub-relation* of a relation r grouped by a set s of
//! attributes of r is a subset of r that contains all the tuples in r which
//! have the same value on each attribute in s." ID-functions are chosen per
//! sub-relation, so grouping is the first step of every tid assignment.

use idlog_common::{FxHashMap, Interner, SymbolId, Tuple, Value};

use crate::relation::Relation;

/// Rank every symbol occurring in `tuples` by name: `ranks[sym]` is the
/// symbol's position in name order. One interner pass per call, so sorting
/// by [`canonical_key`] needs no further interner access.
pub(crate) fn symbol_ranks<'a>(
    tuples: impl Iterator<Item = &'a Tuple>,
    interner: &Interner,
) -> FxHashMap<SymbolId, u32> {
    let mut syms: Vec<SymbolId> = Vec::new();
    let mut seen: FxHashMap<SymbolId, ()> = FxHashMap::default();
    for t in tuples {
        for v in t.values() {
            if let Value::Sym(s) = v {
                if seen.insert(*s, ()).is_none() {
                    syms.push(*s);
                }
            }
        }
    }
    let mut named: Vec<(String, SymbolId)> =
        syms.into_iter().map(|s| (interner.resolve(s), s)).collect();
    named.sort();
    named
        .into_iter()
        .enumerate()
        .map(|(rank, (_, s))| (s, rank as u32))
        .collect()
}

/// A cheap, canonical sort key for one tuple under a [`symbol_ranks`] map:
/// integers order before symbols (matching [`idlog_common::Value::cmp_canonical`]).
pub(crate) fn canonical_key(t: &Tuple, ranks: &FxHashMap<SymbolId, u32>) -> Vec<(u8, i64)> {
    t.values()
        .iter()
        .map(|v| match v {
            Value::Int(n) => (0u8, *n),
            Value::Sym(s) => (1u8, i64::from(ranks[s])),
        })
        .collect()
}

/// A relation partitioned into sub-relations by a grouping attribute set.
///
/// Groups and the tuples inside each group are kept in canonical order so
/// that group index `g` and member rank `k` are stable, deterministic
/// coordinates for enumeration and for the canonical tid oracle.
#[derive(Debug, Clone)]
pub struct Grouping {
    /// 0-based grouping positions, ascending.
    positions: Vec<usize>,
    /// Groups in canonical key order; each group's tuples in canonical order.
    groups: Vec<(Tuple, Vec<Tuple>)>,
}

impl Grouping {
    /// The grouping positions (0-based, ascending).
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Number of sub-relations.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Iterate `(key, members)` pairs in canonical key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &[Tuple])> {
        self.groups.iter().map(|(k, ts)| (k, ts.as_slice()))
    }

    /// The members of group `g` (canonical order).
    pub fn group(&self, g: usize) -> &[Tuple] {
        &self.groups[g].1
    }

    /// Sizes of all groups, in group order.
    pub fn group_sizes(&self) -> Vec<usize> {
        self.groups.iter().map(|(_, ts)| ts.len()).collect()
    }
}

/// Partition `rel` into sub-relations grouped by `positions` (0-based).
///
/// Positions are deduplicated and sorted; an empty position set yields a
/// single group containing the whole relation (the paper's most primitive
/// ID-predicate `p[∅]`).
pub fn group_by(rel: &Relation, positions: &[usize], interner: &Interner) -> Grouping {
    let mut pos: Vec<usize> = positions.to_vec();
    pos.sort_unstable();
    pos.dedup();

    let mut map: FxHashMap<Tuple, Vec<Tuple>> = FxHashMap::default();
    for t in rel.iter() {
        map.entry(t.project(&pos)).or_default().push(t.clone());
    }
    let mut groups: Vec<(Tuple, Vec<Tuple>)> = map.into_iter().collect();
    groups.sort_by(|(a, _), (b, _)| a.cmp_canonical(b, interner));
    for (_, members) in &mut groups {
        members.sort_by(|a, b| a.cmp_canonical(b, interner));
    }
    Grouping {
        positions: pos,
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_common::Value;

    fn example1_relation(i: &Interner) -> Relation {
        // Paper Example 1: r = {(a,c), (a,d), (b,c)}.
        let mut r = Relation::elementary(2);
        for (x, y) in [("a", "c"), ("a", "d"), ("b", "c")] {
            r.insert(vec![Value::Sym(i.intern(x)), Value::Sym(i.intern(y))].into())
                .unwrap();
        }
        r
    }

    #[test]
    fn example1_groups_by_first_attribute() {
        let i = Interner::new();
        let r = example1_relation(&i);
        let g = group_by(&r, &[0], &i);
        // Paper: sub-relations are {(a,c),(a,d)} and {(b,c)}.
        assert_eq!(g.group_count(), 2);
        assert_eq!(g.group_sizes(), vec![2, 1]);
    }

    #[test]
    fn empty_grouping_is_one_group() {
        let i = Interner::new();
        let r = example1_relation(&i);
        let g = group_by(&r, &[], &i);
        assert_eq!(g.group_count(), 1);
        assert_eq!(g.group(0).len(), 3);
    }

    #[test]
    fn grouping_by_all_attrs_is_singletons() {
        let i = Interner::new();
        let r = example1_relation(&i);
        let g = group_by(&r, &[0, 1], &i);
        assert_eq!(g.group_count(), 3);
        assert!(g.group_sizes().iter().all(|&n| n == 1));
    }

    #[test]
    fn positions_are_deduped_and_sorted() {
        let i = Interner::new();
        let r = example1_relation(&i);
        let g = group_by(&r, &[1, 0, 1], &i);
        assert_eq!(g.positions(), &[0, 1]);
    }

    #[test]
    fn groups_and_members_in_canonical_order() {
        let i = Interner::new();
        // Intern "z" before "a" so raw id order disagrees with name order.
        let mut r = Relation::elementary(2);
        for (x, y) in [("z", "q"), ("a", "q"), ("a", "p")] {
            r.insert(vec![Value::Sym(i.intern(x)), Value::Sym(i.intern(y))].into())
                .unwrap();
        }
        let g = group_by(&r, &[0], &i);
        let keys: Vec<String> = g
            .iter()
            .map(|(k, _)| i.resolve(k[0].as_sym().unwrap()))
            .collect();
        assert_eq!(keys, ["a", "z"]);
        // Within group "a": (a,p) before (a,q).
        let members = g.group(0);
        assert_eq!(i.resolve(members[0][1].as_sym().unwrap()), "p");
        assert_eq!(i.resolve(members[1][1].as_sym().unwrap()), "q");
    }

    #[test]
    fn empty_relation_has_no_groups() {
        let i = Interner::new();
        let r = Relation::elementary(2);
        let g = group_by(&r, &[0], &i);
        assert_eq!(g.group_count(), 0);
    }
}
