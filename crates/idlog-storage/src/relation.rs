//! Typed finite relations.

use idlog_common::{CommonError, CommonResult, FxHashSet, Interner, RelType, Tuple, Value};

/// A finite relation: a set of equal-arity, sort-consistent tuples.
///
/// Backed by a hash set for O(1) membership/insert during semi-naive
/// evaluation; [`Relation::sorted_canonical`] materializes a canonical order
/// when one is needed (display, canonical tid assignment).
#[derive(Clone, Debug)]
pub struct Relation {
    rtype: RelType,
    tuples: FxHashSet<Tuple>,
}

impl Relation {
    /// An empty relation of the given type.
    pub fn new(rtype: RelType) -> Self {
        Relation {
            rtype,
            tuples: FxHashSet::default(),
        }
    }

    /// An empty relation with all-uninterpreted columns.
    pub fn elementary(arity: usize) -> Self {
        Relation::new(RelType::elementary(arity))
    }

    /// Build from tuples, type-checking each.
    pub fn from_tuples(
        rtype: RelType,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> CommonResult<Self> {
        let mut rel = Relation::new(rtype);
        for t in tuples {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// The relation's declared type.
    pub fn rtype(&self) -> &RelType {
        &self.rtype
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.rtype.arity()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Check `t` against this relation's arity and column sorts.
    pub fn check_tuple(&self, t: &Tuple) -> CommonResult<()> {
        if t.arity() != self.arity() {
            return Err(CommonError::TypeMismatch {
                detail: format!(
                    "arity {} tuple in arity {} relation",
                    t.arity(),
                    self.arity()
                ),
            });
        }
        for (i, v) in t.values().iter().enumerate() {
            if v.sort() != self.rtype.sort(i) {
                return Err(CommonError::TypeMismatch {
                    detail: format!(
                        "column {} expects sort {} but value has sort {}",
                        i + 1,
                        self.rtype.sort(i),
                        v.sort()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Insert a tuple, type-checking it. Returns `Ok(true)` if newly added.
    pub fn insert(&mut self, t: Tuple) -> CommonResult<bool> {
        self.check_tuple(&t)?;
        Ok(self.tuples.insert(t))
    }

    /// Insert without a sort check. The caller must guarantee the tuple
    /// matches the relation type; the engine uses this on tuples it has
    /// already sort-checked at program validation time.
    pub fn insert_unchecked(&mut self, t: Tuple) -> bool {
        debug_assert!(self.check_tuple(&t).is_ok(), "ill-typed tuple inserted");
        #[cfg(feature = "failpoints")]
        if let Err(msg) = idlog_common::failpoint::hit("storage.insert") {
            panic!("{msg}");
        }
        self.tuples.insert(t)
    }

    /// Rough estimate of the heap bytes held by this relation's tuples:
    /// `len × (tuple header + arity × value size)`, ignoring hash-set
    /// overhead. Deliberately a pure function of `len` and `arity` so the
    /// engine's `max_bytes` ceiling trips at the same fixpoint round at any
    /// thread count.
    pub fn estimated_bytes(&self) -> u64 {
        let per_tuple = std::mem::size_of::<Tuple>() + self.arity() * std::mem::size_of::<Value>();
        (self.len() as u64) * (per_tuple as u64)
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Iterate tuples in arbitrary (hash) order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// All tuples in canonical (name-based) order. Deterministic across runs
    /// and interning orders.
    ///
    /// Implementation note: comparing through [`Tuple::cmp_canonical`] locks
    /// the interner per comparison; instead symbols are ranked by name once
    /// per call and tuples sorted by cheap integer keys.
    pub fn sorted_canonical(&self, interner: &Interner) -> Vec<Tuple> {
        let ranks = crate::group::symbol_ranks(self.tuples.iter(), interner);
        let mut v: Vec<Tuple> = self.tuples.iter().cloned().collect();
        v.sort_by_cached_key(|t| crate::group::canonical_key(t, &ranks));
        v
    }

    /// Set-equality with another relation (types must match too).
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.rtype == other.rtype && self.tuples == other.tuples
    }

    /// All symbols of sort `u` appearing in any tuple.
    pub fn u_constants(&self) -> FxHashSet<idlog_common::SymbolId> {
        let mut out = FxHashSet::default();
        for t in &self.tuples {
            for v in t.values() {
                if let Value::Sym(s) = v {
                    out.insert(*s);
                }
            }
        }
        out
    }

    /// Consume into the underlying tuple set.
    pub fn into_tuples(self) -> FxHashSet<Tuple> {
        self.tuples
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.set_eq(other)
    }
}

impl Eq for Relation {}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_common::Sort;

    fn sym(i: &Interner, n: &str) -> Value {
        Value::Sym(i.intern(n))
    }

    #[test]
    fn insert_and_contains() {
        let i = Interner::new();
        let mut r = Relation::elementary(2);
        let t: Tuple = vec![sym(&i, "a"), sym(&i, "b")].into();
        assert!(r.insert(t.clone()).unwrap());
        assert!(!r.insert(t.clone()).unwrap());
        assert!(r.contains(&t));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn rejects_wrong_arity() {
        let i = Interner::new();
        let mut r = Relation::elementary(2);
        let t: Tuple = vec![sym(&i, "a")].into();
        assert!(r.insert(t).is_err());
    }

    #[test]
    fn rejects_wrong_sort() {
        let i = Interner::new();
        let mut r = Relation::new(RelType::new(vec![Sort::U, Sort::I]));
        let bad: Tuple = vec![sym(&i, "a"), sym(&i, "b")].into();
        assert!(r.insert(bad).is_err());
        let good: Tuple = vec![sym(&i, "a"), Value::Int(3)].into();
        assert!(r.insert(good).is_ok());
    }

    #[test]
    fn sorted_canonical_is_name_order() {
        let i = Interner::new();
        let mut r = Relation::elementary(1);
        // Intern in an order that disagrees with name order.
        for n in ["zoo", "ant", "mid"] {
            r.insert(vec![sym(&i, n)].into()).unwrap();
        }
        let sorted = r.sorted_canonical(&i);
        let names: Vec<String> = sorted
            .iter()
            .map(|t| t[0].as_sym().map(|s| i.resolve(s)).unwrap())
            .collect();
        assert_eq!(names, ["ant", "mid", "zoo"]);
    }

    #[test]
    fn set_equality_ignores_insertion_order() {
        let i = Interner::new();
        let mut r1 = Relation::elementary(1);
        let mut r2 = Relation::elementary(1);
        r1.insert(vec![sym(&i, "a")].into()).unwrap();
        r1.insert(vec![sym(&i, "b")].into()).unwrap();
        r2.insert(vec![sym(&i, "b")].into()).unwrap();
        r2.insert(vec![sym(&i, "a")].into()).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn u_constants_collects_symbols_only() {
        let i = Interner::new();
        let mut r = Relation::new(RelType::new(vec![Sort::U, Sort::I]));
        r.insert(vec![sym(&i, "a"), Value::Int(7)].into()).unwrap();
        let cs = r.u_constants();
        assert_eq!(cs.len(), 1);
        assert!(cs.contains(&i.intern("a")));
    }
}
