//! Typed finite relations over a pluggable storage backend.

use idlog_common::{CommonError, CommonResult, FxHashSet, Interner, RelType, Sort, Tuple, Value};

use crate::storage::{
    estimated_tuple_bytes, BackendKind, ColumnarBackend, HashBackend, Probe, ScanIter, Storage,
};

/// Which concrete backend a relation delegates to. Static dispatch: every
/// call goes through one `match` and then straight into the backend.
#[derive(Clone, Debug)]
enum BackendImpl {
    Hash(HashBackend),
    Columnar(ColumnarBackend),
}

macro_rules! dispatch {
    ($self:expr, $b:ident => $e:expr) => {
        match &$self.backend {
            BackendImpl::Hash($b) => $e,
            BackendImpl::Columnar($b) => $e,
        }
    };
}

macro_rules! dispatch_mut {
    ($self:expr, $b:ident => $e:expr) => {
        match &mut $self.backend {
            BackendImpl::Hash($b) => $e,
            BackendImpl::Columnar($b) => $e,
        }
    };
}

/// A finite relation: a set of equal-arity, sort-consistent tuples.
///
/// The tuple store is one of the [`crate::storage`] backends (hash by
/// default; see [`Relation::new_in`] / [`Relation::to_backend`]); this type
/// layers the declared [`RelType`] and sort checking on top.
/// [`Relation::sorted_canonical`] materializes a canonical order when one is
/// needed (display, canonical tid assignment).
#[derive(Clone, Debug)]
pub struct Relation {
    rtype: RelType,
    backend: BackendImpl,
}

impl Relation {
    /// An empty relation of the given type, on the default (hash) backend.
    pub fn new(rtype: RelType) -> Self {
        Relation::new_in(rtype, BackendKind::Hash)
    }

    /// An empty relation of the given type on the given backend.
    pub fn new_in(rtype: RelType, kind: BackendKind) -> Self {
        let backend = match kind {
            BackendKind::Hash => BackendImpl::Hash(HashBackend::new()),
            BackendKind::Columnar => BackendImpl::Columnar(ColumnarBackend::new()),
        };
        Relation { rtype, backend }
    }

    /// An empty relation with all-uninterpreted columns.
    pub fn elementary(arity: usize) -> Self {
        Relation::new(RelType::elementary(arity))
    }

    /// Build from tuples, type-checking each.
    pub fn from_tuples(
        rtype: RelType,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> CommonResult<Self> {
        let mut rel = Relation::new(rtype);
        for t in tuples {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// The backend this relation stores its tuples in.
    pub fn backend_kind(&self) -> BackendKind {
        match &self.backend {
            BackendImpl::Hash(_) => BackendKind::Hash,
            BackendImpl::Columnar(_) => BackendKind::Columnar,
        }
    }

    /// Move this relation onto `kind`, converting the stored tuples in bulk
    /// when the backend actually changes (a no-op otherwise). Bulk
    /// conversion is how columnar relations should be built from existing
    /// data — point inserts into a columnar relation cost a one-tuple run
    /// each.
    pub fn to_backend(self, kind: BackendKind) -> Relation {
        if self.backend_kind() == kind {
            return self;
        }
        let Relation { rtype, backend } = self;
        let tuples = match backend {
            BackendImpl::Hash(b) => b.into_tuple_vec(),
            BackendImpl::Columnar(b) => b.into_tuple_vec(),
        };
        let backend = match kind {
            BackendKind::Hash => BackendImpl::Hash(HashBackend::from_tuples(tuples)),
            BackendKind::Columnar => BackendImpl::Columnar(ColumnarBackend::from_tuples(tuples)),
        };
        Relation { rtype, backend }
    }

    /// The relation's declared type.
    pub fn rtype(&self) -> &RelType {
        &self.rtype
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.rtype.arity()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        dispatch!(self, b => b.len())
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Check `t` against this relation's arity and column sorts.
    pub fn check_tuple(&self, t: &Tuple) -> CommonResult<()> {
        if t.arity() != self.arity() {
            return Err(CommonError::TypeMismatch {
                detail: format!(
                    "arity {} tuple in arity {} relation",
                    t.arity(),
                    self.arity()
                ),
            });
        }
        for (i, v) in t.values().iter().enumerate() {
            if v.sort() != self.rtype.sort(i) {
                return Err(CommonError::TypeMismatch {
                    detail: format!(
                        "column {} expects sort {} but value has sort {}",
                        i + 1,
                        self.rtype.sort(i),
                        v.sort()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Insert a tuple, type-checking it. Returns `Ok(true)` if newly added.
    pub fn insert(&mut self, t: Tuple) -> CommonResult<bool> {
        self.check_tuple(&t)?;
        Ok(dispatch_mut!(self, b => b.insert(t)))
    }

    /// Insert without a sort check. The caller must guarantee the tuple
    /// matches the relation type; the engine uses this on tuples it has
    /// already sort-checked at program validation time.
    pub fn insert_unchecked(&mut self, t: Tuple) -> bool {
        debug_assert!(self.check_tuple(&t).is_ok(), "ill-typed tuple inserted");
        #[cfg(feature = "failpoints")]
        if let Err(msg) = idlog_common::failpoint::hit("storage.insert") {
            panic!("{msg}");
        }
        dispatch_mut!(self, b => b.insert(t))
    }

    /// Insert one derivation batch; `flags[i]` is true when `batch[i]` was
    /// genuinely new (first occurrence wins for intra-batch duplicates).
    /// Duplicates cost a membership check and no allocation — only new
    /// tuples are cloned into the store. The caller must guarantee the
    /// tuples match the relation type.
    pub fn delta_batch_insert(&mut self, batch: &[&Tuple]) -> Vec<bool> {
        debug_assert!(
            batch.iter().all(|t| self.check_tuple(t).is_ok()),
            "ill-typed tuple in delta batch"
        );
        #[cfg(feature = "failpoints")]
        for t in batch {
            let _ = t;
            if let Err(msg) = idlog_common::failpoint::hit("storage.insert") {
                panic!("{msg}");
            }
        }
        dispatch_mut!(self, b => b.delta_batch_insert(batch))
    }

    /// Remove a batch of tuples; `flags[i]` is true when `batch[i]` was
    /// present and removed (first occurrence wins for intra-batch
    /// duplicates). Scan order of the survivors stays a deterministic
    /// function of the batch sequence on both backends; indexes are
    /// rebuilt. Used by incremental maintenance — the engine proper never
    /// removes.
    pub fn remove_batch(&mut self, batch: &[&Tuple]) -> Vec<bool> {
        debug_assert!(
            batch.iter().all(|t| self.check_tuple(t).is_ok()),
            "ill-typed tuple in remove batch"
        );
        dispatch_mut!(self, b => b.remove_batch(batch))
    }

    /// Make subsequent [`Relation::probe`] calls on `positions` indexed.
    /// The engine calls this at round barriers so rounds themselves are
    /// pure reads; indexes are maintained incrementally by inserts from
    /// then on.
    pub fn ensure_index(&mut self, positions: &[usize]) {
        dispatch_mut!(self, b => b.ensure_index(positions))
    }

    /// All tuples whose projection on `positions` equals `key` (one value
    /// per position, in position order). Indexed when
    /// [`Relation::ensure_index`] ran for `positions`; a correct (but
    /// linear) filtered scan otherwise.
    pub fn probe<'a>(&'a self, positions: &[usize], key: &Tuple) -> Probe<'a> {
        dispatch!(self, b => b.probe(positions, key))
    }

    /// Deterministic estimate of the bytes held by this relation's tuples:
    /// `len × estimated_tuple_bytes(rtype)`, where per-column cost depends
    /// on the declared sort (symbols weigh more than ints — they carry
    /// interner storage). Deliberately a pure function of `len` and the
    /// relation type so the engine's `max_bytes` ceiling trips at the same
    /// fixpoint round at any thread count, on any backend.
    pub fn estimated_bytes(&self) -> u64 {
        (self.len() as u64) * estimated_tuple_bytes(&self.rtype)
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        dispatch!(self, b => b.contains(t))
    }

    /// Iterate tuples in the backend's deterministic scan order (insertion
    /// order for hash, run-then-sorted order for columnar). Callers that
    /// need an order independent of insert history use
    /// [`Relation::sorted_canonical`].
    pub fn iter(&self) -> ScanIter<'_> {
        dispatch!(self, b => b.scan())
    }

    /// All tuples in canonical (name-based) order. Deterministic across runs
    /// and interning orders.
    ///
    /// Implementation note: comparing through [`Tuple::cmp_canonical`] locks
    /// the interner per comparison; instead symbols are ranked by name once
    /// per call and tuples sorted by cheap integer keys.
    pub fn sorted_canonical(&self, interner: &Interner) -> Vec<Tuple> {
        let ranks = crate::group::symbol_ranks(self.iter(), interner);
        let mut v: Vec<Tuple> = self.iter().cloned().collect();
        v.sort_by_cached_key(|t| crate::group::canonical_key(t, &ranks));
        v
    }

    /// Set-equality with another relation (types must match too). Works
    /// across backends: contents are compared as sets.
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.rtype == other.rtype
            && self.len() == other.len()
            && self.iter().all(|t| other.contains(t))
    }

    /// All symbols appearing in a column of declared sort `u`. Columns of
    /// sort `i` are skipped even if (through unchecked inserts) they held a
    /// symbol.
    pub fn u_constants(&self) -> FxHashSet<idlog_common::SymbolId> {
        let mut out = FxHashSet::default();
        for t in self.iter() {
            for (i, v) in t.values().iter().enumerate() {
                if self.rtype.sort(i) != Sort::U {
                    continue;
                }
                if let Value::Sym(s) = v {
                    out.insert(*s);
                }
            }
        }
        out
    }

    /// Consume into the underlying tuple set.
    pub fn into_tuples(self) -> FxHashSet<Tuple> {
        let vec = match self.backend {
            BackendImpl::Hash(b) => b.into_tuple_vec(),
            BackendImpl::Columnar(b) => b.into_tuple_vec(),
        };
        vec.into_iter().collect()
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.set_eq(other)
    }
}

impl Eq for Relation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: &Interner, n: &str) -> Value {
        Value::Sym(i.intern(n))
    }

    #[test]
    fn insert_and_contains() {
        let i = Interner::new();
        let mut r = Relation::elementary(2);
        let t: Tuple = vec![sym(&i, "a"), sym(&i, "b")].into();
        assert!(r.insert(t.clone()).unwrap());
        assert!(!r.insert(t.clone()).unwrap());
        assert!(r.contains(&t));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn rejects_wrong_arity() {
        let i = Interner::new();
        let mut r = Relation::elementary(2);
        let t: Tuple = vec![sym(&i, "a")].into();
        assert!(r.insert(t).is_err());
    }

    #[test]
    fn rejects_wrong_sort() {
        let i = Interner::new();
        let mut r = Relation::new(RelType::new(vec![Sort::U, Sort::I]));
        let bad: Tuple = vec![sym(&i, "a"), sym(&i, "b")].into();
        assert!(r.insert(bad).is_err());
        let good: Tuple = vec![sym(&i, "a"), Value::Int(3)].into();
        assert!(r.insert(good).is_ok());
    }

    #[test]
    fn sorted_canonical_is_name_order() {
        let i = Interner::new();
        let mut r = Relation::elementary(1);
        // Intern in an order that disagrees with name order.
        for n in ["zoo", "ant", "mid"] {
            r.insert(vec![sym(&i, n)].into()).unwrap();
        }
        let sorted = r.sorted_canonical(&i);
        let names: Vec<String> = sorted
            .iter()
            .map(|t| t[0].as_sym().map(|s| i.resolve(s)).unwrap())
            .collect();
        assert_eq!(names, ["ant", "mid", "zoo"]);
    }

    #[test]
    fn set_equality_ignores_insertion_order() {
        let i = Interner::new();
        let mut r1 = Relation::elementary(1);
        let mut r2 = Relation::elementary(1);
        r1.insert(vec![sym(&i, "a")].into()).unwrap();
        r1.insert(vec![sym(&i, "b")].into()).unwrap();
        r2.insert(vec![sym(&i, "b")].into()).unwrap();
        r2.insert(vec![sym(&i, "a")].into()).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn set_equality_crosses_backends() {
        let i = Interner::new();
        let mut hash = Relation::elementary(1);
        for n in ["a", "b", "c"] {
            hash.insert(vec![sym(&i, n)].into()).unwrap();
        }
        let columnar = hash.clone().to_backend(BackendKind::Columnar);
        assert_eq!(columnar.backend_kind(), BackendKind::Columnar);
        assert_eq!(hash, columnar);
        assert_eq!(columnar, hash);
        // And back again.
        let round_trip = columnar.clone().to_backend(BackendKind::Hash);
        assert_eq!(round_trip.backend_kind(), BackendKind::Hash);
        assert_eq!(round_trip, hash);
        // Divergence is detected in either direction.
        let mut bigger = columnar;
        bigger.insert(vec![sym(&i, "d")].into()).unwrap();
        assert_ne!(hash, bigger);
        assert_ne!(bigger, hash);
    }

    #[test]
    fn u_constants_collects_symbols_only() {
        let i = Interner::new();
        let mut r = Relation::new(RelType::new(vec![Sort::U, Sort::I]));
        r.insert(vec![sym(&i, "a"), Value::Int(7)].into()).unwrap();
        let cs = r.u_constants();
        assert_eq!(cs.len(), 1);
        assert!(cs.contains(&i.intern("a")));
    }

    #[test]
    fn u_constants_skips_non_u_columns() {
        // Regression: the doc promises "symbols in columns of sort u", but
        // the old implementation collected `Value::Sym` from every column.
        // An unchecked insert can place a symbol in an `i` column; it must
        // not leak into the u-domain.
        let i = Interner::new();
        let mut r = Relation::new(RelType::new(vec![Sort::U, Sort::I]));
        r.insert(vec![sym(&i, "a"), Value::Int(7)].into()).unwrap();
        let smuggled: Tuple = vec![sym(&i, "b"), sym(&i, "rogue")].into();
        // Bypass the sort check the way a buggy caller would.
        if !cfg!(debug_assertions) {
            r.insert_unchecked(smuggled);
            let cs = r.u_constants();
            assert!(cs.contains(&i.intern("b")));
            assert!(
                !cs.contains(&i.intern("rogue")),
                "sort-i column contributed to u_constants"
            );
        } else {
            // Under debug assertions the unchecked insert itself trips; the
            // filter is still exercised via the well-typed rows.
            let cs = r.u_constants();
            assert_eq!(cs.len(), 1);
        }
    }

    #[test]
    fn estimated_bytes_is_type_driven_and_symbol_heavy() {
        let i = Interner::new();
        let mut syms = Relation::new(RelType::new(vec![Sort::U]));
        let mut ints = Relation::new(RelType::new(vec![Sort::I]));
        for k in 0..10 {
            syms.insert(vec![sym(&i, &format!("s{k}"))].into()).unwrap();
            ints.insert(vec![Value::Int(k)].into()).unwrap();
        }
        assert!(
            syms.estimated_bytes() > ints.estimated_bytes(),
            "symbol columns must weigh more: {} vs {}",
            syms.estimated_bytes(),
            ints.estimated_bytes()
        );
        // Pure function of len and type: identical across backends.
        let syms_col = syms.clone().to_backend(BackendKind::Columnar);
        assert_eq!(syms.estimated_bytes(), syms_col.estimated_bytes());
    }

    #[test]
    fn probe_agrees_across_backends() {
        let i = Interner::new();
        let mut hash = Relation::elementary(2);
        for (x, y) in [("a", "c"), ("a", "d"), ("b", "c"), ("b", "d"), ("a", "e")] {
            hash.insert(vec![sym(&i, x), sym(&i, y)].into()).unwrap();
        }
        let mut columnar = hash.clone().to_backend(BackendKind::Columnar);
        hash.ensure_index(&[0]);
        columnar.ensure_index(&[0]);
        let key: Tuple = vec![sym(&i, "a")].into();
        let mut from_hash: Vec<Tuple> = hash.probe(&[0], &key).iter().cloned().collect();
        let mut from_col: Vec<Tuple> = columnar.probe(&[0], &key).iter().cloned().collect();
        assert_eq!(from_hash.len(), 3);
        from_hash.sort_unstable();
        from_col.sort_unstable();
        assert_eq!(from_hash, from_col);
    }

    #[test]
    fn delta_batches_keep_backends_in_lockstep() {
        let i = Interner::new();
        let mut hash = Relation::elementary(1);
        let mut col = Relation::new_in(RelType::elementary(1), BackendKind::Columnar);
        let batches: Vec<Vec<Tuple>> = vec![
            ["a", "b", "a"]
                .iter()
                .map(|n| vec![sym(&i, n)].into())
                .collect(),
            ["b", "c"].iter().map(|n| vec![sym(&i, n)].into()).collect(),
        ];
        for batch in &batches {
            let refs: Vec<&Tuple> = batch.iter().collect();
            let fh = hash.delta_batch_insert(&refs);
            let fc = col.delta_batch_insert(&refs);
            assert_eq!(fh, fc, "flags must agree across backends");
        }
        assert!(hash.set_eq(&col));
        assert_eq!(hash.len(), 3);
    }
}
