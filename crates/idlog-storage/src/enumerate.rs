//! Enumeration of all ID-functions of a relation on a grouping set.
//!
//! A relation with sub-relation sizes `n₁ … n_k` has `∏ nᵢ!` ID-relations
//! (paper Example 1: sizes 2 and 1 give 2·1 = 2). Enumeration walks the
//! cartesian product of per-group permutations in lexicographic order; the
//! first assignment yielded is the canonical one.

use idlog_common::Interner;

use crate::group::{group_by, Grouping};
use crate::idrel::IdAssignment;
use crate::relation::Relation;

/// Number of ID-functions of `rel` on `positions`, saturating at `u128::MAX`.
pub fn count_id_functions(rel: &Relation, positions: &[usize], interner: &Interner) -> u128 {
    let grouping = group_by(rel, positions, interner);
    grouping.group_sizes().iter().fold(1u128, |acc, &n| {
        (1..=n as u128).fold(acc, |a, f| a.saturating_mul(f))
    })
}

/// Iterator over every [`IdAssignment`] of a relation on a grouping set.
///
/// Yields assignments in lexicographic order of per-group permutations
/// (canonical assignment first). The iterator owns its grouping, so it stays
/// valid after the base relation is dropped.
pub struct IdAssignmentIter {
    grouping: Grouping,
    /// Current permutation per group, or `None` once exhausted.
    perms: Option<Vec<Vec<i64>>>,
}

impl IdAssignmentIter {
    /// Enumerate assignments of `rel` grouped by `positions`.
    pub fn new(rel: &Relation, positions: &[usize], interner: &Interner) -> Self {
        let grouping = group_by(rel, positions, interner);
        let perms = Some(
            grouping
                .group_sizes()
                .iter()
                .map(|&n| (0..n as i64).collect())
                .collect(),
        );
        IdAssignmentIter { grouping, perms }
    }

    /// Advance `perm` to the next lexicographic permutation. Returns false
    /// when `perm` was the last one (it is left unchanged).
    fn next_permutation(perm: &mut [i64]) -> bool {
        if perm.len() < 2 {
            return false;
        }
        // Standard next_permutation: find the rightmost ascent.
        let mut i = perm.len() - 1;
        while i > 0 && perm[i - 1] >= perm[i] {
            i -= 1;
        }
        if i == 0 {
            return false;
        }
        let mut j = perm.len() - 1;
        while perm[j] <= perm[i - 1] {
            j -= 1;
        }
        perm.swap(i - 1, j);
        perm[i..].reverse();
        true
    }
}

impl Iterator for IdAssignmentIter {
    type Item = IdAssignment;

    fn next(&mut self) -> Option<IdAssignment> {
        let perms = self.perms.as_mut()?;
        let assignment = IdAssignment::from_permutations(&self.grouping, perms);

        // Odometer across groups: bump the last group; on wrap, reset it and
        // carry into the previous group.
        let mut g = perms.len();
        loop {
            if g == 0 {
                self.perms = None;
                break;
            }
            g -= 1;
            if Self::next_permutation(&mut perms[g]) {
                break;
            }
            let n = perms[g].len() as i64;
            perms[g] = (0..n).collect();
        }
        Some(assignment)
    }
}

/// Number of *k-prefix arrangements* of `rel` on `positions`: assignments
/// that differ only in tids ≥ k are identified. `∏ m·(m−1)…(m−k+1)` over
/// group sizes `m`, saturating.
///
/// This is the enumeration space when every use of the ID-relation is known
/// to test only tids < k (the paper's footnotes 6–7: `N < 2` "ensures that
/// only two tuples of the relation emp will be used in the evaluation").
pub fn count_bounded_assignments(
    rel: &Relation,
    positions: &[usize],
    k: usize,
    interner: &Interner,
) -> u128 {
    let grouping = group_by(rel, positions, interner);
    grouping.group_sizes().iter().fold(1u128, |acc, &m| {
        let take = k.min(m);
        ((m - take + 1)..=m).fold(acc, |a, f| a.saturating_mul(f as u128))
    })
}

/// Iterator over the k-prefix arrangements of a relation on a grouping set:
/// per group, every ordered selection of `min(k, m)` members receives tids
/// `0..`, and the remaining members get the canonical completion (their
/// relative canonical order, shifted past the prefix).
///
/// Sound whenever the consumer only distinguishes tids < k: every full
/// ID-function agrees with exactly one arrangement on those tids.
pub struct BoundedAssignmentIter {
    grouping: Grouping,
    k: usize,
    /// Current selection per group: ordered member indices, or `None` when
    /// exhausted.
    selections: Option<Vec<Vec<usize>>>,
}

impl BoundedAssignmentIter {
    /// Enumerate arrangements of `rel` grouped by `positions`, bounded by
    /// `k` distinguishable tids.
    pub fn new(rel: &Relation, positions: &[usize], k: usize, interner: &Interner) -> Self {
        let grouping = group_by(rel, positions, interner);
        let selections = Some(
            grouping
                .group_sizes()
                .iter()
                .map(|&m| (0..k.min(m)).collect())
                .collect(),
        );
        BoundedAssignmentIter {
            grouping,
            k,
            selections,
        }
    }

    /// Advance `sel` to the next ordered selection (lexicographic over the
    /// index sequence, skipping repeats). Returns false at the end.
    fn next_selection(sel: &mut [usize], m: usize) -> bool {
        // Odometer over distinct-index sequences of fixed length.
        let len = sel.len();
        if len == 0 {
            return false;
        }
        let mut i = len;
        loop {
            if i == 0 {
                return false;
            }
            i -= 1;
            // Bump position i to the next value unused by positions < i.
            let mut v = sel[i] + 1;
            loop {
                if v >= m {
                    break;
                }
                if !sel[..i].contains(&v) {
                    sel[i] = v;
                    // Reset the tail to the smallest unused values.
                    for j in (i + 1)..len {
                        let mut w = 0;
                        while sel[..j].contains(&w) {
                            w += 1;
                        }
                        sel[j] = w;
                    }
                    return true;
                }
                v += 1;
            }
        }
    }
}

impl Iterator for BoundedAssignmentIter {
    type Item = IdAssignment;

    fn next(&mut self) -> Option<IdAssignment> {
        let selections = self.selections.as_mut()?;
        let assignment = bounded_assignment(&self.grouping, selections);
        // Odometer across groups.
        let mut g = selections.len();
        loop {
            if g == 0 {
                self.selections = None;
                break;
            }
            g -= 1;
            let m = self.grouping.group(g).len();
            if Self::next_selection(&mut selections[g], m) {
                break;
            }
            let take = self.k.min(m);
            selections[g] = (0..take).collect();
        }
        Some(assignment)
    }
}

/// Build the assignment for one selection vector: selected members get tids
/// `0..len`, the rest the canonical completion.
fn bounded_assignment(grouping: &Grouping, selections: &[Vec<usize>]) -> IdAssignment {
    let perms: Vec<Vec<i64>> = selections
        .iter()
        .enumerate()
        .map(|(g, sel)| {
            let m = grouping.group(g).len();
            let mut perm = vec![-1i64; m];
            for (tid, &member) in sel.iter().enumerate() {
                perm[member] = tid as i64;
            }
            let mut next = sel.len() as i64;
            for slot in perm.iter_mut() {
                if *slot < 0 {
                    *slot = next;
                    next += 1;
                }
            }
            perm
        })
        .collect();
    IdAssignment::from_permutations(grouping, &perms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_common::{Tuple, Value};

    fn example1_relation(i: &Interner) -> Relation {
        let mut r = Relation::elementary(2);
        for (x, y) in [("a", "c"), ("a", "d"), ("b", "c")] {
            r.insert(vec![Value::Sym(i.intern(x)), Value::Sym(i.intern(y))].into())
                .unwrap();
        }
        r
    }

    #[test]
    fn example1_count_is_two() {
        let i = Interner::new();
        let r = example1_relation(&i);
        assert_eq!(count_id_functions(&r, &[0], &i), 2);
    }

    #[test]
    fn example1_enumerates_both_listings() {
        let i = Interner::new();
        let r = example1_relation(&i);
        let all: Vec<IdAssignment> = IdAssignmentIter::new(&r, &[0], &i).collect();
        assert_eq!(all.len(), 2);
        let t_ac: Tuple = vec![Value::Sym(i.intern("a")), Value::Sym(i.intern("c"))].into();
        let t_ad: Tuple = vec![Value::Sym(i.intern("a")), Value::Sym(i.intern("d"))].into();
        let t_bc: Tuple = vec![Value::Sym(i.intern("b")), Value::Sym(i.intern("c"))].into();
        // Both paper listings appear, each exactly once.
        let tids: Vec<(i64, i64, i64)> = all
            .iter()
            .map(|a| {
                (
                    a.tid(&t_ac).unwrap(),
                    a.tid(&t_ad).unwrap(),
                    a.tid(&t_bc).unwrap(),
                )
            })
            .collect();
        assert!(tids.contains(&(0, 1, 0)));
        assert!(tids.contains(&(1, 0, 0)));
    }

    #[test]
    fn count_matches_product_of_factorials() {
        let i = Interner::new();
        // Groups of sizes 3 and 2 → 3!·2! = 12.
        let mut r = Relation::elementary(2);
        for (x, y) in [
            ("g1", "a"),
            ("g1", "b"),
            ("g1", "c"),
            ("g2", "a"),
            ("g2", "b"),
        ] {
            r.insert(vec![Value::Sym(i.intern(x)), Value::Sym(i.intern(y))].into())
                .unwrap();
        }
        assert_eq!(count_id_functions(&r, &[0], &i), 12);
        let all: Vec<_> = IdAssignmentIter::new(&r, &[0], &i).collect();
        assert_eq!(all.len(), 12);
        // All assignments are pairwise distinct.
        for (x, a) in all.iter().enumerate() {
            for b in &all[x + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn empty_relation_has_one_trivial_assignment() {
        let i = Interner::new();
        let r = Relation::elementary(2);
        assert_eq!(count_id_functions(&r, &[0], &i), 1);
        let all: Vec<_> = IdAssignmentIter::new(&r, &[0], &i).collect();
        assert_eq!(all.len(), 1);
        assert!(all[0].is_empty());
    }

    #[test]
    fn grouping_by_all_attrs_is_deterministic() {
        let i = Interner::new();
        let r = example1_relation(&i);
        // All groups singletons → exactly one assignment, all tids 0.
        let all: Vec<_> = IdAssignmentIter::new(&r, &[0, 1], &i).collect();
        assert_eq!(all.len(), 1);
        for t in r.iter() {
            assert_eq!(all[0].tid(t), Some(0));
        }
    }

    #[test]
    fn first_yielded_assignment_is_canonical() {
        let i = Interner::new();
        let r = example1_relation(&i);
        let first = IdAssignmentIter::new(&r, &[0], &i).next().unwrap();
        let canonical = IdAssignment::canonical(&r, &[0], &i);
        assert_eq!(first, canonical);
    }

    fn one_group_relation(i: &Interner, n: usize) -> Relation {
        let mut r = Relation::elementary(2);
        for k in 0..n {
            r.insert(
                vec![
                    Value::Sym(i.intern("g")),
                    Value::Sym(i.intern(&format!("m{k}"))),
                ]
                .into(),
            )
            .unwrap();
        }
        r
    }

    #[test]
    fn bounded_count_is_falling_factorial() {
        let i = Interner::new();
        let r = one_group_relation(&i, 5);
        // k=1: 5 arrangements; k=2: 5·4 = 20; k=5 (= m): 5! = 120.
        assert_eq!(count_bounded_assignments(&r, &[0], 1, &i), 5);
        assert_eq!(count_bounded_assignments(&r, &[0], 2, &i), 20);
        assert_eq!(count_bounded_assignments(&r, &[0], 5, &i), 120);
        // k larger than the group clamps to m.
        assert_eq!(count_bounded_assignments(&r, &[0], 9, &i), 120);
    }

    #[test]
    fn bounded_iter_k1_enumerates_each_leader_once() {
        let i = Interner::new();
        let r = one_group_relation(&i, 4);
        let all: Vec<IdAssignment> = BoundedAssignmentIter::new(&r, &[0], 1, &i).collect();
        assert_eq!(all.len(), 4);
        // Each member holds tid 0 in exactly one arrangement.
        let mut leaders: Vec<String> = all
            .iter()
            .map(|a| {
                let t = r
                    .iter()
                    .find(|t| a.tid(t) == Some(0))
                    .expect("every group has a tid-0 tuple");
                i.resolve(t[1].as_sym().unwrap())
            })
            .collect();
        leaders.sort();
        assert_eq!(leaders, ["m0", "m1", "m2", "m3"]);
    }

    #[test]
    fn bounded_iter_k2_enumerates_ordered_pairs() {
        let i = Interner::new();
        let r = one_group_relation(&i, 4);
        let all: Vec<IdAssignment> = BoundedAssignmentIter::new(&r, &[0], 2, &i).collect();
        assert_eq!(all.len(), 12);
        // All (tid0, tid1) leader pairs distinct.
        let mut pairs: Vec<(i64, i64)> = Vec::new();
        for a in &all {
            let find = |tid: i64| {
                r.iter()
                    .position(|t| a.tid(t) == Some(tid))
                    .expect("prefix tid present") as i64
            };
            pairs.push((find(0), find(1)));
        }
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 12);
    }

    #[test]
    fn bounded_iter_k_equals_group_size_is_full_enumeration() {
        let i = Interner::new();
        let r = example1_relation(&i);
        let bounded: Vec<IdAssignment> = BoundedAssignmentIter::new(&r, &[0], 2, &i).collect();
        let full: Vec<IdAssignment> = IdAssignmentIter::new(&r, &[0], &i).collect();
        assert_eq!(bounded.len(), full.len());
        for a in &full {
            assert!(bounded.contains(a));
        }
    }

    #[test]
    fn bounded_iter_multiple_groups() {
        let i = Interner::new();
        // Groups of 3 and 2 with k=1 → 3 × 2 = 6 arrangements.
        let mut r = Relation::elementary(2);
        for (g, m) in [("a", "x"), ("a", "y"), ("a", "z"), ("b", "x"), ("b", "y")] {
            r.insert(vec![Value::Sym(i.intern(g)), Value::Sym(i.intern(m))].into())
                .unwrap();
        }
        let all: Vec<IdAssignment> = BoundedAssignmentIter::new(&r, &[0], 1, &i).collect();
        assert_eq!(all.len(), 6);
        assert_eq!(count_bounded_assignments(&r, &[0], 1, &i), 6);
    }

    #[test]
    fn bounded_iter_on_empty_relation() {
        let i = Interner::new();
        let r = Relation::elementary(2);
        let all: Vec<IdAssignment> = BoundedAssignmentIter::new(&r, &[0], 1, &i).collect();
        assert_eq!(all.len(), 1);
        assert!(all[0].is_empty());
    }
}
