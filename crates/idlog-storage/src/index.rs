//! Hash indexes on attribute subsets.

use idlog_common::{FxHashMap, Tuple};

use crate::relation::Relation;

/// A hash index from a projection key (values at the indexed positions, in
/// position order) to the matching tuples.
///
/// **Legacy**: the join engine now probes through the maintained indexes of
/// [`crate::storage::Storage`] backends (offsets into the tuple store,
/// updated incrementally on insert) instead of rebuilding one of these —
/// which clones every tuple into per-key vectors — per round. Kept as the
/// baseline for the `index_maintenance` benchmark and for external callers.
/// The empty-position index degenerates to "all tuples under one key",
/// which callers should avoid in favour of scanning the relation.
#[derive(Debug, Clone)]
pub struct Index {
    positions: Vec<usize>,
    map: FxHashMap<Tuple, Vec<Tuple>>,
}

impl Index {
    /// Build an index of `rel` on the given 0-based positions.
    pub fn build(rel: &Relation, positions: &[usize]) -> Self {
        let mut map: FxHashMap<Tuple, Vec<Tuple>> = FxHashMap::default();
        for t in rel.iter() {
            map.entry(t.project(positions)).or_default().push(t.clone());
        }
        Index {
            positions: positions.to_vec(),
            map,
        }
    }

    /// The indexed positions.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Tuples whose projection on the indexed positions equals `key`.
    pub fn probe(&self, key: &Tuple) -> &[Tuple] {
        self.map.get(key).map_or(&[], |v| v.as_slice())
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_common::{Interner, Value};

    fn rel_ab(i: &Interner) -> Relation {
        let mut r = Relation::elementary(2);
        for (x, y) in [("a", "c"), ("a", "d"), ("b", "c")] {
            r.insert(vec![Value::Sym(i.intern(x)), Value::Sym(i.intern(y))].into())
                .unwrap();
        }
        r
    }

    #[test]
    fn probe_by_first_column() {
        let i = Interner::new();
        let r = rel_ab(&i);
        let idx = Index::build(&r, &[0]);
        assert_eq!(idx.key_count(), 2);
        let key: Tuple = vec![Value::Sym(i.intern("a"))].into();
        assert_eq!(idx.probe(&key).len(), 2);
        let key_b: Tuple = vec![Value::Sym(i.intern("b"))].into();
        assert_eq!(idx.probe(&key_b).len(), 1);
    }

    #[test]
    fn probe_missing_key_is_empty() {
        let i = Interner::new();
        let r = rel_ab(&i);
        let idx = Index::build(&r, &[0]);
        let key: Tuple = vec![Value::Sym(i.intern("zzz"))].into();
        assert!(idx.probe(&key).is_empty());
    }

    #[test]
    fn probe_by_both_columns_is_point_lookup() {
        let i = Interner::new();
        let r = rel_ab(&i);
        let idx = Index::build(&r, &[0, 1]);
        assert_eq!(idx.key_count(), 3);
        let key: Tuple = vec![Value::Sym(i.intern("a")), Value::Sym(i.intern("d"))].into();
        assert_eq!(idx.probe(&key).len(), 1);
    }

    #[test]
    fn empty_positions_groups_everything() {
        let i = Interner::new();
        let r = rel_ab(&i);
        let idx = Index::build(&r, &[]);
        assert_eq!(idx.key_count(), 1);
        assert_eq!(idx.probe(&Tuple::empty()).len(), 3);
    }
}
