//! Pluggable tuple-storage backends behind the [`Storage`] trait.
//!
//! The evaluator talks to relations through four operations — full `scan`,
//! indexed `probe`, `delta_batch_insert`, and membership — so the concrete
//! representation is swappable. Two backends ship:
//!
//! * [`HashBackend`] (the default): an append-only tuple store with a
//!   hash-based membership table and **incrementally maintained** hash
//!   indexes. Indexes map projection keys to offsets into the store, so
//!   index maintenance costs one `u32` per (index, new tuple) instead of a
//!   full tuple clone, and nothing is ever rebuilt from scratch.
//! * [`ColumnarBackend`]: sorted runs with merge-based semi-naive deltas.
//!   Every delta batch becomes one sorted, deduplicated run; probes and
//!   scans merge across runs; runs are compacted into one once too many
//!   accumulate. Ordered probes come from per-run sorted permutations
//!   (an LSM-style layout, kept fully in memory here).
//!
//! Both backends are deterministic: iteration order is a pure function of
//! the *sequence of batches applied*, never of hash-map iteration order or
//! thread count. Since the engine applies batches in round/work-item order,
//! which is itself thread-count-invariant, results and statistics stay
//! byte-identical at any `--threads` value per backend — and the derived
//! *sets* (and therefore all engine counters) are identical across backends.

use idlog_common::{FxHashMap, FxHashSet, RelType, Sort, Tuple};

/// Which [`Storage`] implementation a relation uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// Hash membership + incrementally maintained hash indexes (default).
    #[default]
    Hash,
    /// Sorted columnar runs with merge-based probes and compaction.
    Columnar,
}

impl BackendKind {
    /// Parse a backend name as accepted by `idlog run --backend` and the
    /// REPL `:backend` command.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "hash" => Some(BackendKind::Hash),
            "columnar" => Some(BackendKind::Columnar),
            _ => None,
        }
    }

    /// The canonical name (`"hash"` / `"columnar"`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Hash => "hash",
            BackendKind::Columnar => "columnar",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Deterministic per-value size estimate for governor byte accounting.
///
/// A pure function of the declared sort — never of the actual value — so
/// `Limits::max_bytes` trips at the same fixpoint round for any thread
/// count and any backend. Sort `u` values carry an interned symbol and a
/// share of the interner's name storage; sort `i` values are a bare `i64`
/// in a 16-byte enum.
pub fn estimated_value_bytes(sort: Sort) -> u64 {
    match sort {
        Sort::U => 48,
        Sort::I => 16,
    }
}

/// Deterministic per-tuple size estimate: a boxed-slice header plus
/// [`estimated_value_bytes`] per declared column.
pub fn estimated_tuple_bytes(rtype: &RelType) -> u64 {
    let header = std::mem::size_of::<Tuple>() as u64;
    header
        + rtype
            .sorts()
            .iter()
            .map(|&s| estimated_value_bytes(s))
            .sum::<u64>()
}

/// The storage abstraction the evaluator runs against.
///
/// Implementations must keep iteration ([`Storage::scan`], probe order) a
/// deterministic function of the sequence of inserts applied — the engine's
/// thread-count-invariance proof rests on it. Sort/arity checking is the
/// caller's job ([`crate::Relation`] layers it on top).
pub trait Storage {
    /// Number of stored tuples.
    fn len(&self) -> usize;

    /// True when nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test.
    fn contains(&self, t: &Tuple) -> bool;

    /// Insert one owned tuple; true when newly added.
    fn insert(&mut self, t: Tuple) -> bool;

    /// Insert a derivation batch; `flags[i]` is true when `batch[i]` was
    /// genuinely new (first occurrence wins for intra-batch duplicates).
    /// Only new tuples are cloned.
    fn delta_batch_insert(&mut self, batch: &[&Tuple]) -> Vec<bool>;

    /// Remove a batch of tuples; `flags[i]` is true when `batch[i]` was
    /// present and removed (first occurrence wins for intra-batch
    /// duplicates). Determinism contract: the post-removal scan order is a
    /// pure function of the sequence of batches applied, exactly as for
    /// inserts — incremental maintenance relies on it.
    fn remove_batch(&mut self, batch: &[&Tuple]) -> Vec<bool>;

    /// Iterate every tuple in the backend's canonical (deterministic)
    /// order: insertion order for hash, run-then-sorted order for columnar.
    fn scan(&self) -> ScanIter<'_>;

    /// Make subsequent [`Storage::probe`] calls on `positions` indexed.
    /// Called by the engine before each (read-only) round; probing without
    /// it stays correct but degrades to a filtered scan.
    fn ensure_index(&mut self, positions: &[usize]);

    /// All tuples whose projection on `positions` equals `key`.
    fn probe<'a>(&'a self, positions: &[usize], key: &Tuple) -> Probe<'a>;

    /// Consume into a tuple vector (in [`Storage::scan`] order).
    fn into_tuple_vec(self) -> Vec<Tuple>
    where
        Self: Sized;
}

/// Deterministic scanning iterator over a backend's tuples.
pub struct ScanIter<'a>(ScanInner<'a>);

enum ScanInner<'a> {
    Slice(std::slice::Iter<'a, Tuple>),
    Runs {
        rest: std::slice::Iter<'a, Run>,
        cur: std::slice::Iter<'a, Tuple>,
    },
}

impl<'a> Iterator for ScanIter<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        match &mut self.0 {
            ScanInner::Slice(it) => it.next(),
            ScanInner::Runs { rest, cur } => loop {
                if let Some(t) = cur.next() {
                    return Some(t);
                }
                match rest.next() {
                    Some(run) => *cur = run.tuples.iter(),
                    None => return None,
                }
            },
        }
    }
}

/// The result of an indexed [`Storage::probe`]: the matching tuples, as up
/// to one segment per physical partition (one for hash, one per run for
/// columnar). Borrowed from the backend; no tuples are cloned.
pub struct Probe<'a> {
    segments: Vec<ProbeSeg<'a>>,
    len: usize,
}

enum ProbeSeg<'a> {
    /// Offsets into a tuple store (a maintained index or a sorted run
    /// permutation's equal range).
    Offsets {
        offsets: &'a [u32],
        store: &'a [Tuple],
    },
    /// Materialized references (the unindexed fallback path).
    Owned(Vec<&'a Tuple>),
}

impl<'a> Probe<'a> {
    /// A probe with no matches.
    pub fn empty() -> Self {
        Probe {
            segments: Vec::new(),
            len: 0,
        }
    }

    /// Number of matching tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing matched.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate the matches in segment order.
    pub fn iter<'p>(&'p self) -> impl Iterator<Item = &'a Tuple> + 'p {
        self.segments.iter().flat_map(|seg| match seg {
            ProbeSeg::Offsets { offsets, store } => SegIter::Offsets {
                offsets: offsets.iter(),
                store,
            },
            ProbeSeg::Owned(v) => SegIter::Owned(v.iter()),
        })
    }
}

enum SegIter<'a, 'p> {
    Offsets {
        offsets: std::slice::Iter<'a, u32>,
        store: &'a [Tuple],
    },
    Owned(std::slice::Iter<'p, &'a Tuple>),
}

impl<'a> Iterator for SegIter<'a, '_> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        match self {
            SegIter::Offsets { offsets, store } => offsets.next().map(|&o| &store[o as usize]),
            SegIter::Owned(it) => it.next().copied(),
        }
    }
}

/// Hash the full tuple with the workspace `FxHasher`.
fn fx_hash(t: &Tuple) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = idlog_common::FxHasher::default();
    t.hash(&mut h);
    h.finish()
}

/// Compare `t`'s projection on `positions` against `key` (which has one
/// value per position, in position order).
fn cmp_proj(t: &Tuple, positions: &[usize], key: &Tuple) -> std::cmp::Ordering {
    for (k, &p) in positions.iter().enumerate() {
        let ord = t[p].cmp(&key[k]);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

fn proj_matches(t: &Tuple, positions: &[usize], key: &Tuple) -> bool {
    cmp_proj(t, positions, key) == std::cmp::Ordering::Equal
}

/// Append-only tuple store with hash membership and incrementally
/// maintained offset indexes.
///
/// `store` holds every tuple exactly once, in insertion order (which the
/// engine makes deterministic). `seen` maps a tuple's hash to the store
/// offsets carrying that hash — membership verifies equality against the
/// store, so collisions are handled and no second copy of any tuple exists.
/// Each index maps a projection key to store offsets and is updated on
/// every insert, fixing the former `Index::build`-per-round churn (full
/// rebuild + per-key tuple clones each round).
#[derive(Clone, Debug, Default)]
pub struct HashBackend {
    store: Vec<Tuple>,
    seen: FxHashMap<u64, Vec<u32>>,
    indexes: FxHashMap<Vec<usize>, FxHashMap<Tuple, Vec<u32>>>,
}

impl HashBackend {
    /// An empty backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from owned tuples, dropping duplicates.
    pub fn from_tuples(tuples: Vec<Tuple>) -> Self {
        let mut b = Self::default();
        b.store.reserve(tuples.len());
        for t in tuples {
            Storage::insert(&mut b, t);
        }
        b
    }

    /// Offset the tuple is stored at, when present.
    fn find(&self, t: &Tuple) -> Option<u32> {
        let bucket = self.seen.get(&fx_hash(t))?;
        bucket
            .iter()
            .copied()
            .find(|&o| self.store[o as usize] == *t)
    }

    /// Record a tuple known to be absent. Returns its offset.
    fn commit(&mut self, t: Tuple, hash: u64) -> u32 {
        debug_assert!(
            self.store.len() < u32::MAX as usize,
            "store offset overflow"
        );
        let off = self.store.len() as u32;
        self.seen.entry(hash).or_default().push(off);
        for (positions, map) in &mut self.indexes {
            map.entry(t.project(positions)).or_default().push(off);
        }
        self.store.push(t);
        off
    }
}

impl Storage for HashBackend {
    fn len(&self) -> usize {
        self.store.len()
    }

    fn contains(&self, t: &Tuple) -> bool {
        self.find(t).is_some()
    }

    fn insert(&mut self, t: Tuple) -> bool {
        if self.find(&t).is_some() {
            return false;
        }
        let hash = fx_hash(&t);
        self.commit(t, hash);
        true
    }

    fn delta_batch_insert(&mut self, batch: &[&Tuple]) -> Vec<bool> {
        batch
            .iter()
            .map(|&t| {
                if self.find(t).is_some() {
                    false
                } else {
                    let hash = fx_hash(t);
                    self.commit(t.clone(), hash);
                    true
                }
            })
            .collect()
    }

    fn remove_batch(&mut self, batch: &[&Tuple]) -> Vec<bool> {
        let mut victims: FxHashSet<&Tuple> = FxHashSet::default();
        let flags: Vec<bool> = batch
            .iter()
            .map(|&t| self.find(t).is_some() && victims.insert(t))
            .collect();
        if victims.is_empty() {
            return flags;
        }
        // Removal is rare relative to inserts (maintenance only), so the
        // simple deterministic plan is to keep the survivors in their
        // existing order and rebuild the membership table and indexes.
        let survivors: Vec<Tuple> = std::mem::take(&mut self.store)
            .into_iter()
            .filter(|t| !victims.contains(t))
            .collect();
        let index_keys: Vec<Vec<usize>> = self.indexes.keys().cloned().collect();
        *self = HashBackend::from_tuples(survivors);
        for positions in index_keys {
            self.ensure_index(&positions);
        }
        flags
    }

    fn scan(&self) -> ScanIter<'_> {
        ScanIter(ScanInner::Slice(self.store.iter()))
    }

    fn ensure_index(&mut self, positions: &[usize]) {
        if self.indexes.contains_key(positions) {
            return;
        }
        let mut map: FxHashMap<Tuple, Vec<u32>> = FxHashMap::default();
        for (off, t) in self.store.iter().enumerate() {
            map.entry(t.project(positions))
                .or_default()
                .push(off as u32);
        }
        self.indexes.insert(positions.to_vec(), map);
    }

    fn probe<'a>(&'a self, positions: &[usize], key: &Tuple) -> Probe<'a> {
        if let Some(map) = self.indexes.get(positions) {
            match map.get(key) {
                Some(offsets) => Probe {
                    len: offsets.len(),
                    segments: vec![ProbeSeg::Offsets {
                        offsets,
                        store: &self.store,
                    }],
                },
                None => Probe::empty(),
            }
        } else {
            let v: Vec<&Tuple> = self
                .store
                .iter()
                .filter(|t| proj_matches(t, positions, key))
                .collect();
            Probe {
                len: v.len(),
                segments: if v.is_empty() {
                    Vec::new()
                } else {
                    vec![ProbeSeg::Owned(v)]
                },
            }
        }
    }

    fn into_tuple_vec(self) -> Vec<Tuple> {
        self.store
    }
}

/// How many sorted runs may accumulate before they are compacted into one.
/// Small enough that probes stay a handful of binary searches, large enough
/// that compaction is amortized across many delta rounds.
const MAX_RUNS: usize = 8;

/// One sorted, deduplicated batch of tuples plus its per-index sorted
/// permutations. Runs are immutable once built, so a permutation can never
/// go stale.
#[derive(Clone, Debug)]
struct Run {
    /// Sorted by the derived (interning-order) `Ord` on [`Tuple`].
    tuples: Vec<Tuple>,
    /// For each indexed position set: offsets into `tuples`, ordered by the
    /// tuples' projection on those positions (ties in store order).
    perms: FxHashMap<Vec<usize>, Vec<u32>>,
}

impl Run {
    fn from_sorted(tuples: Vec<Tuple>, indexed: &FxHashSet<Vec<usize>>) -> Self {
        let mut run = Run {
            tuples,
            perms: FxHashMap::default(),
        };
        for positions in indexed {
            run.build_perm(positions);
        }
        run
    }

    fn build_perm(&mut self, positions: &[usize]) {
        if self.perms.contains_key(positions) {
            return;
        }
        let mut perm: Vec<u32> = (0..self.tuples.len() as u32).collect();
        perm.sort_by(|&a, &b| {
            let (ta, tb) = (&self.tuples[a as usize], &self.tuples[b as usize]);
            positions
                .iter()
                .map(|&p| ta[p].cmp(&tb[p]))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        self.perms.insert(positions.to_vec(), perm);
    }
}

/// Sorted columnar runs with merge-based deltas.
///
/// Every delta batch becomes one sorted run disjoint from all earlier runs
/// (already-present tuples are filtered out first), so a scan is a run-order
/// concatenation and membership is one binary search per run. When more than
/// `MAX_RUNS` runs accumulate they are compacted into a single sorted run
/// — deterministic, since compaction is a pure function of the batch
/// sequence. Point inserts degrade to one-tuple runs; bulk construction
/// should go through [`ColumnarBackend::from_tuples`] (which is how
/// [`crate::Relation::to_backend`] builds one).
#[derive(Clone, Debug, Default)]
pub struct ColumnarBackend {
    runs: Vec<Run>,
    len: usize,
    indexed: FxHashSet<Vec<usize>>,
}

impl ColumnarBackend {
    /// An empty backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from owned tuples: one sorted, deduplicated run.
    pub fn from_tuples(mut tuples: Vec<Tuple>) -> Self {
        tuples.sort_unstable();
        tuples.dedup();
        let len = tuples.len();
        let mut b = ColumnarBackend::default();
        if len > 0 {
            b.runs.push(Run::from_sorted(tuples, &b.indexed));
            b.len = len;
        }
        b
    }

    /// Append a sorted batch known to be disjoint from every stored tuple.
    fn push_run(&mut self, fresh: Vec<Tuple>) {
        debug_assert!(
            fresh.windows(2).all(|w| w[0] < w[1]),
            "run must be sorted+deduped"
        );
        self.len += fresh.len();
        self.runs.push(Run::from_sorted(fresh, &self.indexed));
        if self.runs.len() > MAX_RUNS {
            self.compact();
        }
    }

    /// Merge every run into one. Runs are mutually disjoint, so a plain
    /// collect-and-sort is a correct k-way merge.
    fn compact(&mut self) {
        let mut all: Vec<Tuple> = Vec::with_capacity(self.len);
        for run in self.runs.drain(..) {
            all.extend(run.tuples);
        }
        all.sort_unstable();
        debug_assert_eq!(all.len(), self.len, "runs must be disjoint");
        self.runs.push(Run::from_sorted(all, &self.indexed));
    }
}

impl Storage for ColumnarBackend {
    fn len(&self) -> usize {
        self.len
    }

    fn contains(&self, t: &Tuple) -> bool {
        self.runs
            .iter()
            .any(|run| run.tuples.binary_search(t).is_ok())
    }

    fn insert(&mut self, t: Tuple) -> bool {
        if self.contains(&t) {
            return false;
        }
        self.push_run(vec![t]);
        true
    }

    fn delta_batch_insert(&mut self, batch: &[&Tuple]) -> Vec<bool> {
        let mut flags = Vec::with_capacity(batch.len());
        let mut fresh: Vec<Tuple> = Vec::new();
        let mut seen: FxHashSet<&Tuple> = FxHashSet::default();
        for &t in batch {
            let new = !seen.contains(t) && !self.contains(t);
            if new {
                seen.insert(t);
                fresh.push(t.clone());
            }
            flags.push(new);
        }
        if !fresh.is_empty() {
            fresh.sort_unstable();
            self.push_run(fresh);
        }
        flags
    }

    fn remove_batch(&mut self, batch: &[&Tuple]) -> Vec<bool> {
        let mut victims: FxHashSet<&Tuple> = FxHashSet::default();
        let flags: Vec<bool> = batch
            .iter()
            .map(|&t| self.contains(t) && victims.insert(t))
            .collect();
        if victims.is_empty() {
            return flags;
        }
        let mut removed = 0usize;
        for run in &mut self.runs {
            let before = run.tuples.len();
            run.tuples.retain(|t| !victims.contains(t));
            if run.tuples.len() != before {
                removed += before - run.tuples.len();
                // A run's permutations index into its tuple vector; rebuild
                // them against the surviving (still sorted) tuples.
                let keys: Vec<Vec<usize>> = run.perms.keys().cloned().collect();
                run.perms.clear();
                for positions in &keys {
                    run.build_perm(positions);
                }
            }
        }
        self.runs.retain(|run| !run.tuples.is_empty());
        self.len -= removed;
        flags
    }

    fn scan(&self) -> ScanIter<'_> {
        ScanIter(ScanInner::Runs {
            rest: self.runs.iter(),
            cur: [].iter(),
        })
    }

    fn ensure_index(&mut self, positions: &[usize]) {
        if self.indexed.insert(positions.to_vec()) {
            for run in &mut self.runs {
                run.build_perm(positions);
            }
        }
    }

    fn probe<'a>(&'a self, positions: &[usize], key: &Tuple) -> Probe<'a> {
        let mut segments = Vec::new();
        let mut len = 0usize;
        for run in &self.runs {
            if let Some(perm) = run.perms.get(positions) {
                let lo = perm.partition_point(|&i| {
                    cmp_proj(&run.tuples[i as usize], positions, key).is_lt()
                });
                let hi = perm.partition_point(|&i| {
                    !cmp_proj(&run.tuples[i as usize], positions, key).is_gt()
                });
                if lo < hi {
                    len += hi - lo;
                    segments.push(ProbeSeg::Offsets {
                        offsets: &perm[lo..hi],
                        store: &run.tuples,
                    });
                }
            } else {
                let v: Vec<&Tuple> = run
                    .tuples
                    .iter()
                    .filter(|t| proj_matches(t, positions, key))
                    .collect();
                if !v.is_empty() {
                    len += v.len();
                    segments.push(ProbeSeg::Owned(v));
                }
            }
        }
        Probe { segments, len }
    }

    fn into_tuple_vec(self) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(self.len);
        for run in self.runs {
            out.extend(run.tuples);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_common::{Interner, Value};

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&n| Value::Int(n)).collect()
    }

    /// Exercise one backend through the trait, generically.
    fn exercise<S: Storage + Default>() {
        let mut s = S::default();
        assert!(s.is_empty());
        assert!(s.insert(t(&[1, 10])));
        assert!(!s.insert(t(&[1, 10])), "duplicate");
        assert!(s.insert(t(&[1, 20])));
        assert!(s.insert(t(&[2, 10])));
        assert_eq!(s.len(), 3);
        assert!(s.contains(&t(&[1, 20])));
        assert!(!s.contains(&t(&[9, 9])));

        // Batch: one duplicate of stored, one intra-batch duplicate.
        let b1 = t(&[3, 30]);
        let b2 = t(&[1, 10]);
        let b3 = t(&[3, 30]);
        let flags = s.delta_batch_insert(&[&b1, &b2, &b3]);
        assert_eq!(flags, vec![true, false, false]);
        assert_eq!(s.len(), 4);

        // Indexed probe on the first column.
        s.ensure_index(&[0]);
        let key = t(&[1]);
        let probe = s.probe(&[0], &key);
        assert_eq!(probe.len(), 2);
        let mut seconds: Vec<i64> = probe
            .iter()
            .map(|x| match x[1] {
                Value::Int(n) => n,
                _ => unreachable!(),
            })
            .collect();
        seconds.sort_unstable();
        assert_eq!(seconds, vec![10, 20]);

        // Unindexed probe falls back to a filtered scan.
        let probe = s.probe(&[1], &t(&[10]));
        assert_eq!(probe.len(), 2);

        // Scan covers everything exactly once.
        assert_eq!(s.scan().count(), 4);
    }

    /// Exercise removal through the trait, generically.
    fn exercise_removal<S: Storage + Default>() {
        let mut s = S::default();
        let batch: Vec<Tuple> = (0..12).map(|i| t(&[i % 4, i])).collect();
        let refs: Vec<&Tuple> = batch.iter().collect();
        s.delta_batch_insert(&refs);
        s.ensure_index(&[0]);

        // Remove: one present tuple, one absent, one intra-batch duplicate.
        let present = t(&[1, 1]);
        let absent = t(&[9, 9]);
        let flags = s.remove_batch(&[&present, &absent, &present]);
        assert_eq!(flags, vec![true, false, false]);
        assert_eq!(s.len(), 11);
        assert!(!s.contains(&present));

        // Indexes survive removal: the probe sees exactly the survivors.
        let probe = s.probe(&[0], &t(&[1]));
        assert_eq!(probe.len(), 2);
        assert!(probe.iter().all(|x| *x != present));
        // Scan agrees with len and membership.
        assert_eq!(s.scan().count(), 11);
        assert!(s.scan().all(|x| s.contains(x)));

        // Removed tuples can be re-inserted.
        assert!(s.insert(present.clone()));
        assert_eq!(s.probe(&[0], &t(&[1])).len(), 3);
    }

    #[test]
    fn hash_backend_satisfies_the_trait_contract() {
        exercise::<HashBackend>();
        exercise_removal::<HashBackend>();
    }

    #[test]
    fn columnar_backend_satisfies_the_trait_contract() {
        exercise::<ColumnarBackend>();
        exercise_removal::<ColumnarBackend>();
    }

    #[test]
    fn columnar_removal_drops_emptied_runs() {
        let mut s = ColumnarBackend::new();
        let (a, b) = (t(&[1]), t(&[2]));
        s.delta_batch_insert(&[&a]);
        s.delta_batch_insert(&[&b]);
        assert_eq!(s.runs.len(), 2);
        s.remove_batch(&[&a]);
        assert_eq!(s.runs.len(), 1);
        assert_eq!(s.len(), 1);
        assert!(s.contains(&b));
    }

    #[test]
    fn hash_scan_is_insertion_order() {
        let mut s = HashBackend::new();
        for n in [5, 1, 9, 3] {
            s.insert(t(&[n]));
        }
        let got: Vec<Tuple> = s.scan().cloned().collect();
        assert_eq!(got, vec![t(&[5]), t(&[1]), t(&[9]), t(&[3])]);
    }

    #[test]
    fn columnar_scan_is_sorted_within_runs_and_deterministic() {
        let mut s = ColumnarBackend::new();
        let (a, b, c) = (t(&[5]), t(&[1]), t(&[9]));
        s.delta_batch_insert(&[&a, &b]);
        s.delta_batch_insert(&[&c]);
        let got: Vec<Tuple> = s.scan().cloned().collect();
        assert_eq!(got, vec![t(&[1]), t(&[5]), t(&[9])]);
    }

    #[test]
    fn columnar_compaction_preserves_contents_and_probes() {
        let mut s = ColumnarBackend::new();
        s.ensure_index(&[0]);
        // MAX_RUNS + 2 batches force at least one compaction.
        for i in 0..(MAX_RUNS as i64 + 2) {
            let x = t(&[i % 3, i]);
            s.delta_batch_insert(&[&x]);
        }
        assert!(s.runs.len() <= MAX_RUNS, "{} runs", s.runs.len());
        assert_eq!(s.len(), MAX_RUNS + 2);
        let probe = s.probe(&[0], &t(&[0]));
        let expect = (0..(MAX_RUNS as i64 + 2)).filter(|i| i % 3 == 0).count();
        assert_eq!(probe.len(), expect);
        // Scan agrees with len and holds no duplicates.
        let mut all: Vec<Tuple> = s.scan().cloned().collect();
        assert_eq!(all.len(), s.len());
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), s.len());
    }

    #[test]
    fn probe_after_late_ensure_index_matches_fallback() {
        let mut s = ColumnarBackend::new();
        let batch: Vec<Tuple> = (0..20).map(|i| t(&[i % 4, i])).collect();
        let refs: Vec<&Tuple> = batch.iter().collect();
        s.delta_batch_insert(&refs);
        let key = t(&[2]);
        let before: Vec<Tuple> = s.probe(&[0], &key).iter().cloned().collect();
        s.ensure_index(&[0]);
        let mut after: Vec<Tuple> = s.probe(&[0], &key).iter().cloned().collect();
        let mut before = before;
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn hash_collisions_do_not_merge_distinct_tuples() {
        // Not a constructed collision, but the equality check is exercised
        // on every bucket walk; insert enough to make buckets plural.
        let mut s = HashBackend::new();
        for i in 0..1000 {
            assert!(s.insert(t(&[i])));
        }
        for i in 0..1000 {
            assert!(s.contains(&t(&[i])));
            assert!(!s.insert(t(&[i])));
        }
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn estimated_bytes_weigh_symbols_heavier_than_ints() {
        let u2 = RelType::new(vec![Sort::U, Sort::U]);
        let i2 = RelType::new(vec![Sort::I, Sort::I]);
        assert!(estimated_tuple_bytes(&u2) > estimated_tuple_bytes(&i2));
        // Pure function of the type: independent of any stored data.
        assert_eq!(estimated_tuple_bytes(&u2), estimated_tuple_bytes(&u2));
        let _ = Interner::new(); // sorts, not symbols, drive the estimate
    }

    #[test]
    fn backend_kind_parses_cli_names() {
        assert_eq!(BackendKind::parse("hash"), Some(BackendKind::Hash));
        assert_eq!(BackendKind::parse("columnar"), Some(BackendKind::Columnar));
        assert_eq!(BackendKind::parse("btree"), None);
        assert_eq!(BackendKind::Hash.name(), "hash");
        assert_eq!(BackendKind::Columnar.to_string(), "columnar");
        assert_eq!(BackendKind::default(), BackendKind::Hash);
    }
}
