//! Property-based tests for relations, grouping, and ID-relations.

use proptest::prelude::*;

use idlog_common::{Interner, Tuple, Value};
use idlog_storage::{
    count_bounded_assignments, count_id_functions, group_by, make_id_relation,
    BoundedAssignmentIter, IdAssignment, IdAssignmentIter, Relation,
};

/// A random small binary relation over a tiny symbolic domain (so groups of
/// interesting sizes appear).
fn arb_relation() -> impl Strategy<Value = (Interner, Relation)> {
    proptest::collection::vec((0usize..3, 0usize..4), 0..8).prop_map(|pairs| {
        let interner = Interner::new();
        let mut rel = Relation::elementary(2);
        for (g, m) in pairs {
            let t: Tuple = vec![
                Value::Sym(interner.intern(&format!("g{g}"))),
                Value::Sym(interner.intern(&format!("m{m}"))),
            ]
            .into();
            let _ = rel.insert(t);
        }
        (interner, rel)
    })
}

proptest! {
    /// Grouping is a partition: every tuple in exactly one group, keys match.
    #[test]
    fn grouping_partitions((interner, rel) in arb_relation(), by_first in any::<bool>()) {
        let positions: Vec<usize> = if by_first { vec![0] } else { vec![1] };
        let grouping = group_by(&rel, &positions, &interner);
        let mut seen = 0usize;
        for (key, members) in grouping.iter() {
            for t in members {
                prop_assert_eq!(&t.project(&positions), key);
                prop_assert!(rel.contains(t));
                seen += 1;
            }
        }
        prop_assert_eq!(seen, rel.len());
    }

    /// Every ID-assignment is a bijection group → {0..|g|−1}.
    #[test]
    fn assignments_are_bijective((interner, rel) in arb_relation()) {
        let grouping = group_by(&rel, &[0], &interner);
        for assignment in IdAssignmentIter::new(&rel, &[0], &interner).take(50) {
            for g in 0..grouping.group_count() {
                let members = grouping.group(g);
                let mut tids: Vec<i64> =
                    members.iter().map(|t| assignment.tid(t).unwrap()).collect();
                tids.sort_unstable();
                let expect: Vec<i64> = (0..members.len() as i64).collect();
                prop_assert_eq!(tids, expect);
            }
        }
    }

    /// The enumerator yields exactly `count_id_functions` distinct
    /// assignments (when small enough to walk).
    #[test]
    fn enumeration_count_matches((interner, rel) in arb_relation()) {
        let count = count_id_functions(&rel, &[0], &interner);
        prop_assume!(count <= 200);
        let all: Vec<IdAssignment> = IdAssignmentIter::new(&rel, &[0], &interner).collect();
        prop_assert_eq!(all.len() as u128, count);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                prop_assert_ne!(a, b);
            }
        }
    }

    /// The bounded enumerator yields exactly the falling-factorial count,
    /// and every arrangement's tid-0 row set appears among the full
    /// enumeration's.
    #[test]
    fn bounded_enumeration_is_sound((interner, rel) in arb_relation(), k in 1usize..3) {
        let count = count_bounded_assignments(&rel, &[0], k, &interner);
        prop_assume!(count <= 300);
        let bounded: Vec<IdAssignment> =
            BoundedAssignmentIter::new(&rel, &[0], k, &interner).collect();
        prop_assert_eq!(bounded.len() as u128, count);

        // Prefix-distinctness: no two arrangements agree on all tids < k.
        let prefix = |a: &IdAssignment| -> Vec<(Tuple, i64)> {
            let mut v: Vec<(Tuple, i64)> = rel
                .iter()
                .filter_map(|t| {
                    let tid = a.tid(t).unwrap();
                    (tid < k as i64).then(|| (t.clone(), tid))
                })
                .collect();
            v.sort();
            v
        };
        let mut prefixes: Vec<_> = bounded.iter().map(prefix).collect();
        prefixes.sort();
        let before = prefixes.len();
        prefixes.dedup();
        prop_assert_eq!(prefixes.len(), before, "arrangements must differ on tids < k");
    }

    /// Completeness of the bounded walk: every full assignment's k-prefix is
    /// realized by some arrangement.
    #[test]
    fn bounded_enumeration_is_complete((interner, rel) in arb_relation(), k in 1usize..3) {
        prop_assume!(count_id_functions(&rel, &[0], &interner) <= 120);
        let prefix = |a: &IdAssignment| -> Vec<(Tuple, i64)> {
            let mut v: Vec<(Tuple, i64)> = rel
                .iter()
                .filter_map(|t| {
                    let tid = a.tid(t).unwrap();
                    (tid < k as i64).then(|| (t.clone(), tid))
                })
                .collect();
            v.sort();
            v
        };
        let bounded_prefixes: Vec<_> = BoundedAssignmentIter::new(&rel, &[0], k, &interner)
            .map(|a| prefix(&a))
            .collect();
        for full in IdAssignmentIter::new(&rel, &[0], &interner) {
            prop_assert!(bounded_prefixes.contains(&prefix(&full)));
        }
    }

    /// Materialized ID-relations have the right shape: same cardinality,
    /// arity+1, and stripping tids recovers the base relation.
    #[test]
    fn id_relation_shape((interner, rel) in arb_relation()) {
        let assignment = IdAssignment::canonical(&rel, &[0], &interner);
        let idrel = make_id_relation(&rel, &assignment).unwrap();
        prop_assert_eq!(idrel.len(), rel.len());
        prop_assert_eq!(idrel.arity(), rel.arity() + 1);
        for t in idrel.iter() {
            let base = t.project(&[0, 1]);
            prop_assert!(rel.contains(&base));
            prop_assert_eq!(t[2], Value::Int(assignment.tid(&base).unwrap()));
        }
    }
}
