//! Property-based tests for the inflationary semantics.

use std::sync::Arc;

use proptest::prelude::*;

use idlog_common::{Interner, Tuple};
use idlog_dl::{
    all_outcomes, deterministic_inflationary, one_outcome, Dialect, DlBudget, DlProgram,
};
use idlog_storage::Database;

fn person_db(interner: &Arc<Interner>, n: usize) -> Database {
    let mut db = Database::with_interner(Arc::clone(interner));
    for k in 0..n {
        db.insert_syms("person", &[&format!("p{k}")]).unwrap();
    }
    db
}

const GUESS: &str = "
    man(X) :- person(X), not woman(X).
    woman(X) :- person(X), not man(X).
";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Example 3 generalizes: on n persons the guess program has exactly 2^n
    /// outcomes for `man` (every subset).
    #[test]
    fn guess_program_has_all_subsets(n in 0usize..4) {
        let interner = Arc::new(Interner::new());
        let ast = idlog_core::parse_program(GUESS, &interner).unwrap();
        let prog = DlProgram::new(ast, Arc::clone(&interner), Dialect::Dl).unwrap();
        let db = person_db(&interner, n);
        let outcomes = all_outcomes(&prog, &db, "man", &DlBudget::default()).unwrap();
        prop_assert!(outcomes.complete());
        prop_assert_eq!(outcomes.len(), 1 << n);
    }

    /// Every sampled run ends in an outcome the exhaustive walk knows.
    #[test]
    fn sampled_outcome_is_enumerated(n in 1usize..4, seed in any::<u64>()) {
        let interner = Arc::new(Interner::new());
        let ast = idlog_core::parse_program(GUESS, &interner).unwrap();
        let prog = DlProgram::new(ast, Arc::clone(&interner), Dialect::Dl).unwrap();
        let db = person_db(&interner, n);
        let all = all_outcomes(&prog, &db, "man", &DlBudget::default()).unwrap();
        let one = one_outcome(&prog, &db, "man", Some(seed), &DlBudget::default()).unwrap();
        let tuples: Vec<Tuple> = one.iter().cloned().collect();
        prop_assert!(all.contains_answer(&tuples));
    }

    /// Positive DL programs are confluent: exactly one outcome, equal to
    /// the deterministic inflationary fixpoint.
    #[test]
    fn positive_programs_are_confluent(
        edges in proptest::collection::vec((0usize..4, 0usize..4), 0..8),
    ) {
        let interner = Arc::new(Interner::new());
        let ast = idlog_core::parse_program(
            "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).",
            &interner,
        ).unwrap();
        let prog = DlProgram::new(ast, Arc::clone(&interner), Dialect::Dl).unwrap();
        let mut db = Database::with_interner(Arc::clone(&interner));
        for (a, b) in &edges {
            db.insert_syms("e", &[&format!("v{a}"), &format!("v{b}")]).unwrap();
        }
        let all = all_outcomes(&prog, &db, "tc", &DlBudget::default()).unwrap();
        prop_assert_eq!(all.len(), 1);
        let det = deterministic_inflationary(&prog, &db, "tc").unwrap();
        let only: Vec<Tuple> = det.iter().cloned().collect();
        prop_assert!(all.contains_answer(&only));
    }
}
