//! DATALOG∨ — positive disjunctive DATALOG under minimal-model semantics.
//!
//! The paper (§3.2): "A fairly direct way to have a non-deterministic
//! database language is to allow disjunctions in clause heads … However,
//! DATALOG∨ does not provide a convenient mechanism for defining sampling
//! queries." This module supplies that baseline: clauses
//! `a(X) | b(X) :- body` with positive bodies (plus comparisons); the
//! answers of a query are its relations in every **minimal model**.
//!
//! Evaluation is explicit-state search: from the database, repeatedly pick a
//! clause instance whose body holds but no head disjunct does, and branch
//! over the disjuncts; closed states (no violated instance) are models, and
//! the ⊆-minimal ones among them are the minimal models. Exact for the
//! small instances the comparisons in this workspace need; budgets bound the
//! walk.

use std::sync::Arc;

use idlog_common::{FxHashMap, FxHashSet, Interner, SymbolId, Tuple};
use idlog_core::safety::{order_clause, ClauseOrder};
use idlog_core::AnswerSet;
use idlog_parser::{Literal, Program};
use idlog_storage::Database;

use crate::error::{DlError, DlResult};
use crate::eval::DlBudget;
use crate::machine::{ground_atom, State};

/// A validated DATALOG∨ program.
#[derive(Debug, Clone)]
pub struct DisjProgram {
    interner: Arc<Interner>,
    ast: Program,
    orders: Vec<ClauseOrder>,
    arities: FxHashMap<SymbolId, usize>,
}

impl DisjProgram {
    /// Validate: one-or-more positive ordinary head atoms per clause
    /// (multi-atom heads must be written with `|`), positive bodies
    /// (comparisons allowed, negation not — minimal-model semantics here is
    /// for the positive fragment the paper discusses).
    pub fn new(ast: Program, interner: Arc<Interner>) -> DlResult<Self> {
        let mut arities: FxHashMap<SymbolId, usize> = FxHashMap::default();
        for (ci, clause) in ast.clauses.iter().enumerate() {
            if clause.head.len() > 1 && !clause.disjunctive {
                return Err(DlError::Invalid {
                    clause: Some(ci),
                    message: "conjunctive heads belong to DL; DATALOG∨ heads use `|`".into(),
                });
            }
            for h in &clause.head {
                if h.negated || h.atom.pred.is_id_version() {
                    return Err(DlError::Invalid {
                        clause: Some(ci),
                        message: "DATALOG∨ heads are positive ordinary atoms".into(),
                    });
                }
            }
            for l in &clause.body {
                match l {
                    Literal::Pos(a) if !a.pred.is_id_version() => {}
                    Literal::Builtin { .. } => {}
                    _ => {
                        return Err(DlError::Invalid {
                            clause: Some(ci),
                            message: "DATALOG∨ bodies are positive atoms and comparisons".into(),
                        })
                    }
                }
            }
            let mut check = |pred: SymbolId, arity: usize| -> DlResult<()> {
                match arities.get(&pred) {
                    Some(&a) if a != arity => Err(DlError::Invalid {
                        clause: Some(ci),
                        message: format!(
                            "predicate {} used with arities {a} and {arity}",
                            interner.resolve(pred)
                        ),
                    }),
                    _ => {
                        arities.insert(pred, arity);
                        Ok(())
                    }
                }
            };
            for h in &clause.head {
                check(h.atom.pred.base(), h.atom.terms.len())?;
            }
            for l in &clause.body {
                if let Some(a) = l.atom() {
                    check(a.pred.base(), a.terms.len())?;
                }
            }
        }
        let mut orders = Vec::with_capacity(ast.clauses.len());
        for (ci, clause) in ast.clauses.iter().enumerate() {
            orders.push(order_clause(clause, ci).map_err(|e| DlError::Invalid {
                clause: Some(ci),
                message: e.to_string(),
            })?);
        }
        Ok(DisjProgram {
            interner,
            ast,
            orders,
            arities,
        })
    }

    /// Parse and validate.
    pub fn parse(src: &str, dialect_interner: Arc<Interner>) -> DlResult<Self> {
        let ast = idlog_parser::parse_program(src, &dialect_interner)?;
        Self::new(ast, dialect_interner)
    }

    /// The shared interner.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Answers of `output` over every minimal model (bounded).
    pub fn minimal_models(
        &self,
        db: &Database,
        output: &str,
        budget: &DlBudget,
    ) -> DlResult<AnswerSet> {
        let out_pred = self
            .interner
            .get(output)
            .filter(|p| self.arities.contains_key(p))
            .ok_or_else(|| DlError::Invalid {
                clause: None,
                message: format!("output predicate {output} does not occur in the program"),
            })?;

        // Initial state: database facts.
        let mut start = State::new();
        for (pred, rel) in db.iter() {
            for t in rel.iter() {
                start.insert(pred, t.clone());
            }
        }

        // DFS over disjunct choices; collect closed states.
        let mut visited: FxHashSet<Vec<(SymbolId, Tuple)>> = FxHashSet::default();
        let mut stack = vec![start];
        let mut closed: Vec<State> = Vec::new();
        let mut complete = true;
        while let Some(state) = stack.pop() {
            if !visited.insert(state.key()) {
                continue;
            }
            if visited.len() > budget.max_states {
                complete = false;
                break;
            }
            match self.first_violation(&state)? {
                None => closed.push(state),
                Some(disjuncts) => {
                    for (pred, tuple) in disjuncts {
                        let mut next = state.clone();
                        next.insert(pred, tuple);
                        stack.push(next);
                    }
                }
            }
        }

        // Minimal models: closed states with no strict subset among the
        // closed states.
        let keys: Vec<FxHashSet<(SymbolId, Tuple)>> = closed
            .iter()
            .map(|s| s.key().into_iter().collect())
            .collect();
        let mut minimal_rels = Vec::new();
        let mut models = 0u64;
        for (i, s) in closed.iter().enumerate() {
            let minimal = keys.iter().enumerate().all(|(j, other)| {
                j == i || !(other.is_subset(&keys[i]) && other.len() < keys[i].len())
            });
            if minimal {
                models += 1;
                let tuples: Vec<Tuple> = s.tuples(out_pred).cloned().collect();
                let arity = self.arities[&out_pred];
                let rtype = match tuples.first() {
                    Some(t) => {
                        idlog_common::RelType::new(t.values().iter().map(|v| v.sort()).collect())
                    }
                    None => idlog_common::RelType::elementary(arity),
                };
                let rel = idlog_storage::Relation::from_tuples(rtype, tuples)
                    .map_err(|e| DlError::Core(e.into()))?;
                minimal_rels.push(rel);
            }
        }
        Ok(AnswerSet::collect(
            minimal_rels,
            complete,
            models,
            &self.interner,
        ))
    }

    /// Find one violated clause instance (body holds, no head disjunct
    /// holds) and return the candidate head facts; `None` when the state is
    /// a model.
    fn first_violation(&self, state: &State) -> DlResult<Option<Vec<(SymbolId, Tuple)>>> {
        for (ci, clause) in self.ast.clauses.iter().enumerate() {
            let names = clause.variables();
            let vars: FxHashMap<&str, usize> =
                names.iter().enumerate().map(|(i, &n)| (n, i)).collect();
            for binding in crate::eval::body_matches_for(&self.ast, &self.orders, ci, state)? {
                let heads: Vec<(SymbolId, Tuple)> = clause
                    .head
                    .iter()
                    .map(|h| {
                        (
                            h.atom.pred.base(),
                            ground_atom(&h.atom.terms, &vars, &binding),
                        )
                    })
                    .collect();
                if !heads.iter().any(|(p, t)| state.contains(*p, t)) {
                    return Ok(Some(heads));
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(src: &str, facts: &[(&str, &[&str])]) -> (DisjProgram, Database) {
        let interner = Arc::new(Interner::new());
        let prog = DisjProgram::parse(src, Arc::clone(&interner)).unwrap();
        let mut db = Database::with_interner(interner);
        for (pred, cols) in facts {
            db.insert_syms(pred, cols).unwrap();
        }
        (prog, db)
    }

    #[test]
    fn paper_guess_clause_has_all_subsets() {
        // The paper's Example 2 preamble: man(X) ∨ woman(X) ← person(X).
        let (prog, db) = setup(
            "man(X) | woman(X) :- person(X).",
            &[("person", &["a"]), ("person", &["b"])],
        );
        let models = prog
            .minimal_models(&db, "man", &DlBudget::default())
            .unwrap();
        assert!(models.complete());
        let strings = models.to_sorted_strings(prog.interner());
        assert_eq!(
            strings,
            vec![
                vec![],
                vec!["(a)".to_string()],
                vec!["(a)".to_string(), "(b)".to_string()],
                vec!["(b)".to_string()],
            ]
        );
    }

    #[test]
    fn minimality_excludes_both_disjuncts() {
        // In every minimal model each person is man XOR woman, never both.
        let (prog, db) = setup("man(X) | woman(X) :- person(X).", &[("person", &["a"])]);
        let man = prog
            .minimal_models(&db, "man", &DlBudget::default())
            .unwrap();
        let woman = prog
            .minimal_models(&db, "woman", &DlBudget::default())
            .unwrap();
        assert_eq!(man.len(), 2);
        assert_eq!(woman.len(), 2);
        // No model has a in both: check via a combined predicate.
        let (prog2, db2) = setup(
            "man(X) | woman(X) :- person(X).
             both(X) :- man(X), woman(X).",
            &[("person", &["a"])],
        );
        let both = prog2
            .minimal_models(&db2, "both", &DlBudget::default())
            .unwrap();
        for rel in both.iter() {
            assert!(rel.is_empty(), "minimality must forbid man ∧ woman");
        }
    }

    #[test]
    fn single_heads_reduce_to_plain_datalog() {
        let (prog, db) = setup(
            "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).",
            &[("e", &["a", "b"]), ("e", &["b", "c"])],
        );
        let models = prog
            .minimal_models(&db, "tc", &DlBudget::default())
            .unwrap();
        assert_eq!(models.len(), 1, "positive programs have one minimal model");
        assert_eq!(models.iter().next().unwrap().len(), 3);
    }

    #[test]
    fn disjunction_feeding_recursion() {
        // Chosen colors propagate: blue(X) | red(X); mark what's blue.
        let (prog, db) = setup(
            "blue(X) | red(X) :- node(X).
             marked(X) :- blue(X).",
            &[("node", &["n1"]), ("node", &["n2"])],
        );
        let models = prog
            .minimal_models(&db, "marked", &DlBudget::default())
            .unwrap();
        assert_eq!(models.len(), 4);
    }

    #[test]
    fn validation_rejects_negation_and_conjunctive_heads() {
        let i = Arc::new(Interner::new());
        assert!(DisjProgram::parse("p(X) :- q(X), not r(X).", Arc::clone(&i)).is_err());
        assert!(DisjProgram::parse("a(X) & b(X) :- c(X).", Arc::clone(&i)).is_err());
        assert!(DisjProgram::parse("p(X) :- q[](X, 0).", i).is_err());
    }

    #[test]
    fn budget_truncation_is_reported() {
        let facts: Vec<(String,)> = (0..12).map(|k| (format!("p{k}"),)).collect();
        let interner = Arc::new(Interner::new());
        let prog = DisjProgram::parse("a(X) | b(X) :- person(X).", Arc::clone(&interner)).unwrap();
        let mut db = Database::with_interner(interner);
        for (p,) in &facts {
            db.insert_syms("person", &[p]).unwrap();
        }
        // 2^12 = 4096 minimal models but far more intermediate states.
        let budget = DlBudget {
            max_states: 100,
            ..Default::default()
        };
        let models = prog.minimal_models(&db, "a", &budget).unwrap();
        assert!(!models.complete());
    }
}
