//! DL and N-DATALOG: the non-deterministic *inflationary* baselines
//! (\[AV88\], \[ASV90\]) the paper contrasts IDLOG with (§3.2.1).
//!
//! Both languages have DATALOG-like clauses evaluated bottom-up **one
//! instantiation at a time**; the choice of which instantiation fires next is
//! the source of non-determinism, and negation in bodies is evaluated
//! against the *current* state (no stratification).
//!
//! * **DL** — clauses may have several positive head atoms (conjunction) and
//!   negative body literals; facts are only ever added. Invented values
//!   (head variables absent from the body) are *not* supported here: the
//!   paper's examples do not use them, and without them every query is
//!   finite-state. This substitution is recorded in `DESIGN.md`.
//! * **N-DATALOG** — additionally allows negated head atoms, interpreted as
//!   deletions; an instantiation fires only if its head is consistent.
//!
//! [`all_outcomes`] explores every reachable terminal state (budgeted) so DL
//! answer sets can be compared 1:1 with IDLOG answer sets ([`idlog_core::AnswerSet`]).

#![warn(missing_docs)]

pub mod disj;
pub mod error;
pub mod eval;
pub mod machine;

pub use disj::DisjProgram;
pub use error::{DlError, DlResult};
pub use eval::{all_outcomes, deterministic_inflationary, one_outcome, Dialect, DlBudget};
pub use machine::{DlProgram, State};
