//! Non-deterministic inflationary evaluation.
//!
//! "The intended models of programs are obtained by applying program clauses
//! bottom up, each clause is instantiated one at a time, and facts are added
//! to the output until no additional facts can be inferred" (\[AV88\], quoted
//! in the paper §3.2.1). The choice available in consecutive instantiations
//! is the non-determinism; [`all_outcomes`] explores it exhaustively,
//! [`one_outcome`] samples one run, and [`deterministic_inflationary`]
//! applies *all* firable instantiations per round (the deterministic
//! semantics the paper contrasts in Example 3).

use idlog_common::{FxHashMap, FxHashSet, RelType, SymbolId, Tuple, Value};
use idlog_core::{builtins, AnswerSet, CoreError};
use idlog_parser::{Builtin, Literal, Term};
use idlog_storage::{Database, Relation};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::error::{DlError, DlResult};
use crate::machine::{ground_atom, DlProgram, State};

/// Which language variant the program is interpreted in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dialect {
    /// DL: positive (possibly conjunctive) heads, inflationary.
    Dl,
    /// N-DATALOG: negated heads are deletions.
    NDatalog,
}

/// Bounds on state-space exploration.
#[derive(Debug, Clone, Copy)]
pub struct DlBudget {
    /// Maximum distinct states to visit in [`all_outcomes`].
    pub max_states: usize,
    /// Maximum firings in [`one_outcome`] (N-DATALOG runs may not
    /// terminate).
    pub max_steps: u64,
    /// Maximum distinct answers to keep.
    pub max_answers: usize,
}

impl Default for DlBudget {
    fn default() -> Self {
        DlBudget {
            max_states: 100_000,
            max_steps: 100_000,
            max_answers: 10_000,
        }
    }
}

/// One firable instantiation: the state change it would make.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Firing {
    additions: Vec<(SymbolId, Tuple)>,
    deletions: Vec<(SymbolId, Tuple)>,
}

/// Initial state: every database fact.
fn initial_state(db: &Database) -> State {
    let mut s = State::new();
    for (pred, rel) in db.iter() {
        for t in rel.iter() {
            s.insert(pred, t.clone());
        }
    }
    s
}

/// All satisfying bindings of clause `ci`'s body against `state`.
fn body_matches(prog: &DlProgram, ci: usize, state: &State) -> DlResult<Vec<Vec<Option<Value>>>> {
    body_matches_for(prog.ast(), prog.orders(), ci, state)
}

/// Clause-body matching against a fact state, reusable by the other
/// state-based semantics in this crate (DATALOG∨).
pub(crate) fn body_matches_for(
    ast: &idlog_parser::Program,
    orders: &[idlog_core::safety::ClauseOrder],
    ci: usize,
    state: &State,
) -> DlResult<Vec<Vec<Option<Value>>>> {
    let clause = &ast.clauses[ci];
    let names = clause.variables();
    let vars: FxHashMap<&str, usize> = names.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut bindings: Vec<Option<Value>> = vec![None; names.len()];
    let mut out = Vec::new();
    let order = &orders[ci].order;
    match_step(state, clause, &vars, order, 0, &mut bindings, &mut out)?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn match_step(
    state: &State,
    clause: &idlog_parser::Clause,
    vars: &FxHashMap<&str, usize>,
    order: &[usize],
    k: usize,
    bindings: &mut Vec<Option<Value>>,
    out: &mut Vec<Vec<Option<Value>>>,
) -> DlResult<()> {
    if k == order.len() {
        out.push(bindings.clone());
        return Ok(());
    }
    match &clause.body[order[k]] {
        Literal::Pos(atom) => {
            let pred = atom.pred.base();
            // Collect to avoid holding the state borrow across recursion.
            let candidates: Vec<Tuple> = state.tuples(pred).cloned().collect();
            for t in candidates {
                let mut newly: Vec<usize> = Vec::new();
                let mut ok = true;
                for (pos, term) in atom.terms.iter().enumerate() {
                    let want = t[pos];
                    match term {
                        Term::Sym(s) => {
                            if Value::Sym(*s) != want {
                                ok = false;
                                break;
                            }
                        }
                        Term::Int(n) => {
                            if Value::Int(*n) != want {
                                ok = false;
                                break;
                            }
                        }
                        Term::Var(v) => {
                            let vi = vars[v.as_str()];
                            match bindings[vi] {
                                Some(cur) => {
                                    if cur != want {
                                        ok = false;
                                        break;
                                    }
                                }
                                None => {
                                    bindings[vi] = Some(want);
                                    newly.push(vi);
                                }
                            }
                        }
                    }
                }
                if ok {
                    match_step(state, clause, vars, order, k + 1, bindings, out)?;
                }
                for vi in newly {
                    bindings[vi] = None;
                }
            }
            Ok(())
        }
        Literal::Neg(atom) => {
            let t = ground_atom(&atom.terms, vars, bindings);
            if !state.contains(atom.pred.base(), &t) {
                match_step(state, clause, vars, order, k + 1, bindings, out)?;
            }
            Ok(())
        }
        Literal::Builtin { op, args } => {
            exec_builtin(state, clause, vars, order, k, *op, args, bindings, out)
        }
        Literal::Choice { .. } | Literal::Cut => unreachable!("validated away"),
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_builtin(
    state: &State,
    clause: &idlog_parser::Clause,
    vars: &FxHashMap<&str, usize>,
    order: &[usize],
    k: usize,
    op: Builtin,
    args: &[Term],
    bindings: &mut Vec<Option<Value>>,
    out: &mut Vec<Vec<Option<Value>>>,
) -> DlResult<()> {
    let value_of = |t: &Term, b: &[Option<Value>]| -> Option<Value> {
        match t {
            Term::Sym(s) => Some(Value::Sym(*s)),
            Term::Int(n) => Some(Value::Int(*n)),
            Term::Var(v) => b[vars[v.as_str()]],
        }
    };
    if matches!(op, Builtin::Eq | Builtin::Ne) {
        let a = value_of(&args[0], bindings);
        let b = value_of(&args[1], bindings);
        match (a, b) {
            (Some(x), Some(y)) => {
                if builtins::eq_check(op, x, y) {
                    match_step(state, clause, vars, order, k + 1, bindings, out)?;
                }
            }
            (Some(known), None) | (None, Some(known)) => {
                debug_assert_eq!(op, Builtin::Eq);
                let free = if a.is_none() { &args[0] } else { &args[1] };
                let Term::Var(v) = free else { unreachable!() };
                let vi = vars[v.as_str()];
                bindings[vi] = Some(known);
                match_step(state, clause, vars, order, k + 1, bindings, out)?;
                bindings[vi] = None;
            }
            (None, None) => {
                return Err(DlError::Core(CoreError::Eval {
                    message: "equality with both sides unbound".into(),
                }))
            }
        }
        return Ok(());
    }
    let ints: Vec<Option<i64>> = args
        .iter()
        .map(|t| value_of(t, bindings).and_then(Value::as_int))
        .collect();
    // A bound symbol in an arithmetic position can never match.
    for (t, i) in args.iter().zip(&ints) {
        if i.is_none() {
            if let Some(Value::Sym(_)) = value_of(t, bindings) {
                return Ok(());
            }
        }
    }
    for sol in builtins::solve(op, &ints)? {
        let mut newly: Vec<usize> = Vec::new();
        let mut ok = true;
        for (j, t) in args.iter().enumerate() {
            let want = Value::Int(sol[j]);
            match value_of(t, bindings) {
                Some(cur) => {
                    if cur != want {
                        ok = false;
                        break;
                    }
                }
                None => {
                    let Term::Var(v) = t else { unreachable!() };
                    let vi = vars[v.as_str()];
                    bindings[vi] = Some(want);
                    newly.push(vi);
                }
            }
        }
        if ok {
            match_step(state, clause, vars, order, k + 1, bindings, out)?;
        }
        for vi in newly {
            bindings[vi] = None;
        }
    }
    Ok(())
}

/// Candidate firings of every clause against `state`.
fn firings(prog: &DlProgram, state: &State) -> DlResult<Vec<Firing>> {
    let mut out = Vec::new();
    for ci in 0..prog.ast().clauses.len() {
        let clause = &prog.ast().clauses[ci];
        let names = clause.variables();
        let vars: FxHashMap<&str, usize> = names.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for binding in body_matches(prog, ci, state)? {
            let mut additions = Vec::new();
            let mut deletions = Vec::new();
            for h in &clause.head {
                let t = ground_atom(&h.atom.terms, &vars, &binding);
                let pred = h.atom.pred.base();
                if h.negated {
                    deletions.push((pred, t));
                } else {
                    additions.push((pred, t));
                }
            }
            // Consistency (N-DATALOG): a head may not assert and delete the
            // same fact.
            if additions.iter().any(|a| deletions.contains(a)) {
                continue;
            }
            // Only keep firings that change the state.
            let changes = additions.iter().any(|(p, t)| !state.contains(*p, t))
                || deletions.iter().any(|(p, t)| state.contains(*p, t));
            if changes {
                out.push(Firing {
                    additions,
                    deletions,
                });
            }
        }
    }
    Ok(out)
}

fn apply(state: &State, firing: &Firing) -> State {
    let mut s = state.clone();
    for (p, t) in &firing.additions {
        s.insert(*p, t.clone());
    }
    for (p, t) in &firing.deletions {
        s.remove(*p, t);
    }
    s
}

/// Extract the output predicate's relation from a state.
fn output_relation(prog: &DlProgram, state: &State, output: SymbolId) -> DlResult<Relation> {
    let tuples: Vec<Tuple> = state.tuples(output).cloned().collect();
    let arity = prog.arity(output).unwrap_or(0);
    let rtype = match tuples.first() {
        Some(t) => RelType::new(t.values().iter().map(|v| v.sort()).collect()),
        None => RelType::elementary(arity),
    };
    Relation::from_tuples(rtype, tuples).map_err(|e| DlError::Core(CoreError::Common(e)))
}

fn output_id(prog: &DlProgram, output: &str) -> DlResult<SymbolId> {
    prog.interner()
        .get(output)
        .filter(|p| prog.arity(*p).is_some())
        .ok_or_else(|| DlError::Invalid {
            clause: None,
            message: format!("output predicate {output} does not occur in the program"),
        })
}

/// Explore every reachable terminal state and collect the output answers.
///
/// ```
/// use idlog_dl::{all_outcomes, Dialect, DlBudget, DlProgram};
/// use idlog_storage::Database;
/// use std::sync::Arc;
///
/// // Paper Example 3: the man/woman guess program.
/// let prog = DlProgram::parse(
///     "man(X) :- person(X), not woman(X).
///      woman(X) :- person(X), not man(X).",
///     Dialect::Dl,
/// ).unwrap();
/// let mut db = Database::with_interner(Arc::clone(prog.interner()));
/// db.insert_syms("person", &["a"]).unwrap();
/// db.insert_syms("person", &["b"]).unwrap();
///
/// let outcomes = all_outcomes(&prog, &db, "man", &DlBudget::default()).unwrap();
/// assert_eq!(outcomes.len(), 4); // ∅, {a}, {b}, {a,b}
/// ```
pub fn all_outcomes(
    prog: &DlProgram,
    db: &Database,
    output: &str,
    budget: &DlBudget,
) -> DlResult<AnswerSet> {
    let out_pred = output_id(prog, output)?;
    let interner = prog.interner().clone();
    let start = initial_state(db);

    let mut visited: FxHashSet<Vec<(SymbolId, Tuple)>> = FxHashSet::default();
    let mut stack = vec![start];
    let mut relations = Vec::new();
    let mut complete = true;
    let mut terminals: u64 = 0;

    while let Some(state) = stack.pop() {
        if !visited.insert(state.key()) {
            continue;
        }
        if visited.len() > budget.max_states {
            complete = false;
            break;
        }
        let fs = firings(prog, &state)?;
        if fs.is_empty() {
            terminals += 1;
            relations.push(output_relation(prog, &state, out_pred)?);
            if relations.len() > budget.max_answers {
                complete = false;
                break;
            }
            continue;
        }
        for f in &fs {
            stack.push(apply(&state, f));
        }
    }
    Ok(AnswerSet::collect(
        relations, complete, terminals, &interner,
    ))
}

/// One run: fire random (or first, with `seed: None`) candidate
/// instantiations until quiescence.
pub fn one_outcome(
    prog: &DlProgram,
    db: &Database,
    output: &str,
    seed: Option<u64>,
    budget: &DlBudget,
) -> DlResult<Relation> {
    let out_pred = output_id(prog, output)?;
    let mut rng = seed.map(SmallRng::seed_from_u64);
    let mut state = initial_state(db);
    for _ in 0..budget.max_steps {
        let fs = firings(prog, &state)?;
        if fs.is_empty() {
            return output_relation(prog, &state, out_pred);
        }
        let pick = match &mut rng {
            Some(rng) => rng.gen_range(0..fs.len()),
            None => 0,
        };
        state = apply(&state, &fs[pick]);
    }
    Err(DlError::BudgetExceeded {
        what: format!("{} firings", budget.max_steps),
    })
}

/// The deterministic inflationary fixpoint (DL only): every round applies
/// *all* firable instantiations simultaneously.
pub fn deterministic_inflationary(
    prog: &DlProgram,
    db: &Database,
    output: &str,
) -> DlResult<Relation> {
    if prog.dialect() != Dialect::Dl {
        return Err(DlError::Invalid {
            clause: None,
            message: "deterministic inflationary semantics is defined for DL only \
                      (simultaneous deletions conflict)"
                .into(),
        });
    }
    let out_pred = output_id(prog, output)?;
    let mut state = initial_state(db);
    loop {
        let fs = firings(prog, &state)?;
        if fs.is_empty() {
            return output_relation(prog, &state, out_pred);
        }
        for f in &fs {
            for (p, t) in &f.additions {
                state.insert(*p, t.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_common::Interner;
    use std::sync::Arc;

    fn setup(src: &str, dialect: Dialect, facts: &[(&str, &[&str])]) -> (DlProgram, Database) {
        let interner = Arc::new(Interner::new());
        let ast = idlog_parser::parse_program(src, &interner).unwrap();
        let prog = DlProgram::new(ast, Arc::clone(&interner), dialect).unwrap();
        let mut db = Database::with_interner(interner);
        for (pred, cols) in facts {
            db.insert_syms(pred, cols).unwrap();
        }
        (prog, db)
    }

    const EXAMPLE3: &str = "
        man(X) :- person(X), not woman(X).
        woman(X) :- person(X), not man(X).
    ";

    #[test]
    fn paper_example3_nondeterministic() {
        // Paper: man(r) = woman(r) = {∅, {a}, {b}, {a,b}} under the
        // non-deterministic inflationary semantics.
        let (prog, db) = setup(
            EXAMPLE3,
            Dialect::Dl,
            &[("person", &["a"]), ("person", &["b"])],
        );
        let all = all_outcomes(&prog, &db, "man", &DlBudget::default()).unwrap();
        assert!(all.complete());
        let strings = all.to_sorted_strings(prog.interner());
        assert_eq!(
            strings,
            vec![
                vec![],
                vec!["(a)".to_string()],
                vec!["(a)".to_string(), "(b)".to_string()],
                vec!["(b)".to_string()],
            ]
        );
        let all_w = all_outcomes(&prog, &db, "woman", &DlBudget::default()).unwrap();
        assert_eq!(all_w.to_sorted_strings(prog.interner()), strings);
    }

    #[test]
    fn paper_example3_deterministic() {
        // Paper: under the deterministic inflationary semantics,
        // man(r) = woman(r) = {(a), (b)}.
        let (prog, db) = setup(
            EXAMPLE3,
            Dialect::Dl,
            &[("person", &["a"]), ("person", &["b"])],
        );
        let man = deterministic_inflationary(&prog, &db, "man").unwrap();
        assert_eq!(man.len(), 2);
        let woman = deterministic_inflationary(&prog, &db, "woman").unwrap();
        assert_eq!(woman.len(), 2);
    }

    #[test]
    fn one_outcome_is_a_terminal_state() {
        let (prog, db) = setup(
            EXAMPLE3,
            Dialect::Dl,
            &[("person", &["a"]), ("person", &["b"])],
        );
        let all = all_outcomes(&prog, &db, "man", &DlBudget::default()).unwrap();
        for seed in [None, Some(3), Some(17)] {
            let rel = one_outcome(&prog, &db, "man", seed, &DlBudget::default()).unwrap();
            let tuples: Vec<Tuple> = rel.iter().cloned().collect();
            assert!(all.contains_answer(&tuples), "seed {seed:?}");
        }
    }

    #[test]
    fn positive_programs_are_deterministic() {
        let (prog, db) = setup(
            "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).",
            Dialect::Dl,
            &[("e", &["a", "b"]), ("e", &["b", "c"])],
        );
        let all = all_outcomes(&prog, &db, "tc", &DlBudget::default()).unwrap();
        assert_eq!(all.len(), 1, "positive DL programs have one outcome");
        assert_eq!(all.iter().next().unwrap().len(), 3);
    }

    #[test]
    fn conjunctive_heads_fire_together() {
        let (prog, db) = setup("a(X) & b(X) :- c(X).", Dialect::Dl, &[("c", &["x"])]);
        let all = all_outcomes(&prog, &db, "a", &DlBudget::default()).unwrap();
        assert_eq!(all.len(), 1);
        let b = all_outcomes(&prog, &db, "b", &DlBudget::default()).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b.iter().next().unwrap().len(), 1);
    }

    #[test]
    fn ndatalog_deletion() {
        // Mark unprocessed nodes; processing a red node deletes its mark and
        // records it as processed (so it is never re-marked). Confluent: the
        // unique terminal state has only n2 marked.
        let (prog, db) = setup(
            "mark(X) :- node(X), not processed(X).
             not mark(X) & processed(X) :- mark(X), red(X).",
            Dialect::NDatalog,
            &[("node", &["n1"]), ("node", &["n2"]), ("red", &["n1"])],
        );
        let all = all_outcomes(&prog, &db, "mark", &DlBudget::default()).unwrap();
        assert!(all.complete());
        let strings = all.to_sorted_strings(prog.interner());
        assert_eq!(strings, vec![vec!["(n2)".to_string()]]);
    }

    #[test]
    fn ndatalog_cycles_do_not_hang_enumeration() {
        // add/remove cycle: p(x) added when absent... flip-flop. The visited
        // set makes exploration finite; no terminal state exists.
        let (prog, db) = setup(
            "p(X) :- q(X), not p(X).
             not p(X) :- q(X), p(X).",
            Dialect::NDatalog,
            &[("q", &["x"])],
        );
        let all = all_outcomes(&prog, &db, "p", &DlBudget::default()).unwrap();
        assert_eq!(all.len(), 0, "flip-flop program has no terminal state");
        // And a single run trips the step budget instead of hanging.
        let budget = DlBudget {
            max_steps: 100,
            ..Default::default()
        };
        assert!(matches!(
            one_outcome(&prog, &db, "p", Some(1), &budget),
            Err(DlError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn unknown_output_is_error() {
        let (prog, db) = setup("p(X) :- q(X).", Dialect::Dl, &[]);
        assert!(all_outcomes(&prog, &db, "zzz", &DlBudget::default()).is_err());
    }
}
