//! Errors for the inflationary-semantics baselines.

use std::fmt;

use idlog_core::CoreError;
use idlog_parser::ParseError;

/// Failures validating or running a DL / N-DATALOG program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DlError {
    /// Surface-syntax error.
    Parse(ParseError),
    /// Structural problem (invented values, unsafe clause, wrong dialect).
    Invalid {
        /// 0-based clause index, when attributable.
        clause: Option<usize>,
        /// What is wrong.
        message: String,
    },
    /// State-space exploration exceeded the budget.
    BudgetExceeded {
        /// Which bound tripped.
        what: String,
    },
    /// Underlying engine error (builtin evaluation).
    Core(CoreError),
}

impl fmt::Display for DlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlError::Parse(e) => write!(f, "{e}"),
            DlError::Invalid {
                clause: Some(c),
                message,
            } => {
                write!(f, "invalid DL clause #{c}: {message}")
            }
            DlError::Invalid {
                clause: None,
                message,
            } => write!(f, "invalid DL program: {message}"),
            DlError::BudgetExceeded { what } => write!(f, "budget exceeded: {what}"),
            DlError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DlError {}

impl From<ParseError> for DlError {
    fn from(e: ParseError) -> Self {
        DlError::Parse(e)
    }
}

impl From<CoreError> for DlError {
    fn from(e: CoreError) -> Self {
        DlError::Core(e)
    }
}

/// Result alias.
pub type DlResult<T> = Result<T, DlError>;
