//! Validated DL / N-DATALOG programs and evaluation states.

use std::sync::Arc;

use idlog_common::{FxHashMap, FxHashSet, Interner, SymbolId, Tuple, Value};
use idlog_core::safety::{order_clause, ClauseOrder};
use idlog_parser::{Literal, Program, Term};

use crate::error::{DlError, DlResult};
use crate::eval::Dialect;

/// A validated DL or N-DATALOG program.
#[derive(Debug, Clone)]
pub struct DlProgram {
    interner: Arc<Interner>,
    ast: Program,
    dialect: Dialect,
    orders: Vec<ClauseOrder>,
    arities: FxHashMap<SymbolId, usize>,
}

impl DlProgram {
    /// Validate `ast` under the given dialect.
    pub fn new(ast: Program, interner: Arc<Interner>, dialect: Dialect) -> DlResult<Self> {
        let mut arities: FxHashMap<SymbolId, usize> = FxHashMap::default();
        for (ci, clause) in ast.clauses.iter().enumerate() {
            if clause.head.is_empty() {
                return Err(DlError::Invalid {
                    clause: Some(ci),
                    message: "empty head".into(),
                });
            }
            for h in &clause.head {
                if h.negated && dialect == Dialect::Dl {
                    return Err(DlError::Invalid {
                        clause: Some(ci),
                        message: "negated heads require the N-DATALOG dialect".into(),
                    });
                }
                if h.atom.pred.is_id_version() {
                    return Err(DlError::Invalid {
                        clause: Some(ci),
                        message: "ID-atoms belong to IDLOG, not DL".into(),
                    });
                }
            }
            for l in &clause.body {
                if matches!(l, Literal::Choice { .. }) {
                    return Err(DlError::Invalid {
                        clause: Some(ci),
                        message: "choice literals belong to DATALOG^C".into(),
                    });
                }
                if matches!(l, Literal::Cut) {
                    return Err(DlError::Invalid {
                        clause: Some(ci),
                        message: "cut is a top-down construct (see idlog_choice::cut)".into(),
                    });
                }
                if let Some(a) = l.atom() {
                    if a.pred.is_id_version() {
                        return Err(DlError::Invalid {
                            clause: Some(ci),
                            message: "ID-atoms belong to IDLOG, not DL".into(),
                        });
                    }
                }
            }
            // Arity consistency.
            let mut check = |pred: SymbolId, arity: usize| -> DlResult<()> {
                match arities.get(&pred) {
                    Some(&a) if a != arity => Err(DlError::Invalid {
                        clause: Some(ci),
                        message: format!(
                            "predicate {} used with arities {a} and {arity}",
                            interner.resolve(pred)
                        ),
                    }),
                    _ => {
                        arities.insert(pred, arity);
                        Ok(())
                    }
                }
            };
            for h in &clause.head {
                check(h.atom.pred.base(), h.atom.terms.len())?;
            }
            for l in &clause.body {
                if let Some(a) = l.atom() {
                    check(a.pred.base(), a.terms.len())?;
                }
            }
        }

        // Safety: reuse the IDLOG ordering search; it also rejects invented
        // values (head variables unbound by the body).
        let mut orders = Vec::with_capacity(ast.clauses.len());
        for (ci, clause) in ast.clauses.iter().enumerate() {
            let order = order_clause(clause, ci).map_err(|e| DlError::Invalid {
                clause: Some(ci),
                message: e.to_string(),
            })?;
            orders.push(order);
        }

        Ok(DlProgram {
            interner,
            ast,
            dialect,
            orders,
            arities,
        })
    }

    /// Parse and validate.
    pub fn parse(src: &str, dialect: Dialect) -> DlResult<Self> {
        let interner = Arc::new(Interner::new());
        let ast = idlog_parser::parse_program(src, &interner)?;
        Self::new(ast, interner, dialect)
    }

    /// The shared interner.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// The dialect this program was validated under.
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// The clause list.
    pub fn ast(&self) -> &Program {
        &self.ast
    }

    /// All clause orders (for the shared body matcher).
    pub(crate) fn orders(&self) -> &[ClauseOrder] {
        &self.orders
    }

    /// Arity of a predicate, if used.
    pub fn arity(&self, pred: SymbolId) -> Option<usize> {
        self.arities.get(&pred).copied()
    }
}

/// A fact set during inflationary evaluation.
#[derive(Debug, Clone, Default)]
pub struct State {
    facts: FxHashMap<SymbolId, FxHashSet<Tuple>>,
}

impl State {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Membership test.
    pub fn contains(&self, pred: SymbolId, t: &Tuple) -> bool {
        self.facts.get(&pred).is_some_and(|s| s.contains(t))
    }

    /// Add a fact; true if new.
    pub fn insert(&mut self, pred: SymbolId, t: Tuple) -> bool {
        self.facts.entry(pred).or_default().insert(t)
    }

    /// Remove a fact; true if present.
    pub fn remove(&mut self, pred: SymbolId, t: &Tuple) -> bool {
        self.facts.get_mut(&pred).is_some_and(|s| s.remove(t))
    }

    /// Tuples of one predicate.
    pub fn tuples(&self, pred: SymbolId) -> impl Iterator<Item = &Tuple> {
        self.facts.get(&pred).into_iter().flatten()
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.values().map(|s| s.len()).sum()
    }

    /// True when no facts are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A canonical (within this run) key for visited-state deduplication.
    pub fn key(&self) -> Vec<(SymbolId, Tuple)> {
        let mut v: Vec<(SymbolId, Tuple)> = self
            .facts
            .iter()
            .flat_map(|(&p, ts)| ts.iter().map(move |t| (p, t.clone())))
            .collect();
        v.sort();
        v
    }
}

/// Ground an atom's terms under bindings (all variables must be bound).
pub(crate) fn ground_atom(
    terms: &[Term],
    vars: &FxHashMap<&str, usize>,
    bindings: &[Option<Value>],
) -> Tuple {
    terms
        .iter()
        .map(|t| match t {
            Term::Var(v) => bindings[vars[v.as_str()]].expect("head variable bound"),
            Term::Sym(s) => Value::Sym(*s),
            Term::Int(n) => Value::Int(*n),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dl_rejects_negated_heads() {
        assert!(DlProgram::parse("not a(X) :- b(X).", Dialect::Dl).is_err());
        assert!(DlProgram::parse("not a(X) :- b(X).", Dialect::NDatalog).is_ok());
    }

    #[test]
    fn rejects_id_atoms_everywhere() {
        assert!(DlProgram::parse("a(X) :- b[](X, 0).", Dialect::Dl).is_err());
    }

    #[test]
    fn rejects_choice() {
        assert!(DlProgram::parse("a(X) :- b(X, Y), choice((X), (Y)).", Dialect::Dl).is_err());
    }

    #[test]
    fn rejects_invented_values() {
        // Head variable Y not bound by the body: DL's invented values are
        // out of scope here (documented substitution).
        assert!(DlProgram::parse("a(X, Y) :- b(X).", Dialect::Dl).is_err());
    }

    #[test]
    fn multi_head_is_fine() {
        let p = DlProgram::parse("a(X) & b(X) :- c(X).", Dialect::Dl).unwrap();
        assert_eq!(p.ast().clauses[0].head.len(), 2);
    }

    #[test]
    fn state_roundtrip_and_key() {
        let i = Interner::new();
        let p = i.intern("p");
        let q = i.intern("q");
        let t: Tuple = vec![Value::Sym(i.intern("a"))].into();
        let mut s = State::new();
        assert!(s.insert(p, t.clone()));
        assert!(!s.insert(p, t.clone()));
        assert!(s.contains(p, &t));
        assert!(!s.contains(q, &t));
        assert_eq!(s.len(), 1);
        let mut s2 = State::new();
        s2.insert(p, t.clone());
        assert_eq!(s.key(), s2.key());
        assert!(s.remove(p, &t));
        assert!(s.is_empty());
    }
}
