//! Test-only fault injection ("failpoints").
//!
//! The engine sprinkles named *sites* through its hot paths (worker bodies,
//! storage inserts, ID-oracle calls, enumeration branches). In a normal
//! build every site compiles to nothing. With the `failpoints` cargo
//! feature enabled, each site consults a process-global registry and can be
//! told to **panic**, **sleep**, or **fail** — letting the test suite prove
//! that the governance layer turns arbitrary mid-evaluation faults into
//! clean structured errors instead of aborts, deadlocks, or partial merges.
//!
//! Sites are selected either programmatically ([`configure`]) or through the
//! `IDLOG_FAILPOINTS` environment variable read once at first use. The spec
//! grammar is `site=action` pairs separated by `;`:
//!
//! ```text
//! IDLOG_FAILPOINTS="eval.worker=panic;storage.insert=delay:25"
//! ```
//!
//! Actions:
//!
//! | spec         | effect at the site                                       |
//! |--------------|----------------------------------------------------------|
//! | `panic`      | `panic!` (exercises `catch_unwind` containment)          |
//! | `oom`        | panic with an allocation-failure message (a stand-in: a  |
//! |              | real allocator abort cannot be caught, so the ceiling    |
//! |              | guarding against it is `Limits::max_bytes`)              |
//! | `delay:<ms>` | sleep `<ms>` milliseconds (exercises determinism under   |
//! |              | adversarial scheduling)                                  |
//! | `err`        | return an error from the site                            |
//! | `err:<msg>`  | return an error carrying `<msg>`                         |
//! | `torn:<n>`   | at torn-aware sites (the WAL appender), write the record |
//! |              | minus its last `<n>` bytes and then fail — simulating a  |
//! |              | crash mid-write; elsewhere it behaves like `err`         |
//!
//! The registry is global; tests that configure failpoints must serialize
//! (the engine's suite holds a `static Mutex` around each scenario).

/// Names every failpoint site compiled into the workspace, for discovery
/// and for validating specs in tests. Sites live where a third-party or
/// lower-layer component could realistically fault: rule execution, the
/// tuple store, the ID-oracle, enumeration branch workers, and the
/// durability layer's file operations (append, fsync, truncate, snapshot).
pub const SITES: &[&str] = &[
    "eval.worker",
    "storage.insert",
    "oracle.assign",
    "enum.branch",
    "wal.append",
    "wal.fsync",
    "wal.truncate",
    "snapshot.write",
];

/// Environment variable holding the failpoint spec (`site=action;...`),
/// read once the first time any site is hit.
pub const ENV_VAR: &str = "IDLOG_FAILPOINTS";

#[cfg(feature = "failpoints")]
mod imp {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    /// What a triggered site does.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum Action {
        /// Panic at the site.
        Panic,
        /// Panic with an allocation-failure message.
        Oom,
        /// Sleep this many milliseconds, then proceed normally.
        Delay(u64),
        /// Return an error from the site.
        Error(String),
        /// Drop the last `n` bytes of the write at a torn-aware site and
        /// fail (simulates a crash mid-write). Non-torn-aware sites treat
        /// it as an error.
        Torn(u64),
    }

    fn parse_action(s: &str) -> Result<Action, String> {
        if s == "panic" {
            return Ok(Action::Panic);
        }
        if s == "oom" {
            return Ok(Action::Oom);
        }
        if s == "err" {
            return Ok(Action::Error("injected failure".to_string()));
        }
        if let Some(msg) = s.strip_prefix("err:") {
            return Ok(Action::Error(msg.to_string()));
        }
        if let Some(ms) = s.strip_prefix("delay:") {
            return ms
                .parse::<u64>()
                .map(Action::Delay)
                .map_err(|e| format!("bad delay {ms:?}: {e}"));
        }
        if let Some(n) = s.strip_prefix("torn:") {
            return n
                .parse::<u64>()
                .map(Action::Torn)
                .map_err(|e| format!("bad torn suffix {n:?}: {e}"));
        }
        Err(format!("unknown failpoint action {s:?}"))
    }

    fn parse_into(spec: &str, map: &mut HashMap<String, Action>) -> Result<(), String> {
        for pair in spec.split(';') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (site, action) = pair
                .split_once('=')
                .ok_or_else(|| format!("failpoint spec {pair:?} is not site=action"))?;
            map.insert(site.trim().to_string(), parse_action(action.trim())?);
        }
        Ok(())
    }

    fn registry() -> &'static Mutex<HashMap<String, Action>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Action>>> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let mut map = HashMap::new();
            if let Ok(spec) = std::env::var(super::ENV_VAR) {
                // A typo'd env spec in a fault-injection run must fail loudly,
                // not silently test nothing.
                if let Err(e) = parse_into(&spec, &mut map) {
                    panic!("{}: {e}", super::ENV_VAR);
                }
            }
            Mutex::new(map)
        })
    }

    fn lock() -> std::sync::MutexGuard<'static, HashMap<String, Action>> {
        // A poisoned registry just means some test panicked mid-configure;
        // the map itself is always coherent.
        registry().lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Replace the registry contents with the given spec.
    pub fn configure(spec: &str) -> Result<(), String> {
        let mut map = HashMap::new();
        parse_into(spec, &mut map)?;
        *lock() = map;
        Ok(())
    }

    /// Remove every configured failpoint.
    pub fn clear() {
        lock().clear();
    }

    /// Trigger the site's configured action, if any.
    pub fn hit(site: &str) -> Result<(), String> {
        let action = lock().get(site).cloned();
        match action {
            None => Ok(()),
            Some(Action::Panic) => panic!("failpoint {site}: injected panic"),
            Some(Action::Oom) => panic!("failpoint {site}: injected allocation failure"),
            Some(Action::Delay(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(())
            }
            Some(Action::Error(msg)) => Err(format!("failpoint {site}: {msg}")),
            // A torn action at a site that doesn't call `torn_bytes` still
            // fails cleanly rather than silently testing nothing.
            Some(Action::Torn(_)) => Err(format!("failpoint {site}: torn write injected")),
        }
    }

    /// The configured torn-write suffix for `site`, if any. Torn-aware
    /// sites (the WAL appender) consult this *before* [`hit`]: when it
    /// returns `Some(n)`, the site writes its record minus the last `n`
    /// bytes and then reports a crash, leaving the partial record on disk
    /// for recovery to detect and truncate.
    pub fn torn_bytes(site: &str) -> Option<u64> {
        match lock().get(site) {
            Some(Action::Torn(n)) => Some(*n),
            _ => None,
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        // The registry is process-global; serialize the tests that touch it.
        static TEST_LOCK: Mutex<()> = Mutex::new(());

        #[test]
        fn parse_rejects_garbage() {
            assert!(parse_action("explode").is_err());
            assert!(parse_action("delay:abc").is_err());
            let mut m = HashMap::new();
            assert!(parse_into("no-equals-sign", &mut m).is_err());
        }

        #[test]
        fn parse_accepts_every_documented_action() {
            assert_eq!(parse_action("panic"), Ok(Action::Panic));
            assert_eq!(parse_action("oom"), Ok(Action::Oom));
            assert_eq!(parse_action("delay:25"), Ok(Action::Delay(25)));
            assert_eq!(
                parse_action("err"),
                Ok(Action::Error("injected failure".into()))
            );
            assert_eq!(parse_action("err:boom"), Ok(Action::Error("boom".into())));
            assert_eq!(parse_action("torn:5"), Ok(Action::Torn(5)));
            assert!(parse_action("torn:x").is_err());
        }

        #[test]
        fn torn_bytes_only_reports_torn_actions() {
            let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
            configure("wal.append=torn:7; wal.fsync=err").unwrap();
            assert_eq!(torn_bytes("wal.append"), Some(7));
            assert_eq!(torn_bytes("wal.fsync"), None);
            assert_eq!(torn_bytes("snapshot.write"), None);
            // A torn action at a non-torn-aware site degrades to an error.
            assert!(hit("wal.append").is_err());
            clear();
            assert_eq!(torn_bytes("wal.append"), None);
        }

        #[test]
        fn hit_is_noop_when_unconfigured() {
            let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
            clear();
            assert_eq!(hit("eval.worker"), Ok(()));
        }

        #[test]
        fn configure_then_clear_round_trips() {
            let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
            configure("storage.insert=err:kaput; eval.worker=delay:0").unwrap();
            assert_eq!(
                hit("storage.insert"),
                Err("failpoint storage.insert: kaput".to_string())
            );
            assert_eq!(hit("eval.worker"), Ok(()));
            clear();
            assert_eq!(hit("storage.insert"), Ok(()));
        }

        #[test]
        fn injected_panic_unwinds() {
            let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
            configure("oracle.assign=panic").unwrap();
            let r = std::panic::catch_unwind(|| hit("oracle.assign"));
            clear();
            assert!(r.is_err());
        }
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{clear, configure, hit, torn_bytes, Action};

/// No-op stand-in: with the `failpoints` feature disabled every site
/// vanishes at compile time.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn hit(_site: &str) -> Result<(), String> {
    Ok(())
}

/// No-op stand-in for builds without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
pub fn configure(_spec: &str) -> Result<(), String> {
    Err("idlog was built without the `failpoints` feature".to_string())
}

/// No-op stand-in for builds without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
pub fn clear() {}

/// No-op stand-in: without the `failpoints` feature no site is ever torn.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn torn_bytes(_site: &str) -> Option<u64> {
    None
}
