//! String interning for uninterpreted constants and predicate names.
//!
//! The paper's universal domain `U` is countably infinite; concrete programs
//! and databases only ever mention finitely many uninterpreted constants, so
//! we intern their names once and pass around 4-byte [`SymbolId`]s. The
//! interner is shared (`&self` interning behind a mutex) so that parsed
//! programs, databases, and answers can all reference one symbol table.

use std::fmt;
use std::sync::Mutex;

use crate::fxhash::FxHashMap;

/// An interned string: an index into an [`Interner`].
///
/// Ordering on `SymbolId` is *interning order*, which is arbitrary from the
/// caller's perspective. Code that needs a canonical order over symbols (for
/// example the canonical tid oracle) must order by resolved string, not by
/// raw id — genericity of queries demands independence from interning order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(pub u32);

impl SymbolId {
    /// The raw index of this symbol in its interner.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

#[derive(Default)]
struct InternerState {
    names: Vec<Box<str>>,
    ids: FxHashMap<Box<str>, SymbolId>,
}

/// A shared string interner.
///
/// Interning and resolution take `&self`; the interner can sit in an `Arc`
/// and be shared between the parser, the engine, and report printers.
#[derive(Default)]
pub struct Interner {
    state: Mutex<InternerState>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its stable id. Idempotent.
    pub fn intern(&self, name: &str) -> SymbolId {
        let mut st = self.state.lock().expect("interner poisoned");
        if let Some(&id) = st.ids.get(name) {
            return id;
        }
        let id = SymbolId(u32::try_from(st.names.len()).expect("too many symbols"));
        st.names.push(name.into());
        st.ids.insert(name.into(), id);
        id
    }

    /// Look up a previously interned name without interning it.
    pub fn get(&self, name: &str) -> Option<SymbolId> {
        self.state
            .lock()
            .expect("interner poisoned")
            .ids
            .get(name)
            .copied()
    }

    /// Resolve `id` to its string. Panics if `id` came from another interner.
    pub fn resolve(&self, id: SymbolId) -> String {
        self.state.lock().expect("interner poisoned").names[id.index()].to_string()
    }

    /// Run `f` on the resolved string without allocating a copy.
    pub fn with_resolved<R>(&self, id: SymbolId, f: impl FnOnce(&str) -> R) -> R {
        let st = self.state.lock().expect("interner poisoned");
        f(&st.names[id.index()])
    }

    /// Number of distinct symbols interned so far.
    pub fn len(&self) -> usize {
        self.state.lock().expect("interner poisoned").names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compare two symbols by their resolved names (canonical, interning-order
    /// independent ordering).
    pub fn cmp_by_name(&self, a: SymbolId, b: SymbolId) -> std::cmp::Ordering {
        if a == b {
            return std::cmp::Ordering::Equal;
        }
        let st = self.state.lock().expect("interner poisoned");
        st.names[a.index()].cmp(&st.names[b.index()])
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Interner({} symbols)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let i = Interner::new();
        let a = i.intern("alice");
        let b = i.intern("bob");
        assert_ne!(a, b);
        assert_eq!(i.intern("alice"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let i = Interner::new();
        let id = i.intern("engineering");
        assert_eq!(i.resolve(id), "engineering");
        i.with_resolved(id, |s| assert_eq!(s, "engineering"));
    }

    #[test]
    fn get_does_not_intern() {
        let i = Interner::new();
        assert_eq!(i.get("missing"), None);
        assert_eq!(i.len(), 0);
        let id = i.intern("present");
        assert_eq!(i.get("present"), Some(id));
    }

    #[test]
    fn cmp_by_name_is_lexicographic() {
        let i = Interner::new();
        // Intern in reverse lexicographic order to make raw-id order disagree
        // with name order.
        let z = i.intern("zebra");
        let a = i.intern("ant");
        assert!(z.0 < a.0); // raw interning order: zebra first
        assert_eq!(i.cmp_by_name(a, z), std::cmp::Ordering::Less);
        assert_eq!(i.cmp_by_name(z, a), std::cmp::Ordering::Greater);
        assert_eq!(i.cmp_by_name(a, a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let i = Arc::new(Interner::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let i = Arc::clone(&i);
                std::thread::spawn(move || i.intern(&format!("sym{}", t % 2)))
            })
            .collect();
        let ids: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(i.len(), 2);
        for id in ids {
            assert!(i.resolve(id).starts_with("sym"));
        }
    }
}
