//! A minimal JSON value: recursive-descent parsing and compact rendering.
//!
//! The workspace vendors no JSON crate, so this module is the one shared
//! implementation used by the bench suite (reading committed `BENCH_*.json`
//! baselines), the service protocol (`idlog-core::service`), and the server.
//! It covers the JSON the workspace itself writes — objects, arrays,
//! strings, numbers, booleans, null — not a general-purpose
//! implementation (no duplicate-key policy). Integer literals are carried
//! exactly as [`Json::Int`] so protocol fields like a `u64` seed survive
//! the round trip bit-for-bit; everything else numeric is `f64`.

/// A minimal JSON value (see module docs for scope).
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-integer (or out-of-range) number, carried as `f64`.
    Num(f64),
    /// An integer literal, carried exactly (`i128` covers the full `u64`
    /// and `i64` wire ranges).
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number (integers convert, with
    /// rounding above 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is a number
    /// that losslessly is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) if (0..=u64::MAX as i128).contains(n) => Some(*n as u64),
            // Floats above 2^64 would saturate rather than convert.
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload as a signed integer, if this is a number that
    /// losslessly is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => i64::try_from(*n).ok(),
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Render as compact single-line JSON. `parse(render(v)) == v` for
    /// every value this module produces.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    // Integers render without a trailing `.0` so counters
                    // round-trip byte-identically.
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Int(n) => out.push_str(&format!("{n}")),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for a number value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Convenience constructor for an exact integer value.
    pub fn int(n: impl Into<i128>) -> Json {
        Json::Int(n.into())
    }
}

/// Equality treats `Int` and `Num` holding the same mathematical value as
/// equal, so a programmatically built `Json::num(42.0)` still matches the
/// `Json::Int(42)` its rendering parses back to.
impl PartialEq for Json {
    fn eq(&self, other: &Json) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Num(a), Json::Num(b)) => a == b,
            (Json::Int(a), Json::Int(b)) => a == b,
            (Json::Int(i), Json::Num(f)) | (Json::Num(f), Json::Int(i)) => {
                *f == *i as f64 && f.fract() == 0.0 && *i == *f as i128
            }
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Array(a), Json::Array(b)) => a == b,
            (Json::Object(a), Json::Object(b)) => a == b,
            _ => false,
        }
    }
}

/// Escape a string for embedding in a JSON document (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let s = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("bad number at byte {start}"))?;
    // Integer literals are kept exact; anything with a fraction, exponent,
    // or beyond i128 falls back to f64.
    if let Ok(n) = s.parse::<i128>() {
        return Ok(Json::Int(n));
    }
    s.parse()
        .ok()
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

/// The four hex digits of a `\uXXXX` escape starting at `at`.
fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
    std::str::from_utf8(hex)
        .ok()
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or_else(|| "bad \\u escape".to_string())
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        if (0xD800..=0xDBFF).contains(&code) {
                            // UTF-16 high surrogate: standard encoders (e.g.
                            // Python's json.dumps with ensure_ascii) emit
                            // supplementary-plane characters as a \u pair;
                            // combine it with the following low surrogate.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err("unpaired \\u surrogate".into());
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..=0xDFFF).contains(&low) {
                                return Err("unpaired \\u surrogate".into());
                            }
                            *pos += 6;
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            out.push(char::from_u32(combined).ok_or("bad \\u code point")?);
                        } else if (0xDC00..=0xDFFF).contains(&code) {
                            return Err("unpaired \\u surrogate".into());
                        } else {
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through verbatim.
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_the_workspace_grammar() {
        let doc =
            Json::parse(r#"{"s": "a\"bA", "n": -1.5e2, "t": true, "x": null, "a": [1, {}, []]}"#)
                .unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("a\"bA"));
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(-150.0));
        assert_eq!(doc.get("t"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("x"), Some(&Json::Null));
        assert_eq!(
            doc.get("a").and_then(Json::as_array).map(<[_]>::len),
            Some(3)
        );
        assert!(Json::parse("{\"k\": 1} trailing").is_err());
        assert!(Json::parse("{\"k\"").is_err());
    }

    #[test]
    fn render_round_trips() {
        let v = Json::Object(vec![
            ("name".into(), Json::str("a \"quoted\"\nline")),
            ("count".into(), Json::num(42.0)),
            ("frac".into(), Json::num(1.5)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "items".into(),
                Json::Array(vec![Json::num(1.0), Json::str("x")]),
            ),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Integers render without a fractional tail.
        assert!(text.contains("\"count\":42,"), "{text}");
        assert!(text.contains("\"frac\":1.5"), "{text}");
    }

    #[test]
    fn integer_accessors_reject_fractions() {
        assert_eq!(Json::num(7.0).as_u64(), Some(7));
        assert_eq!(Json::num(7.5).as_u64(), None);
        assert_eq!(Json::num(-1.0).as_u64(), None);
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::Null.as_bool(), None);
    }

    #[test]
    fn escape_covers_control_characters() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn integer_literals_are_exact_beyond_f64_precision() {
        // u64::MAX is not representable as f64; it must survive anyway.
        let line = format!("{}", u64::MAX);
        let v = Json::parse(&line).unwrap();
        assert_eq!(v, Json::Int(u64::MAX as i128));
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v.render(), line);
        // 2^53 + 1 is the first integer f64 silently rounds.
        let v = Json::parse("9007199254740993").unwrap();
        assert_eq!(v.as_u64(), Some(9007199254740993));
        assert_eq!(v.render(), "9007199254740993");
        assert_eq!(Json::parse("-42").unwrap().as_i64(), Some(-42));
        // Fractions and exponents still land on f64.
        assert_eq!(Json::parse("1e3").unwrap(), Json::num(1000.0));
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn int_and_num_compare_by_value() {
        assert_eq!(Json::Int(42), Json::num(42.0));
        assert_ne!(Json::Int(42), Json::num(42.5));
        // Rounding to the same f64 is not equality.
        assert_ne!(Json::Int(u64::MAX as i128), Json::num(u64::MAX as f64));
    }

    #[test]
    fn surrogate_pairs_decode_to_supplementary_characters() {
        // As emitted by json.dumps("\U0001F600") with ensure_ascii.
        let v = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        let v = Json::parse(r#""a\ud83d\ude00bA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\u{1F600}bA"));
        // Raw (unescaped) multi-byte UTF-8 still passes through.
        assert_eq!(Json::parse("\"😀\"").unwrap().as_str(), Some("😀"));
        // Lone or reversed surrogates are protocol errors, not panics.
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ud83dx""#).is_err());
        assert!(Json::parse(r#""\ud83dA""#).is_err());
        assert!(Json::parse(r#""\ude00""#).is_err());
    }
}
