//! The two-sorted value model.

use std::fmt;

use crate::sort::Sort;
use crate::symbol::{Interner, SymbolId};

/// A ground value: an uninterpreted constant (interned symbol) or a natural
/// number.
///
/// Naturals are stored as `i64` for arithmetic convenience; the engine's
/// built-ins never derive negative values (subtraction is partial, as in the
/// paper where the interpreted domain is ℕ).
/// The derived `Ord` follows interning order for symbols and is intended for
/// *intra-run* canonicalization (state dedup keys); use
/// [`Value::cmp_canonical`] when the order must be stable across interners.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Value {
    /// Sort-`u` constant.
    Sym(SymbolId),
    /// Sort-`i` natural number.
    Int(i64),
}

impl Value {
    /// The sort of this value.
    #[inline]
    pub fn sort(self) -> Sort {
        match self {
            Value::Sym(_) => Sort::U,
            Value::Int(_) => Sort::I,
        }
    }

    /// The integer payload, if sort `i`.
    #[inline]
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(n),
            Value::Sym(_) => None,
        }
    }

    /// The symbol payload, if sort `u`.
    #[inline]
    pub fn as_sym(self) -> Option<SymbolId> {
        match self {
            Value::Sym(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// Render using `interner` for symbol names.
    pub fn display<'a>(self, interner: &'a Interner) -> ValueDisplay<'a> {
        ValueDisplay {
            value: self,
            interner,
        }
    }

    /// Canonical ordering: integers before symbols, symbols by *name* (so the
    /// order is independent of interning order — required for genericity of
    /// the canonical tid oracle).
    pub fn cmp_canonical(self, other: Value, interner: &Interner) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(&b),
            (Value::Int(_), Value::Sym(_)) => Ordering::Less,
            (Value::Sym(_), Value::Int(_)) => Ordering::Greater,
            (Value::Sym(a), Value::Sym(b)) => interner.cmp_by_name(a, b),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<SymbolId> for Value {
    fn from(s: SymbolId) -> Self {
        Value::Sym(s)
    }
}

/// Helper returned by [`Value::display`].
pub struct ValueDisplay<'a> {
    value: Value,
    interner: &'a Interner,
}

impl fmt::Display for ValueDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.value {
            Value::Int(n) => write!(f, "{n}"),
            Value::Sym(s) => self.interner.with_resolved(s, |name| write!(f, "{name}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts() {
        let i = Interner::new();
        let a = Value::Sym(i.intern("a"));
        assert_eq!(a.sort(), Sort::U);
        assert_eq!(Value::Int(3).sort(), Sort::I);
    }

    #[test]
    fn accessors() {
        let i = Interner::new();
        let s = i.intern("x");
        assert_eq!(Value::Sym(s).as_sym(), Some(s));
        assert_eq!(Value::Sym(s).as_int(), None);
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_sym(), None);
    }

    #[test]
    fn display_uses_interner() {
        let i = Interner::new();
        let v = Value::Sym(i.intern("sales"));
        assert_eq!(v.display(&i).to_string(), "sales");
        assert_eq!(Value::Int(42).display(&i).to_string(), "42");
    }

    #[test]
    fn canonical_order_ignores_interning_order() {
        use std::cmp::Ordering;
        let i = Interner::new();
        let z = Value::Sym(i.intern("zoo"));
        let a = Value::Sym(i.intern("ape"));
        assert_eq!(a.cmp_canonical(z, &i), Ordering::Less);
        assert_eq!(Value::Int(1).cmp_canonical(a, &i), Ordering::Less);
        assert_eq!(z.cmp_canonical(Value::Int(9), &i), Ordering::Greater);
        assert_eq!(
            Value::Int(3).cmp_canonical(Value::Int(3), &i),
            Ordering::Equal
        );
    }
}
