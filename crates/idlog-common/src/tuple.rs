//! Ground tuples.

use std::fmt;
use std::ops::Index;

use crate::symbol::Interner;
use crate::value::Value;

/// An immutable ground tuple of [`Value`]s.
///
/// Stored as a boxed slice: two words on the stack, one allocation, no spare
/// capacity — relations hold millions of these during evaluation.
/// The derived `Ord` (like [`Value`]'s) follows interning order and is meant
/// for intra-run canonicalization; use [`Tuple::cmp_canonical`] for
/// interner-independent ordering.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Build from values.
    pub fn new(values: impl Into<Box<[Value]>>) -> Self {
        Tuple(values.into())
    }

    /// The empty (0-ary) tuple — used for propositional predicates.
    pub fn empty() -> Self {
        Tuple(Box::new([]))
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Column values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Value at 0-based position `i`, if in range.
    #[inline]
    pub fn get(&self, i: usize) -> Option<Value> {
        self.0.get(i).copied()
    }

    /// Project onto the given 0-based positions (in the order given).
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&i| self.0[i]).collect())
    }

    /// This tuple extended with one extra trailing value (used to build
    /// ID-relation tuples: base tuple + tid).
    pub fn with_appended(&self, v: Value) -> Tuple {
        let mut vals = Vec::with_capacity(self.0.len() + 1);
        vals.extend_from_slice(&self.0);
        vals.push(v);
        Tuple(vals.into())
    }

    /// Canonical (interner-name-based) ordering between equal-arity tuples.
    pub fn cmp_canonical(&self, other: &Tuple, interner: &Interner) -> std::cmp::Ordering {
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            let ord = a.cmp_canonical(*b, interner);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        self.0.len().cmp(&other.0.len())
    }

    /// Render using `interner` for symbol names, as `(v1, v2, ...)`.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> TupleDisplay<'a> {
        TupleDisplay {
            tuple: self,
            interner,
        }
    }
}

impl Index<usize> for Tuple {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple(v.into())
    }
}

/// Helper returned by [`Tuple::display`].
pub struct TupleDisplay<'a> {
    tuple: &'a Tuple,
    interner: &'a Interner,
}

impl fmt::Display for TupleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.tuple.values().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", v.display(self.interner))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(i: &Interner, names: &[&str]) -> Vec<Value> {
        names.iter().map(|n| Value::Sym(i.intern(n))).collect()
    }

    #[test]
    fn basic_accessors() {
        let i = Interner::new();
        let t: Tuple = syms(&i, &["a", "b"]).into();
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get(0), Some(t[0]));
        assert_eq!(t.get(2), None);
    }

    #[test]
    fn empty_tuple() {
        let t = Tuple::empty();
        assert_eq!(t.arity(), 0);
        let i = Interner::new();
        assert_eq!(t.display(&i).to_string(), "()");
    }

    #[test]
    fn projection_reorders() {
        let i = Interner::new();
        let t: Tuple = syms(&i, &["a", "b", "c"]).into();
        let p = t.project(&[2, 0]);
        assert_eq!(p.values(), &[t[2], t[0]]);
    }

    #[test]
    fn with_appended_adds_tid() {
        let i = Interner::new();
        let t: Tuple = syms(&i, &["a"]).into();
        let t2 = t.with_appended(Value::Int(0));
        assert_eq!(t2.arity(), 2);
        assert_eq!(t2[1], Value::Int(0));
    }

    #[test]
    fn display_format() {
        let i = Interner::new();
        let mut vals = syms(&i, &["alice", "sales"]);
        vals.push(Value::Int(1));
        let t: Tuple = vals.into();
        assert_eq!(t.display(&i).to_string(), "(alice, sales, 1)");
    }

    #[test]
    fn canonical_order_by_name_then_length() {
        use std::cmp::Ordering;
        let i = Interner::new();
        let tz: Tuple = syms(&i, &["z"]).into();
        let ta: Tuple = syms(&i, &["a"]).into();
        assert_eq!(ta.cmp_canonical(&tz, &i), Ordering::Less);
        let ta2: Tuple = syms(&i, &["a", "a"]).into();
        assert_eq!(ta.cmp_canonical(&ta2, &i), Ordering::Less);
    }
}
