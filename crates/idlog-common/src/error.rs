//! Errors for the foundation types.
//!
//! Higher layers (parser, engine) define richer error types; this module only
//! covers failures that can occur in `idlog-common` itself.

use std::fmt;

/// Errors raised by foundation types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommonError {
    /// A relation-type string contained a character other than `0/1/u/i`.
    BadRelType {
        /// The offending input.
        text: String,
        /// The first bad character.
        bad_char: char,
    },
    /// A tuple did not match the arity or sorts of its declared relation type.
    TypeMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// An internal invariant a caller promised to uphold did not hold
    /// (e.g. an ID-assignment that fails to cover its base relation).
    /// Surfaced as an error rather than a panic so one faulty component
    /// cannot abort a whole evaluation.
    Invariant {
        /// Human-readable description of the broken invariant.
        detail: String,
    },
}

impl fmt::Display for CommonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommonError::BadRelType { text, bad_char } => {
                write!(
                    f,
                    "invalid relation type {text:?}: unexpected character {bad_char:?}"
                )
            }
            CommonError::TypeMismatch { detail } => write!(f, "type mismatch: {detail}"),
            CommonError::Invariant { detail } => write!(f, "invariant violated: {detail}"),
        }
    }
}

impl std::error::Error for CommonError {}

/// Result alias for [`CommonError`].
pub type CommonResult<T> = Result<T, CommonError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CommonError::BadRelType {
            text: "0x".into(),
            bad_char: 'x',
        };
        let msg = e.to_string();
        assert!(msg.contains("0x") && msg.contains('x'), "{msg}");
    }
}
