//! Sorts and relation types.
//!
//! The paper's types are 0/1 sequences: position `i` of a relation type is
//! `0` when the column ranges over the uninterpreted domain and `1` when it
//! ranges over the natural numbers. An *elementary* relation type contains no
//! `1`s (all columns uninterpreted) — queries take elementary-typed inputs
//! and produce elementary-typed answers.

use std::fmt;
use std::str::FromStr;

use crate::error::CommonError;

/// The sort of one column: uninterpreted (`u`, written `0` in the paper) or
/// interpreted natural number (`i`, written `1`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Sort {
    /// Uninterpreted domain constant (paper: `0`).
    U,
    /// Interpreted natural number (paper: `1`).
    I,
}

impl Sort {
    /// The paper's 0/1 digit for this sort.
    pub fn digit(self) -> char {
        match self {
            Sort::U => '0',
            Sort::I => '1',
        }
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::U => write!(f, "u"),
            Sort::I => write!(f, "i"),
        }
    }
}

/// A relation type: the sort of each column.
///
/// `RelType::parse("001")` is a ternary relation whose first two columns are
/// uninterpreted and whose last column is a natural number — e.g. the
/// ID-version `emp[2]` of a binary relation `emp`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct RelType(Vec<Sort>);

impl RelType {
    /// Build from explicit sorts.
    pub fn new(sorts: Vec<Sort>) -> Self {
        RelType(sorts)
    }

    /// An elementary type (all uninterpreted) of the given arity.
    pub fn elementary(arity: usize) -> Self {
        RelType(vec![Sort::U; arity])
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Sort of column `i` (0-based).
    pub fn sort(&self, i: usize) -> Sort {
        self.0[i]
    }

    /// All column sorts.
    pub fn sorts(&self) -> &[Sort] {
        &self.0
    }

    /// True when no column is interpreted (paper: "elementary relation type").
    pub fn is_elementary(&self) -> bool {
        self.0.iter().all(|&s| s == Sort::U)
    }

    /// The type of this relation's ID-version: same columns plus one trailing
    /// `i`-sorted tid column (paper: type `a.1`).
    pub fn id_version(&self) -> Self {
        let mut sorts = self.0.clone();
        sorts.push(Sort::I);
        RelType(sorts)
    }
}

impl fmt::Display for RelType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.0 {
            write!(f, "{}", s.digit())?;
        }
        Ok(())
    }
}

impl FromStr for RelType {
    type Err = CommonError;

    /// Parse the paper's 0/1 sequence notation, e.g. `"001"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut sorts = Vec::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '0' | 'u' => sorts.push(Sort::U),
                '1' | 'i' => sorts.push(Sort::I),
                other => {
                    return Err(CommonError::BadRelType {
                        text: s.to_string(),
                        bad_char: other,
                    })
                }
            }
        }
        Ok(RelType(sorts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let t: RelType = "0011".parse().unwrap();
        assert_eq!(t.arity(), 4);
        assert_eq!(t.sort(0), Sort::U);
        assert_eq!(t.sort(3), Sort::I);
        assert_eq!(t.to_string(), "0011");
    }

    #[test]
    fn parse_letter_notation() {
        let t: RelType = "uui".parse().unwrap();
        assert_eq!(t.to_string(), "001");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("0x1".parse::<RelType>().is_err());
    }

    #[test]
    fn elementary_detection() {
        assert!(RelType::elementary(3).is_elementary());
        assert!(!"01".parse::<RelType>().unwrap().is_elementary());
        assert!("".parse::<RelType>().unwrap().is_elementary());
    }

    #[test]
    fn id_version_appends_i_column() {
        let t = RelType::elementary(2);
        let idt = t.id_version();
        assert_eq!(idt.to_string(), "001");
        assert!(!idt.is_elementary());
    }
}
