//! CRC-32 (IEEE 802.3 polynomial, reflected) for write-ahead-log and
//! snapshot record checksums.
//!
//! The workspace vendors no external crates, so the durability layer's
//! record checksums are computed here: the standard table-driven
//! implementation of the polynomial used by zlib, gzip, and PNG. Stability
//! matters more than speed — a checksum written by one build must verify
//! under every later build — so the algorithm is pinned by test vectors.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, one byte of input per step.
const fn table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = table();

/// CRC-32 of `bytes` (IEEE, reflected, init and final XOR `0xFFFF_FFFF`) —
/// the same function as zlib's `crc32(0, buf, len)`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn matches_published_vectors() {
        // The classic check value and a few others verifiable with zlib.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"idlog wal record payload".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), clean, "flip at byte {i} bit {bit}");
            }
        }
    }
}
