//! A small, fast, non-cryptographic hasher (the `FxHash` algorithm used by
//! rustc), implemented locally so the workspace needs no extra dependency.
//!
//! Keys hashed in this workspace are interned symbol ids, small integers, and
//! short tuples of those, for which Fx is both faster and sufficiently
//! well-distributed. HashDoS resistance is irrelevant: inputs are programs
//! and databases the caller constructed themselves.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc FxHash implementation
/// (64-bit variant); chosen for good avalanche on low entropy inputs.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Hasher state. One `u64` that is rotated, xored, and multiplied per word.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            self.add_to_hash(word);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
    }

    #[test]
    fn distinguishes_nearby_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<&str> = FxHashSet::default();
        assert!(s.insert("x"));
        assert!(!s.insert("x"));
    }

    #[test]
    fn byte_slices_with_remainders() {
        // Exercise the non-multiple-of-8 path in `write`.
        for len in 0..=17usize {
            let a: Vec<u8> = (0..len as u8).collect();
            let mut b = a.clone();
            assert_eq!(hash_of(&a), hash_of(&b));
            if len > 0 {
                b[len - 1] ^= 1;
                assert_ne!(hash_of(&a), hash_of(&b));
            }
        }
    }
}
