//! Shared foundations for the IDLOG deductive database workspace.
//!
//! IDLOG (\[She90b\], SIGMOD 1991) is a two-sorted deductive database language:
//! values are either *uninterpreted* constants drawn from a universal domain
//! (sort `u`) or natural numbers (sort `i`). This crate provides the value
//! model, string interning for uninterpreted constants, relation types, a
//! fast non-cryptographic hasher, and the shared error type used across the
//! workspace.
//!
//! Nothing here knows about clauses, relations, or evaluation; those live in
//! `idlog-parser`, `idlog-storage`, and `idlog-core` respectively.

#![warn(missing_docs)]

pub mod crc32;
pub mod error;
pub mod failpoint;
pub mod fxhash;
pub mod json;
pub mod sort;
pub mod symbol;
pub mod tuple;
pub mod value;

pub use error::{CommonError, CommonResult};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use json::Json;
pub use sort::{RelType, Sort};
pub use symbol::{Interner, SymbolId};
pub use tuple::Tuple;
pub use value::Value;
