//! Property-based tests for the foundation types.

use proptest::prelude::*;

use idlog_common::{FxBuildHasher, Interner, RelType, Tuple, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0u32..64).prop_map(|n| Value::Sym(idlog_common::SymbolId(n))),
        (0i64..1000).prop_map(Value::Int),
    ]
}

fn arb_tuple(max_arity: usize) -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(arb_value(), 0..=max_arity).prop_map(Tuple::from)
}

proptest! {
    /// Interning is idempotent and resolution is the left inverse.
    #[test]
    fn intern_resolve_roundtrip(names in proptest::collection::vec("[a-z][a-z0-9_]{0,12}", 1..20)) {
        let interner = Interner::new();
        let ids: Vec<_> = names.iter().map(|n| interner.intern(n)).collect();
        for (name, &id) in names.iter().zip(&ids) {
            prop_assert_eq!(interner.intern(name), id);
            prop_assert_eq!(interner.resolve(id), name.clone());
        }
    }

    /// `cmp_by_name` agrees with string comparison regardless of interning
    /// order.
    #[test]
    fn cmp_by_name_matches_strings(a in "[a-z]{1,8}", b in "[a-z]{1,8}", swap in any::<bool>()) {
        let interner = Interner::new();
        let (first, second) = if swap { (&b, &a) } else { (&a, &b) };
        let ia = interner.intern(first);
        let ib = interner.intern(second);
        prop_assert_eq!(interner.cmp_by_name(ia, ib), first.cmp(second));
    }

    /// Projection keeps exactly the requested positions in order.
    #[test]
    fn projection_selects_positions(t in arb_tuple(6), seed in any::<u64>()) {
        if t.arity() == 0 { return Ok(()); }
        // Derive a pseudo-random position list from the seed.
        let positions: Vec<usize> =
            (0..t.arity()).filter(|i| (seed >> i) & 1 == 1).collect();
        let p = t.project(&positions);
        prop_assert_eq!(p.arity(), positions.len());
        for (k, &pos) in positions.iter().enumerate() {
            prop_assert_eq!(p[k], t[pos]);
        }
    }

    /// Appending increases arity by one and preserves the prefix.
    #[test]
    fn with_appended_preserves_prefix(t in arb_tuple(6), v in arb_value()) {
        let t2 = t.with_appended(v);
        prop_assert_eq!(t2.arity(), t.arity() + 1);
        prop_assert_eq!(&t2.values()[..t.arity()], t.values());
        prop_assert_eq!(t2[t.arity()], v);
    }

    /// RelType survives a display/parse roundtrip.
    #[test]
    fn reltype_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..12)) {
        let sorts: Vec<idlog_common::Sort> = bits
            .iter()
            .map(|&b| if b { idlog_common::Sort::I } else { idlog_common::Sort::U })
            .collect();
        let t = RelType::new(sorts);
        let reparsed: RelType = t.to_string().parse().unwrap();
        prop_assert_eq!(t, reparsed);
    }

    /// Equal tuples hash equally under Fx (sanity for set semantics).
    #[test]
    fn equal_tuples_hash_equal(t in arb_tuple(5)) {
        use std::hash::BuildHasher;
        let h = FxBuildHasher::default();
        let t2 = t.clone();
        prop_assert_eq!(h.hash_one(&t), h.hash_one(&t2));
    }

    /// Canonical tuple comparison is a total order consistent with equality.
    #[test]
    fn cmp_canonical_is_consistent(a in arb_tuple(4), b in arb_tuple(4)) {
        let interner = Interner::new();
        // Ensure all symbol ids resolve: re-intern names for ids used.
        for _ in 0..64 { interner.intern(&format!("s{}", interner.len())); }
        let ab = a.cmp_canonical(&b, &interner);
        let ba = b.cmp_canonical(&a, &interner);
        prop_assert_eq!(ab, ba.reverse());
        if a == b {
            prop_assert_eq!(ab, std::cmp::Ordering::Equal);
        }
    }
}
