//! Property-based Theorem 6 testing: randomly generated small Turing
//! machines, compiled to IDLOG, produce the same accepting-tape sets as
//! native exploration.

use proptest::prelude::*;

use idlog_core::EnumBudget;
use idlog_gtm::{compile_tm, explore, Move, Outcome, RunBudget, Tm, TmBuilder};

/// A random machine: ≤3 working states + accept state, alphabet {0,1,2},
/// 1–2 transitions per (state, symbol) over a random subset of pairs.
/// Transition targets may include the accept state, so many machines halt.
fn arb_tm() -> impl Strategy<Value = Tm> {
    let transition = (
        0u8..3,
        prop_oneof![Just(Move::Left), Just(Move::Right), Just(Move::Stay)],
        0usize..4,
    );
    proptest::collection::vec(
        (
            (0usize..3, 0u8..3),
            proptest::collection::vec(transition, 1..3),
        ),
        0..6,
    )
    .prop_map(|entries| {
        let mut b = TmBuilder::new(4, 3, 0, 3);
        for ((q, s), ts) in entries {
            for (w, mv, next) in ts {
                b = b.on(q, s, w, mv, next);
            }
        }
        b.build().expect("generated machine is well-formed")
    })
}

fn nonblank(tape: &[u8]) -> Vec<(usize, u8)> {
    tape.iter()
        .enumerate()
        .filter(|&(_, &s)| s != 0)
        .map(|(p, &s)| (p, s))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The \[HS89\] encoding of a unary relation decodes back to the same
    /// constants under any enumeration order.
    #[test]
    fn encode_decode_roundtrip(members in proptest::collection::btree_set(0usize..12, 0..8)) {
        use idlog_gtm::{decode_unary_relation, encode_database, EncodeOrder};
        use idlog_storage::Database;
        let mut db = Database::new();
        db.declare("p", idlog_core::RelType::elementary(1)).unwrap();
        for m in &members {
            db.insert_syms("p", &[&format!("c{m:02}")]).unwrap();
        }
        let order = EncodeOrder::canonical(&db);
        let tape = encode_database(&db, &order, &["p"]).unwrap();
        let decoded = decode_unary_relation(&tape, &order).unwrap();
        let mut names: Vec<String> =
            decoded.iter().map(|&s| db.interner().resolve(s)).collect();
        names.sort();
        let mut want: Vec<String> = members.iter().map(|m| format!("c{m:02}")).collect();
        want.sort();
        prop_assert_eq!(names, want);
    }

    /// Compiled accepting-tape sets equal native ones for bounded runs.
    #[test]
    fn compiled_matches_native(tm in arb_tm(), input in proptest::collection::vec(1u8..3, 0..3)) {
        const STEPS: usize = 4;
        const SPACE: usize = 8;
        // Native exploration with the same step bound; skip machines whose
        // exploration exceeds it (the compiled bound would differ).
        let native = match explore(&tm, &input, &RunBudget { max_steps: STEPS, max_configs: 10_000 }) {
            Ok(outs) => outs,
            Err(_) => return Ok(()), // some branch exceeded the budget: incomparable
        };
        let mut native_tapes: Vec<Vec<(usize, u8)>> = native
            .iter()
            .filter_map(|o| match o {
                Outcome::Accepted(t) => Some(nonblank(t)).filter(|nb| !nb.is_empty()),
                Outcome::Halted(_) => None,
            })
            .collect();
        native_tapes.sort();
        native_tapes.dedup();

        let compiled = compile_tm(&tm, STEPS, SPACE);
        let budget = EnumBudget { max_models: 500_000, max_answers: 100_000 };
        let tapes = compiled.accepting_tapes(&input, &budget).unwrap();
        prop_assert_eq!(
            tapes, native_tapes,
            "machine with {} transitions disagrees on input {:?}",
            tm.delta_entries().count(), input
        );
    }

    /// Acceptance (may/must) agrees between backends.
    #[test]
    fn acceptance_matches_native(tm in arb_tm()) {
        const STEPS: usize = 4;
        let native = match explore(&tm, &[], &RunBudget { max_steps: STEPS, max_configs: 10_000 }) {
            Ok(outs) => outs,
            Err(_) => return Ok(()),
        };
        let native_some = native.iter().any(|o| matches!(o, Outcome::Accepted(_)));
        let native_all = !native.is_empty()
            && native.iter().all(|o| matches!(o, Outcome::Accepted(_)));

        let compiled = compile_tm(&tm, STEPS, 8);
        let budget = EnumBudget { max_models: 500_000, max_answers: 100_000 };
        let (some, all) = compiled.acceptance(&[], &budget).unwrap();
        prop_assert_eq!(some, native_some, "may-accept disagrees");
        if native_some {
            prop_assert_eq!(all, native_all, "must-accept disagrees");
        }
    }
}
