//! Turing machine definitions.

use idlog_common::FxHashMap;

use crate::error::{GtmError, GtmResult};

/// Head movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// One cell left.
    Left,
    /// One cell right.
    Right,
    /// Stay put.
    Stay,
}

/// One transition: write `write`, move `mv`, go to `next`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Symbol written.
    pub write: u8,
    /// Head movement.
    pub mv: Move,
    /// Next state.
    pub next: usize,
}

/// A (possibly non-deterministic) Turing machine over a finite symbol
/// alphabet `0..n_symbols` (symbol 0 is the blank).
#[derive(Debug, Clone)]
pub struct Tm {
    n_states: usize,
    n_symbols: usize,
    start: usize,
    accept: usize,
    /// `(state, symbol)` → applicable transitions (empty = halt in place).
    delta: FxHashMap<(usize, u8), Vec<Transition>>,
}

impl Tm {
    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Alphabet size (symbol 0 is blank).
    pub fn n_symbols(&self) -> usize {
        self.n_symbols
    }

    /// Start state.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Accepting state (halting; no transitions may leave it).
    pub fn accept(&self) -> usize {
        self.accept
    }

    /// Transitions applicable in `(state, symbol)`.
    pub fn transitions(&self, state: usize, symbol: u8) -> &[Transition] {
        self.delta
            .get(&(state, symbol))
            .map_or(&[], |v| v.as_slice())
    }

    /// The largest branching factor over all `(state, symbol)` pairs.
    pub fn max_branching(&self) -> usize {
        self.delta.values().map(Vec::len).max().unwrap_or(0)
    }

    /// True when no configuration has more than one applicable transition.
    pub fn is_deterministic(&self) -> bool {
        self.max_branching() <= 1
    }

    /// Iterate all `(state, symbol, transitions)` entries.
    pub fn delta_entries(&self) -> impl Iterator<Item = (usize, u8, &[Transition])> {
        self.delta.iter().map(|(&(q, s), ts)| (q, s, ts.as_slice()))
    }
}

/// Builder for [`Tm`].
#[derive(Debug, Clone)]
pub struct TmBuilder {
    n_states: usize,
    n_symbols: usize,
    start: usize,
    accept: usize,
    delta: FxHashMap<(usize, u8), Vec<Transition>>,
}

impl TmBuilder {
    /// A machine skeleton with the given state and symbol counts.
    pub fn new(n_states: usize, n_symbols: usize, start: usize, accept: usize) -> Self {
        TmBuilder {
            n_states,
            n_symbols,
            start,
            accept,
            delta: FxHashMap::default(),
        }
    }

    /// Add a transition (may be called repeatedly on the same `(state,
    /// symbol)` for non-determinism).
    pub fn on(mut self, state: usize, symbol: u8, write: u8, mv: Move, next: usize) -> Self {
        self.delta
            .entry((state, symbol))
            .or_default()
            .push(Transition { write, mv, next });
        self
    }

    /// Validate and build.
    pub fn build(self) -> GtmResult<Tm> {
        if self.start >= self.n_states || self.accept >= self.n_states {
            return Err(GtmError::BadMachine {
                message: "start/accept state out of range".into(),
            });
        }
        for (&(q, s), ts) in &self.delta {
            if q >= self.n_states || s as usize >= self.n_symbols {
                return Err(GtmError::BadMachine {
                    message: format!("transition source ({q}, {s}) out of range"),
                });
            }
            if q == self.accept {
                return Err(GtmError::BadMachine {
                    message: "accepting state must halt".into(),
                });
            }
            for t in ts {
                if t.next >= self.n_states || t.write as usize >= self.n_symbols {
                    return Err(GtmError::BadMachine {
                        message: format!("transition target from ({q}, {s}) out of range"),
                    });
                }
            }
        }
        Ok(Tm {
            n_states: self.n_states,
            n_symbols: self.n_symbols,
            start: self.start,
            accept: self.accept,
            delta: self.delta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let tm = TmBuilder::new(3, 2, 0, 2)
            .on(0, 0, 1, Move::Right, 1)
            .on(1, 0, 0, Move::Stay, 2)
            .build()
            .unwrap();
        assert!(tm.is_deterministic());
        assert_eq!(tm.transitions(0, 0).len(), 1);
        assert_eq!(tm.transitions(0, 1).len(), 0);
        assert_eq!(tm.max_branching(), 1);
    }

    #[test]
    fn nondeterminism_detected() {
        let tm = TmBuilder::new(2, 2, 0, 1)
            .on(0, 0, 0, Move::Stay, 1)
            .on(0, 0, 1, Move::Stay, 1)
            .build()
            .unwrap();
        assert!(!tm.is_deterministic());
        assert_eq!(tm.max_branching(), 2);
    }

    #[test]
    fn rejects_bad_indices() {
        assert!(TmBuilder::new(2, 2, 5, 1).build().is_err());
        assert!(TmBuilder::new(2, 2, 0, 1)
            .on(0, 0, 7, Move::Stay, 1)
            .build()
            .is_err());
        assert!(TmBuilder::new(2, 2, 0, 1)
            .on(0, 5, 0, Move::Stay, 1)
            .build()
            .is_err());
    }

    #[test]
    fn accepting_state_must_halt() {
        assert!(TmBuilder::new(2, 2, 0, 1)
            .on(1, 0, 0, Move::Stay, 0)
            .build()
            .is_err());
    }
}
