//! TM → IDLOG: the executable core of Theorem 6.
//!
//! A bounded run of a (non-deterministic) Turing machine becomes a
//! stratified IDLOG program over configurations indexed by time:
//!
//! * `cell(T, P, S)`, `head(T, P)`, `state(T, Q)` hold the configuration;
//! * `coin(T, K) :- tm_time(T), K < kmax` lists the branch options at every
//!   step, and `flip(T, K) :- coin[1](T, K, 0)` **chooses one option per
//!   time step through an ID-literal** — one ID-function of `coin` grouped
//!   by `T` corresponds to one resolution of all the machine's choices,
//!   which is exactly how the paper's simulation obtains non-determinism;
//! * per-transition clauses advance the configuration, and a frame clause
//!   copies untouched cells.
//!
//! The tape is half-infinite with `max_space` usable cells; a head move off
//! either edge kills the branch, mirroring [`crate::run`].

use std::fmt::Write as _;
use std::sync::Arc;

use idlog_common::{Interner, Tuple, Value};
use idlog_core::{CoreResult, EnumBudget, Query};
use idlog_storage::Database;

use crate::machine::{Move, Tm};

/// A machine compiled to IDLOG source for a bounded run.
#[derive(Debug, Clone)]
pub struct CompiledTm {
    source: String,
    accept_state: usize,
    max_steps: usize,
    max_space: usize,
}

/// Compile `tm` for runs of at most `max_steps` steps over `max_space` tape
/// cells.
///
/// ```
/// use idlog_core::EnumBudget;
/// use idlog_gtm::{compile_tm, queries};
///
/// // A machine that writes 1 or 2 and accepts: two outcomes.
/// let compiled = compile_tm(&queries::coin_writer(), 2, 2);
/// let tapes = compiled.accepting_tapes(&[], &EnumBudget::default()).unwrap();
/// assert_eq!(tapes, vec![vec![(0, 1)], vec![(0, 2)]]);
/// ```
pub fn compile_tm(tm: &Tm, max_steps: usize, max_space: usize) -> CompiledTm {
    let kmax = tm.max_branching().max(1);
    let mut src = String::new();

    // Initial configuration.
    let _ = writeln!(src, "has_input(P) :- input_cell(P, S).");
    let _ = writeln!(src, "cell(0, P, S) :- input_cell(P, S).");
    let _ = writeln!(src, "cell(0, P, 0) :- tm_pos(P), not has_input(P).");
    let _ = writeln!(src, "head(0, 0).");
    let _ = writeln!(src, "state(0, {}).", tm.start());
    let _ = writeln!(
        src,
        "confp(T, P, Q, S) :- state(T, Q), head(T, P), cell(T, P, S)."
    );

    // The choice mechanism: one coin option per (time, branch index); the
    // ID-literal grouped by time picks one.
    let _ = writeln!(src, "coin(T, K) :- tm_time(T), K < {kmax}.");
    let _ = writeln!(src, "flip(T, K) :- coin[1](T, K, 0).");

    // Transitions. Entries are emitted in a deterministic order for
    // reproducible source output.
    let mut entries: Vec<(usize, u8)> = tm.delta_entries().map(|(q, s, _)| (q, s)).collect();
    entries.sort_unstable();
    for (q, s) in entries {
        let ts = tm.transitions(q, s);
        let l = ts.len();
        let sel = format!("sel_{q}_{s}");
        // Map the global coin value K onto a transition index R < l.
        if l == 1 {
            let _ = writeln!(src, "{sel}(T, 0) :- flip(T, K).");
        } else if l == kmax {
            let _ = writeln!(src, "{sel}(T, K) :- flip(T, K).");
        } else {
            // R = K mod l, computed with the safe binding patterns
            // plus(nbb) and times(bnb).
            let _ = writeln!(
                src,
                "{sel}(T, R) :- flip(T, K), R < {l}, plus(P1, R, K), times({l}, Q2, P1)."
            );
        }
        for (k, t) in ts.iter().enumerate() {
            // The guard includes the move's feasibility: a transition whose
            // move would leave the tape does not fire at all (matching the
            // native semantics in `run`).
            let (guard, head_var) = match t.mv {
                Move::Stay => (
                    format!("confp(T, P, {q}, {s}), {sel}(T, {k}), succ(T, T2)"),
                    "P",
                ),
                Move::Right => (
                    format!(
                        "confp(T, P, {q}, {s}), {sel}(T, {k}), succ(T, T2),                          succ(P, P2), tm_pos(P2)"
                    ),
                    "P2",
                ),
                Move::Left => (
                    format!(
                        "confp(T, P, {q}, {s}), {sel}(T, {k}), succ(T, T2), succ(P2, P)"
                    ),
                    "P2",
                ),
            };
            let _ = writeln!(src, "state(T2, {}) :- {guard}.", t.next);
            let _ = writeln!(src, "cell(T2, P, {}) :- {guard}.", t.write);
            let _ = writeln!(src, "cell(T2, PC, S) :- {guard}, cell(T, PC, S), PC != P.");
            let _ = writeln!(src, "head(T2, {head_var}) :- {guard}.");
        }
    }

    // Outcome extraction.
    let accept = tm.accept();
    let _ = writeln!(src, "accepted :- state(T, {accept}).");
    let _ = writeln!(
        src,
        "result(P, S) :- state(T, {accept}), cell(T, P, S), S != 0."
    );

    CompiledTm {
        source: src,
        accept_state: accept,
        max_steps,
        max_space,
    }
}

impl CompiledTm {
    /// The generated IDLOG source.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The accepting state the outcome predicates refer to.
    pub fn accept_state(&self) -> usize {
        self.accept_state
    }

    /// Build the query for one of the outcome predicates (`"accepted"` or
    /// `"result"`).
    pub fn query(&self, output: &str) -> CoreResult<Query> {
        Query::parse(&self.source, output)
    }

    /// The input database for a run on `input`: time and position ranges
    /// plus the initial tape.
    pub fn database(&self, interner: &Arc<Interner>, input: &[u8]) -> Database {
        let mut db = Database::with_interner(Arc::clone(interner));
        for t in 0..=self.max_steps as i64 {
            db.insert("tm_time", Tuple::new(vec![Value::Int(t)]))
                .expect("i-typed");
        }
        for p in 0..self.max_space as i64 {
            db.insert("tm_pos", Tuple::new(vec![Value::Int(p)]))
                .expect("i-typed");
        }
        db.declare("input_cell", "11".parse().expect("literal type"))
            .expect("fresh relation");
        for (p, &s) in input.iter().enumerate() {
            if s != 0 {
                db.insert(
                    "input_cell",
                    Tuple::new(vec![Value::Int(p as i64), Value::Int(s as i64)]),
                )
                .expect("i-typed");
            }
        }
        db
    }

    /// Every distinct accepting final tape, as sorted `(position, symbol)`
    /// lists of the non-blank cells. Non-accepting branches contribute an
    /// empty `result` relation, which is filtered out.
    pub fn accepting_tapes(
        &self,
        input: &[u8],
        budget: &EnumBudget,
    ) -> CoreResult<Vec<Vec<(usize, u8)>>> {
        let query = self.query("result")?;
        let db = self.database(query.interner(), input);
        let answers = query.session(&db).budget(*budget).all_answers()?;
        let mut tapes: Vec<Vec<(usize, u8)>> = answers
            .iter()
            .filter(|rel| !rel.is_empty())
            .map(|rel| {
                let mut cells: Vec<(usize, u8)> = rel
                    .iter()
                    .map(|t| {
                        let p = t[0].as_int().expect("position") as usize;
                        let s = t[1].as_int().expect("symbol") as u8;
                        (p, s)
                    })
                    .collect();
                cells.sort_unstable();
                cells
            })
            .collect();
        tapes.sort();
        tapes.dedup();
        Ok(tapes)
    }

    /// Whether some branch accepts / every branch accepts, from the answer
    /// set of the 0-ary `accepted` predicate.
    pub fn acceptance(&self, input: &[u8], budget: &EnumBudget) -> CoreResult<(bool, bool)> {
        let query = self.query("accepted")?;
        let db = self.database(query.interner(), input);
        let answers = query.session(&db).budget(*budget).all_answers()?;
        let mut some = false;
        let mut all = true;
        for rel in answers.iter() {
            if rel.is_empty() {
                all = false;
            } else {
                some = true;
            }
        }
        Ok((some, all && some))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::{coin_writer, parity, successor};
    use crate::run::{explore, Outcome, RunBudget};

    /// Non-blank cells of a native outcome tape.
    fn nonblank(tape: &[u8]) -> Vec<(usize, u8)> {
        tape.iter()
            .enumerate()
            .filter(|&(_, &s)| s != 0)
            .map(|(p, &s)| (p, s))
            .collect()
    }

    #[test]
    fn compiled_successor_matches_native() {
        let tm = successor();
        let compiled = compile_tm(&tm, 6, 6);
        let budget = EnumBudget::default();
        for input in [vec![1u8], vec![2], vec![2, 2], vec![1, 2]] {
            let native = explore(&tm, &input, &RunBudget::default()).unwrap();
            let mut native_tapes: Vec<Vec<(usize, u8)>> = native
                .iter()
                .filter_map(|o| match o {
                    Outcome::Accepted(t) => Some(nonblank(t)),
                    Outcome::Halted(_) => None,
                })
                .collect();
            native_tapes.sort();
            let idlog_tapes = compiled.accepting_tapes(&input, &budget).unwrap();
            assert_eq!(idlog_tapes, native_tapes, "input {input:?}");
        }
    }

    #[test]
    fn compiled_parity_accepts_even() {
        let tm = parity();
        let compiled = compile_tm(&tm, 6, 6);
        let budget = EnumBudget::default();
        let (some, all) = compiled.acceptance(&[2, 2], &budget).unwrap();
        assert!(some && all, "even input accepted on the only branch");
        let (some, _) = compiled.acceptance(&[2], &budget).unwrap();
        assert!(!some, "odd input never accepts");
    }

    #[test]
    fn compiled_coin_writer_has_two_tapes() {
        let tm = coin_writer();
        let compiled = compile_tm(&tm, 2, 2);
        let budget = EnumBudget::default();
        let tapes = compiled.accepting_tapes(&[], &budget).unwrap();
        assert_eq!(tapes, vec![vec![(0, 1)], vec![(0, 2)]]);
        let (some, all) = compiled.acceptance(&[], &budget).unwrap();
        assert!(some && all, "both branches accept");
    }

    #[test]
    fn generated_source_is_valid_idlog() {
        let compiled = compile_tm(&coin_writer(), 3, 3);
        assert!(compiled
            .source()
            .contains("flip(T, K) :- coin[1](T, K, 0)."));
        compiled.query("result").unwrap();
    }
}
