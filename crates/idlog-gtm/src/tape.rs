//! Half-infinite tapes.
//!
//! The compiled IDLOG simulation works over a bounded position range, so
//! the native tape is half-infinite (positions `0..`) to match: a machine
//! that walks off the left edge halts (the branch dies), in both backends.

use idlog_common::FxHashMap;

/// A tape over symbols `0..n` (0 = blank), positions `0..`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tape {
    cells: FxHashMap<usize, u8>,
    head: usize,
}

impl Tape {
    /// A tape initialized with `input` starting at position 0, head at 0.
    pub fn new(input: &[u8]) -> Self {
        let cells = input
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s != 0)
            .map(|(i, &s)| (i, s))
            .collect();
        Tape { cells, head: 0 }
    }

    /// Current head position.
    pub fn head(&self) -> usize {
        self.head
    }

    /// Symbol under the head.
    pub fn read(&self) -> u8 {
        self.cells.get(&self.head).copied().unwrap_or(0)
    }

    /// Write under the head.
    pub fn write(&mut self, s: u8) {
        if s == 0 {
            self.cells.remove(&self.head);
        } else {
            self.cells.insert(self.head, s);
        }
    }

    /// Move the head left; false (and no move) at the left edge.
    pub fn left(&mut self) -> bool {
        if self.head == 0 {
            return false;
        }
        self.head -= 1;
        true
    }

    /// Move the head right.
    pub fn right(&mut self) {
        self.head += 1;
    }

    /// Rightmost non-blank position, if any.
    pub fn extent(&self) -> Option<usize> {
        self.cells.keys().copied().max()
    }

    /// The tape contents from position 0 through the last non-blank cell.
    pub fn contents(&self) -> Vec<u8> {
        match self.extent() {
            None => Vec::new(),
            Some(hi) => (0..=hi)
                .map(|i| self.cells.get(&i).copied().unwrap_or(0))
                .collect(),
        }
    }

    /// A canonical key (sorted cells + head) for visited-set deduplication.
    pub fn key(&self) -> (usize, Vec<(usize, u8)>) {
        let mut cells: Vec<(usize, u8)> = self.cells.iter().map(|(&p, &s)| (p, s)).collect();
        cells.sort_unstable();
        (self.head, cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_move() {
        let mut t = Tape::new(&[1, 2, 0, 3]);
        assert_eq!(t.read(), 1);
        t.right();
        assert_eq!(t.read(), 2);
        t.write(0);
        assert_eq!(t.read(), 0);
        assert!(t.left());
        assert!(!t.left());
        assert_eq!(t.head(), 0);
    }

    #[test]
    fn contents_trim_trailing_blanks() {
        let t = Tape::new(&[0, 1, 0, 0]);
        assert_eq!(t.contents(), vec![0, 1]);
        let empty = Tape::new(&[0, 0]);
        assert_eq!(empty.contents(), Vec::<u8>::new());
    }

    #[test]
    fn keys_distinguish_head_positions() {
        let mut a = Tape::new(&[1]);
        let b = a.clone();
        a.right();
        assert_ne!(a.key(), b.key());
    }
}
