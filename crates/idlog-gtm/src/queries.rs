//! Concrete machines used by the expressiveness experiments (E13).

use crate::encode::{SYM_LPAREN, SYM_RBRACKET};
use crate::machine::{Move, Tm, TmBuilder};

/// Deterministic: accepts iff the tape holds an even number of `1` symbols
/// (symbol 2), terminated by a blank. Leaves the tape unchanged.
///
/// States: 0 = even-so-far (start), 1 = odd-so-far, 2 = accept.
pub fn parity() -> Tm {
    TmBuilder::new(3, 3, 0, 2)
        .on(0, 1, 1, Move::Right, 0) // skip 0-bits
        .on(1, 1, 1, Move::Right, 1)
        .on(0, 2, 2, Move::Right, 1) // 1-bit flips parity
        .on(1, 2, 2, Move::Right, 0)
        .on(0, 0, 0, Move::Stay, 2) // blank: accept iff even
        .build()
        .expect("parity machine is well-formed")
}

/// Deterministic: binary increment, least-significant bit first (symbol 1 =
/// bit 0, symbol 2 = bit 1). Accepts with the incremented number on tape.
pub fn successor() -> Tm {
    TmBuilder::new(2, 3, 0, 1)
        .on(0, 2, 1, Move::Right, 0) // carry through 1-bits
        .on(0, 1, 2, Move::Stay, 1) // flip the first 0-bit, done
        .on(0, 0, 2, Move::Stay, 1) // carry past the end: append a 1-bit
        .build()
        .expect("successor machine is well-formed")
}

/// Non-deterministic: writes symbol 1 **or** symbol 2 at the head, then
/// accepts — the minimal machine whose outcome *set* has two elements.
pub fn coin_writer() -> Tm {
    TmBuilder::new(2, 3, 0, 1)
        .on(0, 0, 1, Move::Stay, 1)
        .on(0, 0, 2, Move::Stay, 1)
        .build()
        .expect("coin machine is well-formed")
}

/// Deterministic, over the database-encoding alphabet: accepts iff the
/// (first) encoded relation is non-empty — it scans for a `(` before the
/// closing `]`. Exercises the \[HS89\] encoding end-to-end.
pub fn nonempty_scanner() -> Tm {
    // States: 0 scan, 1 accept.
    let mut b = TmBuilder::new(2, crate::encode::ENCODING_ALPHABET, 0, 1);
    b = b.on(0, SYM_LPAREN, SYM_LPAREN, Move::Stay, 1);
    for s in 0..crate::encode::ENCODING_ALPHABET as u8 {
        if s != SYM_LPAREN && s != SYM_RBRACKET && s != 0 {
            b = b.on(0, s, s, Move::Right, 0);
        }
    }
    // `]` and blank: no transition — halt without accepting.
    b.build().expect("scanner machine is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{explore, run_deterministic, Outcome, RunBudget};

    #[test]
    fn parity_accepts_even_rejects_odd() {
        let b = RunBudget::default();
        assert!(matches!(
            run_deterministic(&parity(), &[2, 1, 2], &b).unwrap(),
            Outcome::Accepted(_)
        ));
        assert!(matches!(
            run_deterministic(&parity(), &[2, 1], &b).unwrap(),
            Outcome::Halted(_)
        ));
        assert!(matches!(
            run_deterministic(&parity(), &[], &b).unwrap(),
            Outcome::Accepted(_)
        ));
    }

    #[test]
    fn successor_increments() {
        let b = RunBudget::default();
        // 3 = [2,2] (LSB first) → 4 = [1,1,2].
        let Outcome::Accepted(tape) = run_deterministic(&successor(), &[2, 2], &b).unwrap() else {
            panic!("expected acceptance");
        };
        assert_eq!(tape, vec![1, 1, 2]);
        // 0 = [1] → 1 = [2].
        let Outcome::Accepted(tape) = run_deterministic(&successor(), &[1], &b).unwrap() else {
            panic!("expected acceptance");
        };
        assert_eq!(tape, vec![2]);
    }

    #[test]
    fn coin_writer_has_two_outcomes() {
        let outs = explore(&coin_writer(), &[], &RunBudget::default()).unwrap();
        assert_eq!(outs.len(), 2);
    }

    #[test]
    fn scanner_detects_nonempty_encoding() {
        use crate::encode::{encode_database, EncodeOrder};
        use idlog_storage::Database;
        let b = RunBudget::default();

        let mut db = Database::new();
        db.insert_syms("p", &["a"]).unwrap();
        let order = EncodeOrder::canonical(&db);
        let tape = encode_database(&db, &order, &["p"]).unwrap();
        assert!(matches!(
            run_deterministic(&nonempty_scanner(), &tape, &b).unwrap(),
            Outcome::Accepted(_)
        ));

        let mut empty = Database::new();
        empty
            .declare("p", idlog_common::RelType::elementary(1))
            .unwrap();
        let order = EncodeOrder::canonical(&empty);
        let tape = encode_database(&empty, &order, &["p"]).unwrap();
        assert!(matches!(
            run_deterministic(&nonempty_scanner(), &tape, &b).unwrap(),
            Outcome::Halted(_)
        ));
    }
}
