//! Errors for the Turing machine substrate.

use std::fmt;

/// Failures building, encoding for, or running a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GtmError {
    /// Machine definition is inconsistent (bad state/symbol index, …).
    BadMachine {
        /// What is wrong.
        message: String,
    },
    /// Input uses a symbol outside the machine's alphabet.
    BadInput {
        /// What is wrong.
        message: String,
    },
    /// Execution exceeded the step or branch budget.
    BudgetExceeded {
        /// Which bound tripped.
        what: String,
    },
}

impl fmt::Display for GtmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GtmError::BadMachine { message } => write!(f, "bad machine: {message}"),
            GtmError::BadInput { message } => write!(f, "bad input: {message}"),
            GtmError::BudgetExceeded { what } => write!(f, "budget exceeded: {what}"),
        }
    }
}

impl std::error::Error for GtmError {}

/// Result alias.
pub type GtmResult<T> = Result<T, GtmError>;
