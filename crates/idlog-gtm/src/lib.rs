//! Generic Turing machines over databases, and the constructive side of the
//! paper's expressiveness results (Theorems 5/6 via \[HS89\]).
//!
//! The paper proves that stratified IDLOG programs define *all* computable
//! non-deterministic queries by simulating (non-deterministic) generic
//! Turing machines. This crate makes that construction executable:
//!
//! * [`machine`]/[`tape`]/[`run`] — a (non-)deterministic TM substrate with
//!   bounded execution and exhaustive branch exploration;
//! * [`encode`] — the \[HS89\]-style encoding of a database onto a tape:
//!   uninterpreted constants become bit-strings under a chosen enumeration
//!   order, tuples and relations are bracketed with the distinguished
//!   symbols `( ) , [ ]`;
//! * [`compile`] — a TM → IDLOG compiler for bounded runs: configurations
//!   become `state/head/cell` facts indexed by time, and **non-deterministic
//!   branching is realized with an ID-literal** — a `coin` relation grouped
//!   by time step whose tid-0 tuple selects the transition, exactly the
//!   mechanism Theorem 6 uses;
//! * [`queries`] — concrete example machines (parity, successor, a
//!   non-deterministic bit-writer) used by the expressiveness experiments.

#![warn(missing_docs)]

pub mod compile;
pub mod encode;
pub mod error;
pub mod machine;
pub mod queries;
pub mod run;
pub mod tape;

pub use compile::{compile_tm, CompiledTm};
pub use encode::{decode_unary_relation, encode_database, EncodeOrder};
pub use error::{GtmError, GtmResult};
pub use machine::{Move, Tm, TmBuilder};
pub use run::{explore, run_deterministic, Outcome, RunBudget};
pub use tape::Tape;
