//! Database ↔ tape encodings, following the scheme sketched in \[HS89\] and
//! the paper (§3.1): the input database is "placed into an ordered list,
//! where each uninterpreted constant is encoded as a string of 0s and 1s",
//! with the distinguished symbols `0 1 , ( ) [ ]` in the tape alphabet.
//!
//! Tape symbol assignment (symbol 0 is the blank):
//!
//! | symbol | meaning |
//! |--------|---------|
//! | 1      | bit `0` |
//! | 2      | bit `1` |
//! | 3      | `,`     |
//! | 4      | `(`     |
//! | 5      | `)`     |
//! | 6      | `[`     |
//! | 7      | `]`     |
//!
//! A *generic* machine's behaviour must not depend on the enumeration order
//! of the constants; [`EncodeOrder`] makes the order an explicit input so
//! genericity can be tested by permuting it.

use idlog_common::{FxHashMap, Interner, SymbolId};
use idlog_storage::{Database, Relation};

use crate::error::{GtmError, GtmResult};

/// Tape symbol for bit 0.
pub const SYM_BIT0: u8 = 1;
/// Tape symbol for bit 1.
pub const SYM_BIT1: u8 = 2;
/// Tape symbol for `,`.
pub const SYM_COMMA: u8 = 3;
/// Tape symbol for `(`.
pub const SYM_LPAREN: u8 = 4;
/// Tape symbol for `)`.
pub const SYM_RPAREN: u8 = 5;
/// Tape symbol for `[`.
pub const SYM_LBRACKET: u8 = 6;
/// Tape symbol for `]`.
pub const SYM_RBRACKET: u8 = 7;
/// Alphabet size for encoded databases (0 = blank plus the seven above).
pub const ENCODING_ALPHABET: usize = 8;

/// An enumeration order of the u-domain.
#[derive(Debug, Clone)]
pub struct EncodeOrder {
    order: Vec<SymbolId>,
    index: FxHashMap<SymbolId, usize>,
    width: usize,
}

impl EncodeOrder {
    /// Build from an explicit constant order.
    pub fn new(order: Vec<SymbolId>) -> Self {
        let index = order.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let width = bits_needed(order.len());
        EncodeOrder {
            order,
            index,
            width,
        }
    }

    /// Canonical (name-sorted) order of a database's u-domain.
    pub fn canonical(db: &Database) -> Self {
        let interner = db.interner();
        let mut order: Vec<SymbolId> = db.u_domain().into_iter().collect();
        order.sort_by(|&a, &b| interner.cmp_by_name(a, b));
        Self::new(order)
    }

    /// Bits per constant.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of constants.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The constant at `index`.
    pub fn constant(&self, index: usize) -> Option<SymbolId> {
        self.order.get(index).copied()
    }

    fn encode_constant(&self, s: SymbolId, out: &mut Vec<u8>) -> GtmResult<()> {
        let &i = self.index.get(&s).ok_or_else(|| GtmError::BadInput {
            message: "constant not in the enumeration order".into(),
        })?;
        for bit in (0..self.width).rev() {
            out.push(if (i >> bit) & 1 == 1 {
                SYM_BIT1
            } else {
                SYM_BIT0
            });
        }
        Ok(())
    }

    fn decode_constant(&self, bits: &[u8]) -> GtmResult<SymbolId> {
        let mut i = 0usize;
        for &b in bits {
            i = (i << 1)
                | match b {
                    SYM_BIT0 => 0,
                    SYM_BIT1 => 1,
                    other => {
                        return Err(GtmError::BadInput {
                            message: format!("expected a bit, found symbol {other}"),
                        })
                    }
                };
        }
        self.constant(i).ok_or_else(|| GtmError::BadInput {
            message: format!("constant index {i} out of range"),
        })
    }
}

fn bits_needed(n: usize) -> usize {
    if n <= 1 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// Encode the named relations of `db` (in the given order) onto a tape:
/// `[(c,c),(c,c)][...]` — one bracketed group per relation, tuples in
/// canonical order under `order`'s interner.
pub fn encode_database(
    db: &Database,
    order: &EncodeOrder,
    relations: &[&str],
) -> GtmResult<Vec<u8>> {
    let interner = db.interner();
    let mut out = Vec::new();
    for &name in relations {
        out.push(SYM_LBRACKET);
        if let Some(rel) = db.relation(name) {
            if !rel.rtype().is_elementary() {
                return Err(GtmError::BadInput {
                    message: format!("relation {name} is not elementary"),
                });
            }
            for (ti, t) in rel.sorted_canonical(interner).iter().enumerate() {
                if ti > 0 {
                    out.push(SYM_COMMA);
                }
                out.push(SYM_LPAREN);
                for (ci, v) in t.values().iter().enumerate() {
                    if ci > 0 {
                        out.push(SYM_COMMA);
                    }
                    let s = v.as_sym().expect("elementary relation");
                    order.encode_constant(s, &mut out)?;
                }
                out.push(SYM_RPAREN);
            }
        }
        out.push(SYM_RBRACKET);
    }
    Ok(out)
}

/// Decode one bracketed unary relation `[(c),(c),…]` from the start of a
/// tape back into constants.
pub fn decode_unary_relation(tape: &[u8], order: &EncodeOrder) -> GtmResult<Vec<SymbolId>> {
    let mut out = Vec::new();
    let mut at = 0usize;
    let expect = |at: &mut usize, want: u8| -> GtmResult<()> {
        if tape.get(*at) == Some(&want) {
            *at += 1;
            Ok(())
        } else {
            Err(GtmError::BadInput {
                message: format!("expected symbol {want} at {at:?}", at = *at),
            })
        }
    };
    expect(&mut at, SYM_LBRACKET)?;
    while tape.get(at) != Some(&SYM_RBRACKET) {
        if !out.is_empty() {
            expect(&mut at, SYM_COMMA)?;
        }
        expect(&mut at, SYM_LPAREN)?;
        let start = at;
        while matches!(tape.get(at), Some(&SYM_BIT0) | Some(&SYM_BIT1)) {
            at += 1;
        }
        out.push(order.decode_constant(&tape[start..at])?);
        expect(&mut at, SYM_RPAREN)?;
    }
    Ok(out)
}

/// Build a [`Relation`] from decoded unary constants (test/report helper).
pub fn unary_relation(constants: &[SymbolId]) -> Relation {
    let mut rel = Relation::elementary(1);
    for &c in constants {
        rel.insert(vec![idlog_common::Value::Sym(c)].into())
            .expect("unary symbols");
    }
    rel
}

/// The interner-aware rendering of a tape, for debugging.
pub fn render_tape(tape: &[u8]) -> String {
    tape.iter()
        .map(|&s| match s {
            0 => '·',
            SYM_BIT0 => '0',
            SYM_BIT1 => '1',
            SYM_COMMA => ',',
            SYM_LPAREN => '(',
            SYM_RPAREN => ')',
            SYM_LBRACKET => '[',
            SYM_RBRACKET => ']',
            _ => '?',
        })
        .collect()
}

// Silence the unused-import lint for Interner, which only appears in docs.
#[allow(unused)]
fn _doc_only(_: &Interner) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with(facts: &[(&str, &[&str])]) -> Database {
        let mut db = Database::new();
        for (pred, cols) in facts {
            db.insert_syms(pred, cols).unwrap();
        }
        db
    }

    #[test]
    fn bits_needed_matches_log2() {
        assert_eq!(bits_needed(0), 1);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(2), 1);
        assert_eq!(bits_needed(3), 2);
        assert_eq!(bits_needed(4), 2);
        assert_eq!(bits_needed(5), 3);
    }

    #[test]
    fn encode_unary_and_render() {
        let db = db_with(&[("p", &["a"]), ("p", &["b"])]);
        let order = EncodeOrder::canonical(&db);
        let tape = encode_database(&db, &order, &["p"]).unwrap();
        assert_eq!(render_tape(&tape), "[(0),(1)]");
    }

    #[test]
    fn encode_binary_relation() {
        let db = db_with(&[("e", &["a", "b"])]);
        let order = EncodeOrder::canonical(&db);
        let tape = encode_database(&db, &order, &["e"]).unwrap();
        assert_eq!(render_tape(&tape), "[(0,1)]");
    }

    #[test]
    fn decode_roundtrip() {
        let db = db_with(&[("p", &["x"]), ("p", &["y"]), ("p", &["z"])]);
        let order = EncodeOrder::canonical(&db);
        let tape = encode_database(&db, &order, &["p"]).unwrap();
        let decoded = decode_unary_relation(&tape, &order).unwrap();
        let names: Vec<String> = decoded.iter().map(|&s| db.interner().resolve(s)).collect();
        assert_eq!(names, ["x", "y", "z"]);
    }

    #[test]
    fn empty_relation_is_brackets() {
        let mut db = Database::new();
        db.declare("p", idlog_common::RelType::elementary(1))
            .unwrap();
        let order = EncodeOrder::canonical(&db);
        let tape = encode_database(&db, &order, &["p"]).unwrap();
        assert_eq!(render_tape(&tape), "[]");
        assert!(decode_unary_relation(&tape, &order).unwrap().is_empty());
    }

    #[test]
    fn multiple_relations_in_order() {
        let db = db_with(&[("p", &["a"]), ("q", &["b"])]);
        let order = EncodeOrder::canonical(&db);
        let tape = encode_database(&db, &order, &["q", "p"]).unwrap();
        assert_eq!(render_tape(&tape), "[(1)][(0)]");
    }

    #[test]
    fn unknown_constant_is_error() {
        let db = db_with(&[("p", &["a"])]);
        let order = EncodeOrder::canonical(&db);
        let mut other = Database::with_interner(db.interner().clone());
        other.insert_syms("p", &["zzz"]).unwrap();
        assert!(encode_database(&other, &order, &["p"]).is_err());
    }
}
