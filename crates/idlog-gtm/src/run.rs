//! Bounded execution: deterministic runs and exhaustive branch exploration.

use idlog_common::FxHashSet;

use crate::error::{GtmError, GtmResult};
use crate::machine::{Move, Tm};
use crate::tape::Tape;

/// Bounds on execution.
#[derive(Debug, Clone, Copy)]
pub struct RunBudget {
    /// Maximum steps along any single run.
    pub max_steps: usize,
    /// Maximum configurations explored in [`explore`].
    pub max_configs: usize,
}

impl Default for RunBudget {
    fn default() -> Self {
        RunBudget {
            max_steps: 10_000,
            max_configs: 100_000,
        }
    }
}

/// How one run (or branch) ended.
///
/// Non-deterministic choice is *choose-then-block*: a branch first commits
/// to a transition; if that transition's move would fall off the left tape
/// edge, the branch halts in place (no write, no state change). This matches
/// the compiled IDLOG simulation, where the coin is flipped before the move
/// guard can fail, so outcome sets are comparable model-for-model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Halted in the accepting state; the final tape contents.
    Accepted(Vec<u8>),
    /// Halted in a non-accepting state.
    Halted(Vec<u8>),
}

/// A transition is applicable when its move stays on the tape.
fn applicable(t: &crate::machine::Transition, tape: &Tape) -> bool {
    !(t.mv == Move::Left && tape.head() == 0)
}

/// Run a deterministic machine to halting (or budget exhaustion).
pub fn run_deterministic(tm: &Tm, input: &[u8], budget: &RunBudget) -> GtmResult<Outcome> {
    if !tm.is_deterministic() {
        return Err(GtmError::BadMachine {
            message: "run_deterministic on a non-deterministic machine".into(),
        });
    }
    check_input(tm, input)?;
    let mut tape = Tape::new(input);
    let mut state = tm.start();
    for _ in 0..budget.max_steps {
        let ts = tm.transitions(state, tape.read());
        // Deterministic: one candidate; blocked or absent means halt.
        let Some(t) = ts.first().filter(|t| applicable(t, &tape)) else {
            return Ok(done(tm, state, &tape));
        };
        tape.write(t.write);
        match t.mv {
            Move::Left => {
                let moved = tape.left();
                debug_assert!(moved, "applicability checked above");
            }
            Move::Right => tape.right(),
            Move::Stay => {}
        }
        state = t.next;
    }
    Err(GtmError::BudgetExceeded {
        what: format!("{} steps", budget.max_steps),
    })
}

fn done(tm: &Tm, state: usize, tape: &Tape) -> Outcome {
    if state == tm.accept() {
        Outcome::Accepted(tape.contents())
    } else {
        Outcome::Halted(tape.contents())
    }
}

/// Explore every branch of a (non-deterministic) machine; returns the set
/// of distinct outcomes (deduplicated).
pub fn explore(tm: &Tm, input: &[u8], budget: &RunBudget) -> GtmResult<Vec<Outcome>> {
    check_input(tm, input)?;
    let mut outcomes: Vec<Outcome> = Vec::new();
    let mut seen_outcomes: FxHashSet<(bool, Vec<u8>)> = FxHashSet::default();
    type ConfigKey = (usize, usize, (usize, Vec<(usize, u8)>));
    let mut visited: FxHashSet<ConfigKey> = FxHashSet::default();
    // (state, steps, tape)
    let mut stack: Vec<(usize, usize, Tape)> = vec![(tm.start(), 0, Tape::new(input))];

    while let Some((state, steps, tape)) = stack.pop() {
        if !visited.insert((state, steps, tape.key())) {
            continue;
        }
        if visited.len() > budget.max_configs {
            return Err(GtmError::BudgetExceeded {
                what: format!("{} configurations", budget.max_configs),
            });
        }
        let ts = tm.transitions(state, tape.read());
        if ts.is_empty() || steps >= budget.max_steps {
            if ts.is_empty() {
                let o = done(tm, state, &tape);
                let k = (matches!(o, Outcome::Accepted(_)), contents_of(&o));
                if seen_outcomes.insert(k) {
                    outcomes.push(o);
                }
            } else {
                return Err(GtmError::BudgetExceeded {
                    what: format!("{} steps", budget.max_steps),
                });
            }
            continue;
        }
        for t in ts {
            // Choose-then-block: a committed-to transition whose move is
            // impossible halts this branch in place, without the write.
            if !applicable(t, &tape) {
                let o = done(tm, state, &tape);
                let k = (matches!(o, Outcome::Accepted(_)), contents_of(&o));
                if seen_outcomes.insert(k) {
                    outcomes.push(o);
                }
                continue;
            }
            let mut tape2 = tape.clone();
            tape2.write(t.write);
            match t.mv {
                Move::Left => {
                    let moved = tape2.left();
                    debug_assert!(moved, "applicability checked above");
                }
                Move::Right => tape2.right(),
                Move::Stay => {}
            }
            stack.push((t.next, steps + 1, tape2));
        }
    }
    Ok(outcomes)
}

fn contents_of(o: &Outcome) -> Vec<u8> {
    match o {
        Outcome::Accepted(v) | Outcome::Halted(v) => v.clone(),
    }
}

fn check_input(tm: &Tm, input: &[u8]) -> GtmResult<()> {
    if let Some(&bad) = input.iter().find(|&&s| s as usize >= tm.n_symbols()) {
        return Err(GtmError::BadInput {
            message: format!("symbol {bad} outside alphabet of size {}", tm.n_symbols()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::TmBuilder;

    /// Replaces every 1 with 2, accepts at the first blank.
    fn rewriter() -> Tm {
        TmBuilder::new(2, 3, 0, 1)
            .on(0, 1, 2, Move::Right, 0)
            .on(0, 2, 2, Move::Right, 0)
            .on(0, 0, 0, Move::Stay, 1)
            .build()
            .unwrap()
    }

    #[test]
    fn deterministic_run() {
        let out = run_deterministic(&rewriter(), &[1, 1, 2], &RunBudget::default()).unwrap();
        assert_eq!(out, Outcome::Accepted(vec![2, 2, 2]));
    }

    #[test]
    fn explore_matches_deterministic() {
        let outs = explore(&rewriter(), &[1, 1], &RunBudget::default()).unwrap();
        assert_eq!(outs, vec![Outcome::Accepted(vec![2, 2])]);
    }

    #[test]
    fn nondeterministic_branches() {
        // Writes 1 or 2 at position 0, then accepts.
        let tm = TmBuilder::new(2, 3, 0, 1)
            .on(0, 0, 1, Move::Stay, 1)
            .on(0, 0, 2, Move::Stay, 1)
            .build()
            .unwrap();
        let mut outs = explore(&tm, &[], &RunBudget::default()).unwrap();
        outs.sort_by_key(contents_of);
        assert_eq!(
            outs,
            vec![Outcome::Accepted(vec![1]), Outcome::Accepted(vec![2])]
        );
        assert!(run_deterministic(&tm, &[], &RunBudget::default()).is_err());
    }

    #[test]
    fn left_edge_blocks_the_transition() {
        // The only transition moves left from position 0: inapplicable, so
        // the machine halts immediately without writing.
        let tm = TmBuilder::new(2, 2, 0, 1)
            .on(0, 0, 1, Move::Left, 0)
            .build()
            .unwrap();
        let outs = explore(&tm, &[], &RunBudget::default()).unwrap();
        assert_eq!(outs, vec![Outcome::Halted(vec![])]);
        let det = run_deterministic(&tm, &[], &RunBudget::default()).unwrap();
        assert_eq!(det, Outcome::Halted(vec![]));
    }

    #[test]
    fn infinite_loop_hits_budget() {
        let tm = TmBuilder::new(2, 2, 0, 1)
            .on(0, 0, 1, Move::Right, 0)
            .on(0, 1, 1, Move::Right, 0)
            .build()
            .unwrap();
        let budget = RunBudget {
            max_steps: 50,
            max_configs: 1000,
        };
        assert!(matches!(
            run_deterministic(&tm, &[], &budget),
            Err(GtmError::BudgetExceeded { .. })
        ));
        assert!(matches!(
            explore(&tm, &[], &budget),
            Err(GtmError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn bad_input_symbol_rejected() {
        assert!(run_deterministic(&rewriter(), &[9], &RunBudget::default()).is_err());
    }
}
