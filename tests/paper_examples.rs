//! Every worked example in the paper, reproduced end-to-end.
//!
//! Example numbering follows the paper; each test cites the claim it checks.

use std::sync::Arc;

use idlog_core::{EnumBudget, Interner, Query, ValidatedProgram};
use idlog_storage::{count_id_functions, Database, IdAssignmentIter, Relation};

fn db_from(interner: &Arc<Interner>, facts: &[(&str, &[&str])]) -> Database {
    let mut db = Database::with_interner(Arc::clone(interner));
    for (pred, cols) in facts {
        db.insert_syms(pred, cols).unwrap();
    }
    db
}

/// Example 1: r = {(a,c),(a,d),(b,c)} has exactly two ID-relations on {1},
/// the two listed in the paper.
#[test]
fn example1_id_relations() {
    let interner = Interner::new();
    let mut r = Relation::elementary(2);
    for (x, y) in [("a", "c"), ("a", "d"), ("b", "c")] {
        r.insert(
            vec![
                idlog_core::Value::Sym(interner.intern(x)),
                idlog_core::Value::Sym(interner.intern(y)),
            ]
            .into(),
        )
        .unwrap();
    }
    assert_eq!(count_id_functions(&r, &[0], &interner), 2);

    let mut seen = Vec::new();
    for assignment in IdAssignmentIter::new(&r, &[0], &interner) {
        let tid = |x: &str, y: &str| {
            let t: idlog_core::Tuple = vec![
                idlog_core::Value::Sym(interner.intern(x)),
                idlog_core::Value::Sym(interner.intern(y)),
            ]
            .into();
            assignment.tid(&t).unwrap()
        };
        seen.push((tid("a", "c"), tid("a", "d"), tid("b", "c")));
    }
    seen.sort_unstable();
    // Paper's listings: {(a,c,1),(a,d,0),(b,c,0)} and {(a,c,0),(a,d,1),(b,c,0)}.
    assert_eq!(seen, vec![(0, 1, 0), (1, 0, 0)]);
}

/// Example 2: the man/woman guessing program evaluates to all four subsets
/// of {a, b} for both queries.
#[test]
fn example2_man_woman_answer_sets() {
    let src = "
        sex_guess(X, male) :- person(X).
        sex_guess(X, female) :- person(X).
        man(X) :- sex_guess[1](X, male, 1).
        woman(X) :- sex_guess[1](X, female, 1).
    ";
    let man = Query::parse(src, "man").unwrap();
    let db = db_from(man.interner(), &[("person", &["a"]), ("person", &["b"])]);
    let budget = EnumBudget::default();

    let expected = vec![
        vec![],
        vec!["(a)".to_string()],
        vec!["(a)".to_string(), "(b)".to_string()],
        vec!["(b)".to_string()],
    ];
    let man_answers = man.session(&db).budget(budget).all_answers().unwrap();
    assert!(man_answers.complete());
    assert_eq!(man_answers.to_sorted_strings(man.interner()), expected);

    let woman = Query::parse_with_interner(src, "woman", Arc::clone(man.interner())).unwrap();
    let woman_answers = woman.session(&db).budget(budget).all_answers().unwrap();
    assert_eq!(woman_answers.to_sorted_strings(man.interner()), expected);
}

/// Example 3 is covered in `idlog-dl` unit tests (DL inflationary
/// semantics); here we check the comparison the paper draws: the DL answer
/// set equals the IDLOG answer set of Example 2 — two roads to one query.
#[test]
fn example3_dl_agrees_with_example2_idlog() {
    use idlog_dl::{all_outcomes, Dialect, DlBudget, DlProgram};

    let idlog_src = "
        sex_guess(X, male) :- person(X).
        sex_guess(X, female) :- person(X).
        man(X) :- sex_guess[1](X, male, 1).
    ";
    let q = Query::parse(idlog_src, "man").unwrap();
    let db = db_from(q.interner(), &[("person", &["a"]), ("person", &["b"])]);
    let idlog_answers = q.session(&db).all_answers().unwrap();

    let dl_src = "
        man(X) :- person(X), not woman(X).
        woman(X) :- person(X), not man(X).
    ";
    let dl_ast = idlog_core::parse_program(dl_src, q.interner()).unwrap();
    let dl = DlProgram::new(dl_ast, Arc::clone(q.interner()), Dialect::Dl).unwrap();
    let dl_answers = all_outcomes(&dl, &db, "man", &DlBudget::default()).unwrap();

    assert!(idlog_answers.same_answers(&dl_answers, q.interner()));
}

/// Example 4: the one-per-department sampling query — the DATALOG^C program
/// and the IDLOG program `select_emp(N) :- emp[2](N, D, 0)` are q-equivalent.
#[test]
fn example4_single_sampling_equivalence() {
    let interner = Arc::new(Interner::new());
    let facts: &[(&str, &[&str])] = &[
        ("emp", &["ann", "sales"]),
        ("emp", &["bob", "sales"]),
        ("emp", &["cay", "dev"]),
        ("emp", &["dan", "dev"]),
        ("emp", &["eve", "dev"]),
    ];
    let db = db_from(&interner, facts);
    let budget = EnumBudget::default();

    let choice_ast =
        idlog_core::parse_program("select_emp(N) :- emp(N, D), choice((D), (N)).", &interner)
            .unwrap();
    let choice_answers =
        idlog_choice::intended_models(&choice_ast, &interner, &db, "select_emp", &budget).unwrap();

    let idlog = Query::parse_with_interner(
        "select_emp(N) :- emp[2](N, D, 0).",
        "select_emp",
        Arc::clone(&interner),
    )
    .unwrap();
    let idlog_answers = idlog.session(&db).budget(budget).all_answers().unwrap();

    assert!(choice_answers.same_answers(&idlog_answers, &interner));
    // 2 × 3 = 6 ways to pick one employee per department.
    assert_eq!(idlog_answers.len(), 6);
}

/// Example 5: the naive two-sample DATALOG^C program is WRONG — some of its
/// intended models miss a department entirely — while the IDLOG program
/// `emp[2](N, D, T), T < 2` always returns exactly two per department.
#[test]
fn example5_two_sampling() {
    let interner = Arc::new(Interner::new());
    let facts: &[(&str, &[&str])] = &[
        ("emp", &["ann", "sales"]),
        ("emp", &["bob", "sales"]),
        ("emp", &["cay", "sales"]),
        ("emp", &["dan", "dev"]),
        ("emp", &["eve", "dev"]),
    ];
    let db = db_from(&interner, facts);
    let budget = EnumBudget::default();

    // The paper's (incorrect) DATALOG^C attempt.
    let choice_ast = idlog_core::parse_program(
        "emp1(N, D) :- emp(N, D), choice((D), (N)).
         emp2(N, D) :- emp(N, D), choice((D), (N)).
         select_two_emp(N1) :- emp1(N1, D), emp2(N2, D), N1 != N2.",
        &interner,
    )
    .unwrap();
    let choice_answers =
        idlog_choice::intended_models(&choice_ast, &interner, &db, "select_two_emp", &budget)
            .unwrap();
    // "There are some intended models … while others may not contain any
    // student from a certain department": when both choices agree on a
    // department, that department contributes nothing.
    let deficient = choice_answers.iter().any(|rel| rel.len() < 4);
    assert!(deficient, "the choice program must have deficient models");

    // The paper's IDLOG program.
    let idlog = Query::parse_with_interner(
        "select_two_emp(N) :- emp[2](N, D, T), T < 2.",
        "select_two_emp",
        Arc::clone(&interner),
    )
    .unwrap();
    let idlog_answers = idlog.session(&db).budget(budget).all_answers().unwrap();
    assert!(idlog_answers.complete());
    for rel in idlog_answers.iter() {
        assert_eq!(
            rel.len(),
            4,
            "exactly two employees from each of 2 departments"
        );
    }
    // C(3,2) unordered pairs from sales × C(2,2) from dev = 3 answers.
    assert_eq!(idlog_answers.len(), 3);
}

/// Example 6 + Example 8: the adornment rewrite and the ID-literal rewrite
/// produce exactly the programs printed in the paper, and all three are
/// q-equivalent.
#[test]
fn example6_and_8_rewrites_are_equivalent() {
    use idlog_optimizer::{push_projections, q_equivalent_on, random_databases, to_id_program};

    let interner = Arc::new(Interner::new());
    let original = idlog_core::parse_program(
        "q(X) :- a(X, Y).
         a(X, Y) :- p(X, Z), a(Z, Y).
         a(X, Y) :- p(X, Y).",
        &interner,
    )
    .unwrap();
    let out = interner.intern("q");
    let projected = push_projections(&original, out);
    assert_eq!(
        projected.display(&interner).to_string(),
        "q(X) :- a(X).\na(X) :- p(X, Z), a(Z).\na(X) :- p(X, Y).\n"
    );
    let id_program = to_id_program(&original, out);
    assert_eq!(
        id_program.display(&interner).to_string(),
        "q(X) :- a(X).\na(X) :- p(X, Z), a(Z).\na(X) :- p[1](X, Y, 0).\n"
    );

    let dbs = random_databases(&interner, &[("p", 2)], &["a", "b", "c"], 10, 42);
    let budget = EnumBudget::default();
    let r1 = q_equivalent_on(&original, &projected, &interner, &dbs, "q", &budget).unwrap();
    assert!(r1.equivalent, "projection pushing preserves q");
    let r2 = q_equivalent_on(&original, &id_program, &interner, &dbs, "q", &budget).unwrap();
    assert!(
        r2.equivalent,
        "the ID-rewrite preserves q (Theorem 4 instance)"
    );
}

/// The paper's §2.2 safety example: the first occurrence of `+` is not
/// allowed (`1 + L = M` has infinitely many solutions), the second is.
#[test]
fn section2_safety_example() {
    let p1 = ValidatedProgram::parse(
        "q(a, 1). p1(X, N) :- q(X, N), plus(N, L, M).",
        Arc::new(Interner::new()),
    );
    assert!(matches!(p1, Err(idlog_core::CoreError::Safety { .. })));

    ValidatedProgram::parse(
        "q(a, 1). p2(X, N) :- q(X, N), plus(L, M, N).",
        Arc::new(Interner::new()),
    )
    .unwrap();
}

/// §1 / §4: `all_depts` — the three formulations (plain DATALOG, choice,
/// IDLOG tid-0) define the same deterministic query.
#[test]
fn all_depts_three_ways() {
    let interner = Arc::new(Interner::new());
    let facts: &[(&str, &[&str])] = &[
        ("emp", &["ann", "sales"]),
        ("emp", &["bob", "sales"]),
        ("emp", &["cay", "dev"]),
    ];
    let db = db_from(&interner, facts);
    let budget = EnumBudget::default();

    let plain = Query::parse_with_interner(
        "all_depts(D) :- emp(N, D).",
        "all_depts",
        Arc::clone(&interner),
    )
    .unwrap();
    let plain_answers = plain.session(&db).budget(budget).all_answers().unwrap();
    assert_eq!(plain_answers.len(), 1);

    let idlog = Query::parse_with_interner(
        "all_depts(D) :- emp[2](N, D, 0).",
        "all_depts",
        Arc::clone(&interner),
    )
    .unwrap();
    let idlog_answers = idlog.session(&db).budget(budget).all_answers().unwrap();
    assert!(plain_answers.same_answers(&idlog_answers, &interner));

    let choice_ast =
        idlog_core::parse_program("all_depts(D) :- emp(N, D), choice((D), (N)).", &interner)
            .unwrap();
    let choice_answers =
        idlog_choice::intended_models(&choice_ast, &interner, &db, "all_depts", &budget).unwrap();
    assert!(plain_answers.same_answers(&choice_answers, &interner));
}

/// §3.1 genericity: answers commute with permutations of the u-domain.
#[test]
fn queries_are_generic() {
    let src = "pick(N) :- emp[2](N, D, 0).";
    let q = Query::parse(src, "pick").unwrap();
    let db = db_from(
        q.interner(),
        &[
            ("emp", &["u1", "d1"]),
            ("emp", &["u2", "d1"]),
            ("emp", &["u3", "d2"]),
        ],
    );
    let answers = q.session(&db).all_answers().unwrap();

    // Permute u1 <-> u3 (a renaming of the domain).
    let permuted_db = db_from(
        q.interner(),
        &[
            ("emp", &["u3", "d1"]),
            ("emp", &["u2", "d1"]),
            ("emp", &["u1", "d2"]),
        ],
    );
    let permuted = q.session(&permuted_db).all_answers().unwrap();

    // Apply the same permutation to the original answers and compare.
    let rename = |s: &str| match s {
        "u1" => "u3".to_string(),
        "u3" => "u1".to_string(),
        other => other.to_string(),
    };
    let mut expected: Vec<Vec<String>> = answers
        .to_sorted_strings(q.interner())
        .into_iter()
        .map(|ans| {
            let mut rows: Vec<String> = ans
                .into_iter()
                .map(|row| {
                    let inner = row.trim_start_matches('(').trim_end_matches(')');
                    format!("({})", rename(inner))
                })
                .collect();
            rows.sort();
            rows
        })
        .collect();
    expected.sort();
    assert_eq!(permuted.to_sorted_strings(q.interner()), expected);
}

/// §3.1's database program includes `udom(dᵢ)` facts for every domain
/// element (realizing the domain-closure axiom). With
/// `Database::materialize_udom`, complement queries work as in the paper's
/// construction.
#[test]
fn udom_enables_complement_queries() {
    let q = Query::parse(
        "non_edge(X, Y) :- udom(X), udom(Y), not e(X, Y).",
        "non_edge",
    )
    .unwrap();
    let mut db = db_from(q.interner(), &[("e", &["a", "b"]), ("e", &["b", "c"])]);
    db.materialize_udom("udom").unwrap();
    let rel = q.session(&db).run().unwrap().relation;
    // 3 constants → 9 pairs, minus the 2 edges.
    assert_eq!(rel.len(), 7);

    // The domain can also carry isolated elements, as the paper allows.
    db.add_domain_element("d");
    db.materialize_udom("udom").unwrap();
    let rel = q.session(&db).run().unwrap().relation;
    assert_eq!(rel.len(), 16 - 2);
}
