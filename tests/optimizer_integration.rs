//! Optimizer integration: the rewrites preserve queries on randomized
//! databases (Theorem 4 empirically) and actually reduce the work counters
//! the paper's §4 claims they reduce.

use std::sync::Arc;

use idlog_core::{EnumBudget, EvalStats, Interner, Query, ValidatedProgram};
use idlog_optimizer::{
    analyze, push_projections, q_equivalent_on, random_databases, to_id_program,
};
use idlog_parser::Program;
use idlog_storage::Database;

/// Check original ≡ ∀-rewrite ≡ ID-rewrite on random databases.
fn check_rewrites(src: &str, output: &str, schema: &[(&str, usize)], seed: u64) {
    let interner = Arc::new(Interner::new());
    let original = idlog_core::parse_program(src, &interner).unwrap();
    let out = interner.intern(output);
    let projected = push_projections(&original, out);
    let id_program = to_id_program(&original, out);

    let dbs = random_databases(&interner, schema, &["a", "b", "c"], 8, seed);
    let budget = EnumBudget::default();
    let r1 = q_equivalent_on(&original, &projected, &interner, &dbs, output, &budget).unwrap();
    assert!(r1.equivalent, "∀-rewrite changed {output} in:\n{src}");
    let r2 = q_equivalent_on(&original, &id_program, &interner, &dbs, output, &budget).unwrap();
    assert!(r2.equivalent, "ID-rewrite changed {output} in:\n{src}");
}

#[test]
fn rewrites_preserve_query_on_program_family() {
    check_rewrites("q(X) :- e(X, Y).", "q", &[("e", 2)], 1);
    check_rewrites(
        "q(X) :- a(X, Y).
         a(X, Y) :- p(X, Z), a(Z, Y).
         a(X, Y) :- p(X, Y).",
        "q",
        &[("p", 2)],
        2,
    );
    check_rewrites(
        "p(X) :- q(X, Z), z(Z, Y), y(W).",
        "p",
        &[("q", 2), ("z", 2), ("y", 1)],
        3,
    );
    check_rewrites(
        "q(X) :- mid(X, Y).
         mid(X, Y) :- low(X, Y).
         low(X, Y) :- base(X, Y).",
        "q",
        &[("base", 2)],
        4,
    );
    check_rewrites(
        "out(X) :- left(X, Y), right(X, Z).",
        "out",
        &[("left", 2), ("right", 2)],
        5,
    );
    check_rewrites(
        "q(X) :- e(X, Y), not bad(X).",
        "q",
        &[("e", 2), ("bad", 1)],
        6,
    );
}

fn stats_on(program: &Program, interner: &Arc<Interner>, db: &Database, output: &str) -> EvalStats {
    let validated = ValidatedProgram::new(program.clone(), Arc::clone(interner)).unwrap();
    let q = Query::new(validated, output).unwrap();
    q.session(db).run().unwrap().stats
}

/// §4's whole point: the ID-rewrite reduces intermediate redundant tuples.
/// On a dense z/y workload the original materializes |q|·|z-matches| pairs;
/// the rewrite touches one tuple per group.
#[test]
fn id_rewrite_reduces_derivations() {
    let interner = Arc::new(Interner::new());
    let original = idlog_core::parse_program("p(X) :- q(X, Z), z(Z, Y), y(W).", &interner).unwrap();
    let out = interner.intern("p");
    let id_program = to_id_program(&original, out);

    let mut db = Database::with_interner(Arc::clone(&interner));
    let (keys, fanout, witnesses) = (10, 20, 30);
    for k in 0..keys {
        db.insert_syms("q", &[&format!("x{k}"), &format!("z{k}")])
            .unwrap();
        for f in 0..fanout {
            db.insert_syms("z", &[&format!("z{k}"), &format!("y{f}")])
                .unwrap();
        }
    }
    for w in 0..witnesses {
        db.insert_syms("y", &[&format!("w{w}")]).unwrap();
    }

    let before = stats_on(&original, &interner, &db, "p");
    let after = stats_on(&id_program, &interner, &db, "p");
    // Same answer...
    assert_eq!(before.inserted, after.inserted);
    // ...with a fanout×witnesses reduction in rule firings.
    assert_eq!(before.instantiations, (keys * fanout * witnesses) as u64);
    assert_eq!(after.instantiations, keys as u64);
    assert!(after.probes < before.probes);
}

/// The ∀-rewrite on Example 6 shrinks the materialized `a` relation from
/// O(nodes²) pairs to O(nodes).
#[test]
fn projection_pushing_shrinks_relations() {
    let interner = Arc::new(Interner::new());
    let src = "q(X) :- a(X, Y).
               a(X, Y) :- p(X, Z), a(Z, Y).
               a(X, Y) :- p(X, Y).";
    let original = idlog_core::parse_program(src, &interner).unwrap();
    let out = interner.intern("q");
    let projected = push_projections(&original, out);

    // A chain x0 → x1 → … → x20.
    let mut db = Database::with_interner(Arc::clone(&interner));
    for k in 0..20 {
        db.insert_syms("p", &[&format!("x{k}"), &format!("x{}", k + 1)])
            .unwrap();
    }
    let before = stats_on(&original, &interner, &db, "q");
    let after = stats_on(&projected, &interner, &db, "q");
    assert!(
        before.inserted > after.inserted,
        "fewer materialized tuples"
    );
    assert!(after.instantiations < before.instantiations);
}

/// The analysis is stable under clause reordering (it quantifies over all
/// occurrences, not the first).
#[test]
fn analysis_is_order_insensitive() {
    let interner = Arc::new(Interner::new());
    let p1 = idlog_core::parse_program(
        "a(X, Y) :- p(X, Y). a(X, Y) :- p(X, Z), a(Z, Y). q(X) :- a(X, Y).",
        &interner,
    )
    .unwrap();
    let p2 = idlog_core::parse_program(
        "q(X) :- a(X, Y). a(X, Y) :- p(X, Z), a(Z, Y). a(X, Y) :- p(X, Y).",
        &interner,
    )
    .unwrap();
    let out = interner.intern("q");
    let a = interner.intern("a");
    let an1 = analyze(&p1, out);
    let an2 = analyze(&p2, out);
    assert_eq!(an1.pred_positions(a), an2.pred_positions(a));
}

/// Idempotence: rewriting an already-rewritten program changes nothing.
#[test]
fn rewrites_are_idempotent() {
    let interner = Arc::new(Interner::new());
    let original = idlog_core::parse_program("p(X) :- q(X, Z), z(Z, Y), y(W).", &interner).unwrap();
    let out = interner.intern("p");
    let once = to_id_program(&original, out);
    let twice = to_id_program(&once, out);
    assert_eq!(
        once.display(&interner).to_string(),
        twice.display(&interner).to_string()
    );
}
