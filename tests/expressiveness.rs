//! Expressiveness (Theorems 5/6): compiled Turing machines agree with
//! native simulation, across deterministic and non-deterministic machines,
//! and the database encoding round-trips through a machine run.

use idlog_core::EnumBudget;
use idlog_gtm::{
    compile_tm, encode_database, explore, queries, run_deterministic, EncodeOrder, Move, Outcome,
    RunBudget, TmBuilder,
};
use idlog_storage::Database;

fn nonblank(tape: &[u8]) -> Vec<(usize, u8)> {
    tape.iter()
        .enumerate()
        .filter(|&(_, &s)| s != 0)
        .map(|(p, &s)| (p, s))
        .collect()
}

/// Native accepting tapes (sorted, deduplicated) for comparison. All-blank
/// accepting tapes are dropped, mirroring `CompiledTm::accepting_tapes`
/// (whose `result` relation is empty for them); acceptance itself is
/// compared through `CompiledTm::acceptance`.
fn native_tapes(tm: &idlog_gtm::Tm, input: &[u8]) -> Vec<Vec<(usize, u8)>> {
    let outs = explore(tm, input, &RunBudget::default()).unwrap();
    let mut tapes: Vec<Vec<(usize, u8)>> = outs
        .iter()
        .filter_map(|o| match o {
            Outcome::Accepted(t) => Some(nonblank(t)).filter(|nb| !nb.is_empty()),
            Outcome::Halted(_) => None,
        })
        .collect();
    tapes.sort();
    tapes.dedup();
    tapes
}

#[test]
fn parity_machine_full_agreement() {
    let tm = queries::parity();
    let compiled = compile_tm(&tm, 8, 8);
    let budget = EnumBudget::default();
    for input in [vec![], vec![2], vec![2, 2], vec![1, 2, 1, 2], vec![2, 2, 2]] {
        let native = native_tapes(&tm, &input);
        let compiled_tapes = compiled.accepting_tapes(&input, &budget).unwrap();
        assert_eq!(compiled_tapes, native, "input {input:?}");
        let native_accepts = !native.is_empty()
            || matches!(
                run_deterministic(&tm, &input, &RunBudget::default()).unwrap(),
                Outcome::Accepted(ref t) if nonblank(t).is_empty()
            );
        let (some, _) = compiled.acceptance(&input, &budget).unwrap();
        assert_eq!(some, native_accepts, "acceptance on {input:?}");
    }
}

#[test]
fn successor_machine_computes_increment() {
    let tm = queries::successor();
    let compiled = compile_tm(&tm, 8, 8);
    let budget = EnumBudget::default();
    // Check 0..=6 → 1..=7 through the compiled program.
    for value in 0u32..=6 {
        // LSB-first binary with symbols 1 (bit 0) / 2 (bit 1).
        let encode = |mut v: u32| -> Vec<u8> {
            let mut bits = Vec::new();
            loop {
                bits.push(if v & 1 == 1 { 2 } else { 1 });
                v >>= 1;
                if v == 0 {
                    break;
                }
            }
            bits
        };
        let decode = |cells: &[(usize, u8)]| -> u32 {
            cells
                .iter()
                .fold(0u32, |acc, &(p, s)| acc | (u32::from(s == 2) << p))
        };
        let input = encode(value);
        let tapes = compiled.accepting_tapes(&input, &budget).unwrap();
        assert_eq!(tapes.len(), 1, "deterministic machine, one outcome");
        assert_eq!(decode(&tapes[0]), value + 1, "successor of {value}");
    }
}

#[test]
fn nondeterministic_machine_outcome_sets_agree() {
    // Two branch points: write 1|2, move right, write 1|2, accept.
    let tm = TmBuilder::new(3, 3, 0, 2)
        .on(0, 0, 1, Move::Right, 1)
        .on(0, 0, 2, Move::Right, 1)
        .on(1, 0, 1, Move::Stay, 2)
        .on(1, 0, 2, Move::Stay, 2)
        .build()
        .unwrap();
    let compiled = compile_tm(&tm, 3, 3);
    let native = native_tapes(&tm, &[]);
    assert_eq!(native.len(), 4, "2 × 2 branch outcomes");
    let compiled_tapes = compiled
        .accepting_tapes(&[], &EnumBudget::default())
        .unwrap();
    assert_eq!(compiled_tapes, native);
}

#[test]
fn asymmetric_branching_uses_mod_mapping() {
    // State 0 has 3 options on blank; state 1 has 2; kmax = 3 exercises the
    // K mod l selector clauses.
    let tm = TmBuilder::new(3, 4, 0, 2)
        .on(0, 0, 1, Move::Right, 1)
        .on(0, 0, 2, Move::Right, 1)
        .on(0, 0, 3, Move::Right, 1)
        .on(1, 0, 1, Move::Stay, 2)
        .on(1, 0, 2, Move::Stay, 2)
        .build()
        .unwrap();
    let compiled = compile_tm(&tm, 3, 3);
    let native = native_tapes(&tm, &[]);
    assert_eq!(native.len(), 6, "3 × 2 outcomes");
    let compiled_tapes = compiled
        .accepting_tapes(&[], &EnumBudget::default())
        .unwrap();
    assert_eq!(compiled_tapes, native);
}

#[test]
fn machine_over_encoded_database() {
    // The nonempty scanner runs on a real encoded database — the [HS89]
    // pipeline end to end: database → tape → machine → acceptance.
    let tm = queries::nonempty_scanner();

    let mut db = Database::new();
    db.insert_syms("p", &["alice"]).unwrap();
    db.insert_syms("p", &["bob"]).unwrap();
    let order = EncodeOrder::canonical(&db);
    let tape = encode_database(&db, &order, &["p"]).unwrap();

    let compiled = compile_tm(&tm, (tape.len() + 2).max(4), tape.len() + 2);
    let (some, all) = compiled.acceptance(&tape, &EnumBudget::default()).unwrap();
    assert!(some && all, "nonempty relation accepted");

    let mut empty = Database::new();
    empty
        .declare("p", idlog_core::RelType::elementary(1))
        .unwrap();
    let order = EncodeOrder::canonical(&empty);
    let tape = encode_database(&empty, &order, &["p"]).unwrap();
    let compiled = compile_tm(&tm, 6, 6);
    let (some, _) = compiled.acceptance(&tape, &EnumBudget::default()).unwrap();
    assert!(!some, "empty relation not accepted");
}

/// Genericity of the encoded pipeline: permuting the enumeration order of
/// the constants does not change acceptance (the scanner is generic).
#[test]
fn encoding_order_independence() {
    let tm = queries::nonempty_scanner();
    let mut db = Database::new();
    db.insert_syms("p", &["x"]).unwrap();
    db.insert_syms("p", &["y"]).unwrap();

    let interner = db.interner();
    let x = interner.get("x").unwrap();
    let y = interner.get("y").unwrap();
    for order in [vec![x, y], vec![y, x]] {
        let order = EncodeOrder::new(order);
        let tape = encode_database(&db, &order, &["p"]).unwrap();
        let compiled = compile_tm(&tm, tape.len() + 2, tape.len() + 2);
        let (some, all) = compiled.acceptance(&tape, &EnumBudget::default()).unwrap();
        assert!(some && all);
    }
}
