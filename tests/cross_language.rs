//! Cross-language agreement: IDLOG vs DATALOG^C vs DL on queries all three
//! can express, plus Theorem 2 translations on a family of programs.

use std::sync::Arc;

use idlog_core::{EnumBudget, Interner, Query, ValidatedProgram};
use idlog_storage::Database;

fn db_from(interner: &Arc<Interner>, facts: &[(&str, &[&str])]) -> Database {
    let mut db = Database::with_interner(Arc::clone(interner));
    for (pred, cols) in facts {
        db.insert_syms(pred, cols).unwrap();
    }
    db
}

/// Run one DATALOG^C program through (a) the direct KN88 semantics and
/// (b) the Theorem 2 translation + IDLOG enumeration; assert equal answers.
fn check_theorem2(src: &str, facts: &[(&str, &[&str])], output: &str) {
    let interner = Arc::new(Interner::new());
    let ast = idlog_core::parse_program(src, &interner).unwrap();
    let db = db_from(&interner, facts);
    let budget = EnumBudget::default();

    let direct = idlog_choice::intended_models(&ast, &interner, &db, output, &budget).unwrap();
    assert!(direct.complete());

    let translated = idlog_choice::to_idlog::to_idlog(&ast, &interner).unwrap();
    let validated = ValidatedProgram::new(translated, Arc::clone(&interner)).unwrap();
    let q = Query::new(validated, output).unwrap();
    let via_idlog = q.session(&db).budget(budget).all_answers().unwrap();
    assert!(via_idlog.complete());

    assert!(
        direct.same_answers(&via_idlog, &interner),
        "Theorem 2 failed on {output}:\n direct {:?}\n idlog {:?}",
        direct.to_sorted_strings(&interner),
        via_idlog.to_sorted_strings(&interner)
    );
}

#[test]
fn theorem2_on_a_program_family() {
    let emp: &[(&str, &[&str])] = &[
        ("emp", &["a", "x"]),
        ("emp", &["b", "x"]),
        ("emp", &["c", "y"]),
        ("emp", &["d", "y"]),
        ("emp", &["e", "z"]),
    ];
    check_theorem2("s(N) :- emp(N, D), choice((D), (N)).", emp, "s");
    check_theorem2("s(D) :- emp(N, D), choice((N), (D)).", emp, "s");
    check_theorem2("s(N, D) :- emp(N, D), choice((), (N, D)).", emp, "s");
    check_theorem2(
        "picked(N) :- emp(N, D), choice((D), (N)).
         s(D) :- picked(N), emp(N, D).",
        emp,
        "s",
    );
    check_theorem2(
        "s(N, M) :- emp(N, D), emp(M, D), N != M, choice((D), (N, M)).",
        emp,
        "s",
    );
}

#[test]
fn theorem2_with_negation_below_choice() {
    check_theorem2(
        "senior(N) :- emp(N, D), not junior(N).
         s(N) :- senior(N), emp(N, D), choice((D), (N)).",
        &[
            ("emp", &["a", "x"]),
            ("emp", &["b", "x"]),
            ("emp", &["c", "x"]),
            ("junior", &["b"]),
        ],
        "s",
    );
}

/// A three-way agreement on a query all languages express: "choose one
/// element globally".
#[test]
fn three_languages_one_query() {
    let interner = Arc::new(Interner::new());
    let facts: &[(&str, &[&str])] = &[("item", &["a"]), ("item", &["b"])];
    let db = db_from(&interner, facts);
    let budget = EnumBudget::default();

    // IDLOG.
    let idlog =
        Query::parse_with_interner("pick(X) :- item[](X, 0).", "pick", Arc::clone(&interner))
            .unwrap();
    let a_idlog = idlog.session(&db).budget(budget).all_answers().unwrap();

    // DATALOG^C.
    let choice_ast =
        idlog_core::parse_program("pick(X) :- item(X), choice((), (X)).", &interner).unwrap();
    let a_choice =
        idlog_choice::intended_models(&choice_ast, &interner, &db, "pick", &budget).unwrap();

    // DL: the natural attempt — pick X unless something else was picked.
    // Under the one-instantiation-at-a-time inflationary semantics this is
    // RACY: pick(a) and pick(b) can both fire before either other_picked
    // fact is derived, so {a, b} is also an outcome. This inadequacy is one
    // of the paper's motivations for explicit non-deterministic constructs.
    let dl_ast = idlog_core::parse_program(
        "pick(X) :- item(X), not other_picked(X).
         other_picked(X) :- item(X), pick(Y), X != Y.",
        &interner,
    )
    .unwrap();
    let dl =
        idlog_dl::DlProgram::new(dl_ast, Arc::clone(&interner), idlog_dl::Dialect::Dl).unwrap();
    let a_dl = idlog_dl::all_outcomes(&dl, &db, "pick", &idlog_dl::DlBudget::default()).unwrap();

    assert_eq!(a_idlog.len(), 2);
    assert!(a_idlog.same_answers(&a_choice, &interner));
    let dl_strings = a_dl.to_sorted_strings(&interner);
    for wanted in a_idlog.to_sorted_strings(&interner) {
        assert!(dl_strings.contains(&wanted), "DL misses {wanted:?}");
    }
    assert!(
        dl_strings.contains(&vec!["(a)".to_string(), "(b)".to_string()]),
        "the DL race outcome must be observable: {dl_strings:?}"
    );
}

/// The paper (§3.3): IDLOG's n-sample query returns exactly the binomial
/// family of subsets — every answer has n members per group and all C(k, n)
/// subsets occur.
#[test]
fn idlog_n_sampling_is_exactly_binomial() {
    let interner = Arc::new(Interner::new());
    // One department with 4 employees, n = 2 → C(4,2) = 6 answers.
    let facts: &[(&str, &[&str])] = &[
        ("emp", &["a", "d"]),
        ("emp", &["b", "d"]),
        ("emp", &["c", "d"]),
        ("emp", &["e", "d"]),
    ];
    let db = db_from(&interner, facts);
    let q = Query::parse_with_interner(
        "two(N) :- emp[2](N, D, T), T < 2.",
        "two",
        Arc::clone(&interner),
    )
    .unwrap();
    let answers = q.session(&db).all_answers().unwrap();
    assert!(answers.complete());
    assert_eq!(answers.len(), 6);
    for rel in answers.iter() {
        assert_eq!(rel.len(), 2);
    }
}

/// DL and IDLOG on a stratified-negation query: the stratified answer must
/// be among the DL outcomes (DL's unstratified negation can also fire
/// early, so its outcome set may be larger).
#[test]
fn dl_outcomes_contain_the_stratified_answer() {
    let interner = Arc::new(Interner::new());
    let facts: &[(&str, &[&str])] = &[
        ("node", &["a"]),
        ("node", &["b"]),
        ("node", &["c"]),
        ("start", &["a"]),
        ("e", &["a", "b"]),
    ];
    let db = db_from(&interner, facts);
    let src = "
        reach(X) :- start(X).
        reach(Y) :- reach(X), e(X, Y).
        unreach(X) :- node(X), not reach(X).
    ";
    let q = Query::parse_with_interner(src, "unreach", Arc::clone(&interner)).unwrap();
    let idlog_answers = q.session(&db).all_answers().unwrap();
    assert_eq!(idlog_answers.len(), 1);

    let dl_ast = idlog_core::parse_program(src, &interner).unwrap();
    let dl =
        idlog_dl::DlProgram::new(dl_ast, Arc::clone(&interner), idlog_dl::Dialect::Dl).unwrap();
    let dl_answers =
        idlog_dl::all_outcomes(&dl, &db, "unreach", &idlog_dl::DlBudget::default()).unwrap();
    let target = &idlog_answers.to_sorted_strings(&interner)[0];
    let dl_strings = dl_answers.to_sorted_strings(&interner);
    assert!(
        dl_strings.contains(target),
        "stratified answer {target:?} missing from DL outcomes {dl_strings:?}"
    );
}

/// The paper's §4 closing remark: cut can be expressed through choice (and
/// hence IDLOG). Demonstrated as containment: the SLD-with-cut answer of
/// "pick one item per key" is one of the choice program's intended models,
/// which equal the IDLOG translation's answers (Theorem 2).
#[test]
fn cut_answer_is_a_choice_model_is_an_idlog_answer() {
    use idlog_choice::{CutBudget, CutProgram};

    let interner = Arc::new(Interner::new());
    let facts: &[(&str, &[&str])] = &[
        ("item", &["x1", "k1"]),
        ("item", &["x2", "k1"]),
        ("item", &["y1", "k2"]),
        ("item", &["y2", "k2"]),
    ];
    let db = db_from(&interner, facts);

    // Cut: for each key (driven by keyof), commit to the first item.
    let cut_prog = CutProgram::parse(
        "keyof(K) :- item(X, K).
         picked(K, X) :- keyof(K), first(K, X).
         first(K, X) :- item(X, K), !.",
        Arc::clone(&interner),
    )
    .unwrap();
    let cut_answer = cut_prog
        .all_solutions(&db, "picked", &CutBudget::default())
        .unwrap();
    assert_eq!(cut_answer.len(), 2, "one item per key");

    // Choice: the same query non-deterministically.
    let choice_ast =
        idlog_core::parse_program("picked(K, X) :- item(X, K), choice((K), (X)).", &interner)
            .unwrap();
    let budget = EnumBudget::default();
    let choice_models =
        idlog_choice::intended_models(&choice_ast, &interner, &db, "picked", &budget).unwrap();
    let cut_tuples: Vec<_> = cut_answer.iter().cloned().collect();
    assert!(
        choice_models.contains_answer(&cut_tuples),
        "the cut answer must be one of the choice program's intended models"
    );

    // IDLOG (via Theorem 2): same answer set as choice — so the cut answer
    // is an IDLOG answer too.
    let translated = idlog_choice::to_idlog::to_idlog(&choice_ast, &interner).unwrap();
    let validated = ValidatedProgram::new(translated, Arc::clone(&interner)).unwrap();
    let idlog_answers = Query::new(validated, "picked")
        .unwrap()
        .session(&db)
        .budget(budget)
        .all_answers()
        .unwrap();
    assert!(choice_models.same_answers(&idlog_answers, &interner));
    assert!(idlog_answers.contains_answer(&cut_tuples));
}

/// Four languages, one query (the paper's §3.2 survey): the guess answer
/// set {∅, {a}, {b}, {a,b}} falls out of IDLOG (Example 2), DL (Example 3),
/// DATALOG^C (§3.2.2), and DATALOG∨ (§3.2 ¶1) alike.
#[test]
fn four_languages_agree_on_the_guess_query() {
    let interner = Arc::new(Interner::new());
    let facts: &[(&str, &[&str])] = &[("person", &["a"]), ("person", &["b"])];
    let db = db_from(&interner, facts);
    let budget = EnumBudget::default();

    // IDLOG (Example 2).
    let idlog = Query::parse_with_interner(
        "sex_guess(X, male) :- person(X).
         sex_guess(X, female) :- person(X).
         man(X) :- sex_guess[1](X, male, 1).",
        "man",
        Arc::clone(&interner),
    )
    .unwrap();
    let a_idlog = idlog.session(&db).budget(budget).all_answers().unwrap();

    // DL (Example 3).
    let dl_ast = idlog_core::parse_program(
        "man(X) :- person(X), not woman(X).
         woman(X) :- person(X), not man(X).",
        &interner,
    )
    .unwrap();
    let dl =
        idlog_dl::DlProgram::new(dl_ast, Arc::clone(&interner), idlog_dl::Dialect::Dl).unwrap();
    let a_dl = idlog_dl::all_outcomes(&dl, &db, "man", &idlog_dl::DlBudget::default()).unwrap();

    // DATALOG^C (§3.2.2's translation example).
    let choice_ast = idlog_core::parse_program(
        "sex_guess(X, male) :- person(X).
         sex_guess(X, female) :- person(X).
         sex(X, Y) :- sex_guess(X, Y), choice((X), (Y)).
         man(X) :- sex(X, male).",
        &interner,
    )
    .unwrap();
    let a_choice =
        idlog_choice::intended_models(&choice_ast, &interner, &db, "man", &budget).unwrap();

    // DATALOG∨ (§3.2 ¶1).
    let disj_ast = idlog_core::parse_program("man(X) | woman(X) :- person(X).", &interner).unwrap();
    let disj = idlog_dl::DisjProgram::new(disj_ast, Arc::clone(&interner)).unwrap();
    let a_disj = disj
        .minimal_models(&db, "man", &idlog_dl::DlBudget::default())
        .unwrap();

    assert_eq!(a_idlog.len(), 4);
    assert!(a_idlog.same_answers(&a_dl, &interner), "DL differs");
    assert!(
        a_idlog.same_answers(&a_choice, &interner),
        "DATALOG^C differs"
    );
    assert!(a_idlog.same_answers(&a_disj, &interner), "DATALOG∨ differs");
}
