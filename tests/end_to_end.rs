//! End-to-end scenarios on generated workloads: the optimization claims of
//! §4 measured through engine statistics, larger recursive programs, and
//! oracle behaviour.

use std::sync::Arc;

use idlog_core::{EnumBudget, EvalStats, Interner, Query, SeededOracle};
use idlog_storage::Database;

/// D departments × E employees per department.
fn emp_db(interner: &Arc<Interner>, depts: usize, emps: usize) -> Database {
    let mut db = Database::with_interner(Arc::clone(interner));
    for d in 0..depts {
        for e in 0..emps {
            db.insert_syms("emp", &[&format!("n{d}_{e}"), &format!("dept{d}")])
                .unwrap();
        }
    }
    db
}

fn stats_of(src: &str, output: &str, db_builder: impl Fn(&Arc<Interner>) -> Database) -> EvalStats {
    let q = Query::parse(src, output).unwrap();
    let db = db_builder(q.interner());
    q.session(&db).run().unwrap().stats
}

/// §1/§4: the IDLOG formulation of all_depts considers one tuple per
/// department, the plain one considers all D×E tuples.
#[test]
fn all_depts_idlog_reduces_instantiations() {
    let (depts, emps) = (10, 20);
    let plain = stats_of("all_depts(D) :- emp(N, D).", "all_depts", |i| {
        emp_db(i, depts, emps)
    });
    let idlog = stats_of("all_depts(D) :- emp[2](N, D, 0).", "all_depts", |i| {
        emp_db(i, depts, emps)
    });
    assert_eq!(plain.instantiations, (depts * emps) as u64);
    assert_eq!(
        idlog.instantiations, depts as u64,
        "one firing per department"
    );
    assert!(idlog.probes < plain.probes);
}

/// §3.3: the n-sample IDLOG query fires once per selected tuple — n per
/// group — not once per candidate tuple.
#[test]
fn sampling_instantiations_scale_with_n_not_group_size() {
    let (depts, emps, n) = (5, 30, 3);
    let src = format!("sample(N) :- emp[2](N, D, T), T < {n}.");
    let stats = stats_of(&src, "sample", |i| emp_db(i, depts, emps));
    assert_eq!(stats.instantiations, (depts * n) as u64);
}

/// Same-generation on a tree: a classic recursive workload exercising
/// semi-naive evaluation, negation-free.
#[test]
fn same_generation_on_a_tree() {
    let src = "
        sg(X, X) :- person(X).
        sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
    ";
    let q = Query::parse(src, "sg").unwrap();
    let mut db = Database::with_interner(Arc::clone(q.interner()));
    // A complete binary tree of depth 3: nodes 1..15, par(child, parent).
    for child in 2..=15u32 {
        let parent = child / 2;
        db.insert_syms("par", &[&format!("v{child}"), &format!("v{parent}")])
            .unwrap();
        db.insert_syms("person", &[&format!("v{child}")]).unwrap();
    }
    db.insert_syms("person", &["v1"]).unwrap();
    let rel = q.session(&db).run().unwrap().relation;
    // Same-generation pairs in a complete binary tree of 15 nodes:
    // level sizes 1,2,4,8 → 1 + 4 + 16 + 64 = 85 ordered pairs.
    assert_eq!(rel.len(), 85);
}

/// Seeded oracles give reproducible answers, and different seeds reach
/// different answers somewhere.
#[test]
fn seeded_oracles_are_reproducible() {
    let q = Query::parse("pick(N) :- emp[2](N, D, 0).", "pick").unwrap();
    let db = emp_db(q.interner(), 2, 6);
    let a1 = q
        .session(&db)
        .run_with(&mut SeededOracle::new(11))
        .unwrap()
        .relation;
    let a2 = q
        .session(&db)
        .run_with(&mut SeededOracle::new(11))
        .unwrap()
        .relation;
    assert!(a1.set_eq(&a2));
    let differing = (0..32)
        .filter(|&s| {
            !q.session(&db)
                .run_with(&mut SeededOracle::new(s))
                .unwrap()
                .relation
                .set_eq(&a1)
        })
        .count();
    assert!(
        differing > 0,
        "32 seeds must reach at least two distinct answers"
    );
}

/// Deterministic queries are oracle-independent even when they read
/// ID-relations (the paper's all_depts: existential choice does not leak).
#[test]
fn all_depts_is_oracle_independent() {
    let q = Query::parse("all_depts(D) :- emp[2](N, D, 0).", "all_depts").unwrap();
    let db = emp_db(q.interner(), 4, 5);
    let canonical = q.session(&db).run().unwrap().relation;
    for seed in 0..16 {
        let seeded = q
            .session(&db)
            .run_with(&mut SeededOracle::new(seed))
            .unwrap()
            .relation;
        assert!(
            canonical.set_eq(&seeded),
            "seed {seed} changed a deterministic query"
        );
    }
    assert_eq!(canonical.len(), 4);
}

/// Arithmetic end-to-end: sum the first k naturals with succ/plus recursion.
#[test]
fn triangular_numbers_via_arithmetic() {
    let src = "
        tri(0, 0).
        tri(N2, S2) :- tri(N, S), succ(N, N2), N2 <= 10, plus(S, N2, S2).
    ";
    let q = Query::parse(src, "tri").unwrap();
    let db = Database::with_interner(Arc::clone(q.interner()));
    let rel = q.session(&db).run().unwrap().relation;
    assert_eq!(rel.len(), 11);
    let t: idlog_core::Tuple = vec![idlog_core::Value::Int(10), idlog_core::Value::Int(55)].into();
    assert!(rel.contains(&t), "tri(10) = 55");
}

/// Mixed recursion + ID-literal + negation across three strata.
#[test]
fn three_strata_pipeline() {
    let src = "
        reach(X) :- start(X).
        reach(Y) :- reach(X), e(X, Y).
        rep(X) :- reach[](X, 0).
        nonrep(X) :- reach(X), not rep(X).
    ";
    let q = Query::parse(src, "nonrep").unwrap();
    let mut db = Database::with_interner(Arc::clone(q.interner()));
    db.insert_syms("start", &["a"]).unwrap();
    for (x, y) in [("a", "b"), ("b", "c"), ("c", "d")] {
        db.insert_syms("e", &[x, y]).unwrap();
    }
    let answers = q.session(&db).all_answers().unwrap();
    // reach = {a,b,c,d}; rep is any single one of them; nonrep the other 3.
    assert_eq!(answers.len(), 4);
    for rel in answers.iter() {
        assert_eq!(rel.len(), 3);
    }
}

/// The enumeration budget reports truncation instead of hanging on a
/// factorial space.
#[test]
fn enumeration_budget_cuts_factorial_space() {
    // The tid escapes into the head, so the walk is over all 9! = 362880
    // permutations; the budget must truncate it.
    let q = Query::parse("pick(N, T) :- emp[](N, D, T).", "pick").unwrap();
    let db = emp_db(q.interner(), 1, 9);
    let budget = EnumBudget {
        max_models: 500,
        max_answers: 10_000,
    };
    // Serial: the tight models_explored bound is a property of the
    // sequential walk (parallel branches may each run up to the budget).
    let answers = q
        .session(&db)
        .threads(1)
        .budget(budget)
        .all_answers()
        .unwrap();
    assert!(!answers.complete());
    assert!(answers.models_explored() <= 501);
}

/// The footnote 6/7 optimization: a tid-0-only query over the same relation
/// enumerates 9 arrangements, not 9! permutations, and completes.
#[test]
fn bounded_tid_enumeration_is_linear() {
    let q = Query::parse("pick(N) :- emp[](N, D, 0).", "pick").unwrap();
    let db = emp_db(q.interner(), 1, 9);
    let budget = EnumBudget {
        max_models: 500,
        max_answers: 10_000,
    };
    let answers = q.session(&db).budget(budget).all_answers().unwrap();
    assert!(answers.complete());
    assert_eq!(answers.models_explored(), 9);
    assert_eq!(answers.len(), 9);
}

/// Parallel and sequential enumeration agree on a two-choice-point program.
#[test]
fn parallel_enumeration_agrees() {
    let src = "
        first(N) :- emp[2](N, D, 0).
        second(P) :- proj[2](P, T, 0).
        pair(N, P) :- first(N), second(P).
    ";
    let q = Query::parse(src, "pair").unwrap();
    let mut db = emp_db(q.interner(), 2, 3);
    for t in 0..2 {
        for p in 0..2 {
            db.insert_syms("proj", &[&format!("p{t}_{p}"), &format!("t{t}")])
                .unwrap();
        }
    }
    let budget = EnumBudget::default();
    let seq = q.session(&db).budget(budget).all_answers().unwrap();
    let par = q.session(&db).budget(budget).all_answers().unwrap();
    assert!(seq.complete() && par.complete());
    assert!(seq.same_answers(&par, q.interner()));
}

/// The paper's introductory claim (via [She90b]): tuple identifiers enhance
/// *deterministic* expressive power. Cardinality parity of a unary relation
/// is not expressible in DATALOG(¬), but with an empty-grouping ID-relation
/// the tids 0..n−1 give a linear order to count along — and the answer is
/// the same in every perfect model.
#[test]
fn counting_with_tids_is_deterministic() {
    let src = "
        % tid order: numbered(X, T) pairs each element with a unique tid.
        numbered(X, T) :- person[](X, T).
        % count up: reach(T) holds for every tid, size = max tid + 1.
        has(T) :- numbered(X, T).
        even_upto(0) :- has(0).
        odd_upto(T2) :- even_upto(T), succ(T, T2), has(T2).
        even_upto(T2) :- odd_upto(T), succ(T, T2), has(T2).
        % the relation has even cardinality iff the last tid is odd-indexed
        % (odd_upto holds at the maximum tid), or the relation is empty.
        top(T) :- has(T), succ(T, T2), not has(T2).
        even_card :- top(T), odd_upto(T).
        empty :- not some.
        some :- person(X).
        even_card :- empty.
    ";
    let q = Query::parse(src, "even_card").unwrap();
    for n in 0..6usize {
        let mut db = q.new_database();
        for k in 0..n {
            db.insert_syms("person", &[&format!("p{k}")]).unwrap();
        }
        // Deterministic: a single answer over all perfect models.
        let answers = q.session(&db).all_answers().unwrap();
        assert!(answers.complete());
        assert_eq!(
            answers.len(),
            1,
            "parity must be tid-choice independent (n={n})"
        );
        let is_even = !answers.iter().next().unwrap().is_empty();
        assert_eq!(is_even, n % 2 == 0, "wrong parity for n={n}");
        // And any single oracle gives the same verdict.
        for seed in [1, 9] {
            let rel = q
                .session(&db)
                .run_with(&mut SeededOracle::new(seed))
                .unwrap()
                .relation;
            assert_eq!(!rel.is_empty(), n % 2 == 0);
        }
    }
}

/// §2.2: "More complicated arithmetic predicates, such as +, −, *, / and <,
/// can be defined by IDLOG programs using the predicate succ." Define
/// addition from succ over a bounded range and compare with the builtin.
#[test]
fn plus_is_definable_from_succ() {
    let src = "
        % myplus(X, Y, Z) over 0..=LIMIT, defined only from succ.
        bound(0).
        bound(N2) :- bound(N), succ(N, N2), N2 <= 12.
        myplus(X, 0, X) :- bound(X).
        myplus(X, Y2, Z2) :- myplus(X, Y, Z), succ(Y, Y2), succ(Z, Z2), Z2 <= 12.
        % check: pairs where the builtin and the definition agree.
        agree(X, Y) :- myplus(X, Y, Z), plus(X, Y, Z).
    ";
    let q = Query::parse(src, "myplus").unwrap();
    let db = Database::with_interner(Arc::clone(q.interner()));
    let rel = q.session(&db).run().unwrap().relation;
    // Every derived myplus(X, Y, Z) satisfies X + Y = Z…
    for t in rel.iter() {
        let (x, y, z) = (
            t[0].as_int().unwrap(),
            t[1].as_int().unwrap(),
            t[2].as_int().unwrap(),
        );
        assert_eq!(x + y, z);
    }
    // …and the definition is complete for all sums ≤ 12:
    // Σ_{z=0}^{12} (z+1) = 91 triples.
    assert_eq!(rel.len(), 91);
}
